"""E4 — Theorem 4.2: the ball-cover algorithm's quality, strongly
polynomial runtime, and the two diameter modes.

Claims reproduced:
* measured ratio alg/OPT stays (far) below 6k(1 + ln m);
* the algorithm handles tables far beyond the exact solvers' reach;
* exact-diameter mode never produces a worse cover objective shape than
  the radius-bound surrogate by much (both within the bound).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import registry
from repro.algorithms.exact import optimal_anonymization
from repro.core.table import Table
from repro.workloads import uniform_table

from .conftest import fmt


def _random_table(seed: int, n: int, m: int, sigma: int) -> Table:
    rng = np.random.default_rng(seed)
    data = rng.integers(0, sigma, size=(n, m))
    return Table([tuple(int(v) for v in row) for row in data])


@pytest.mark.parametrize("k,m", [(2, 3), (3, 3), (3, 6)])
def test_e4_ratio_vs_bound(benchmark, report, k, m):
    tables = [_random_table(seed, 9, m, 3) for seed in range(20)]
    algorithm = registry.create("center_cover")

    def solve_all():
        return [algorithm.anonymize(t, k).stars for t in tables]

    costs = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    ratios = []
    rows = []
    for seed, (table, cost) in enumerate(zip(tables, costs)):
        opt, _ = optimal_anonymization(table, k)
        ratio = 1.0 if opt == cost == 0 else cost / opt
        ratios.append(ratio)
        rows.append([seed, opt, cost, fmt(ratio, 2)])
    bound = registry.proven_bound(algorithm, k, m)
    assert all(r <= bound for r in ratios)
    benchmark.extra_info.update(k=k, m=m, bound=bound, max_ratio=max(ratios))
    report.table(
        f"E4 center-cover ratios, k={k}, m={m} "
        f"(bound 6k(1+ln m) = {fmt(bound, 1)})",
        ["seed", "OPT", "center", "ratio"],
        rows,
    )
    report.line(
        f"E4 summary k={k} m={m}: max ratio {fmt(max(ratios), 2)}, "
        f"mean {fmt(sum(ratios) / len(ratios), 2)}, bound {fmt(bound, 1)}"
    )


@pytest.mark.parametrize("mode", ["radius_bound", "exact"])
def test_e4_diameter_modes(benchmark, report, mode):
    """Cost comparison of the Lemma 4.2 surrogate vs true diameters."""
    table = uniform_table(60, 6, alphabet_size=4, seed=0)
    algorithm = registry.get("center_cover").cls(diameter_mode=mode)
    result = benchmark(algorithm.anonymize, table, 3)
    assert result.is_valid(table)
    benchmark.extra_info.update(mode=mode, stars=result.stars)
    report.line(f"E4 diameter_mode={mode}: {result.stars} stars on n=60, m=6")


def test_e4_beyond_exact_reach(benchmark, report):
    """n = 400: hopeless for the exact solvers, routine for Theorem 4.2."""
    table = uniform_table(400, 8, alphabet_size=4, seed=1)
    algorithm = registry.create("center_cover")
    result = benchmark.pedantic(algorithm.anonymize, args=(table, 5),
                                rounds=1, iterations=1)
    assert result.is_valid(table)
    ratio = result.stars / table.total_cells()
    report.line(
        f"E4 scale: n=400 m=8 k=5 -> {result.stars} stars "
        f"({fmt(100 * ratio, 1)}% of cells)"
    )
