"""E14 — analytic utility of releases: interval count queries (extension).

The paper's motivation is trend-spotting over released data.  This
experiment quantifies it: random conjunctive count queries answered on
each algorithm's release give intervals ``[certain, possible]`` that
must contain the truth (soundness, asserted) and whose width is the
utility price of anonymity.  Expected shape: widths track suppression
cost — geometry-aware algorithms give the narrowest intervals, the
all-star release the widest.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    CenterCoverAnonymizer,
    KMemberAnonymizer,
    MondrianAnonymizer,
    RandomPartitionAnonymizer,
    SuppressEverythingAnonymizer,
)
from repro.analysis import query_error_experiment
from repro.workloads import census_table, quasi_identifiers

from .conftest import fmt

K = 4
ALGORITHMS = {
    "center_cover": CenterCoverAnonymizer,
    "mondrian": MondrianAnonymizer,
    "kmember": KMemberAnonymizer,
    "random": lambda: RandomPartitionAnonymizer(seed=0),
    "suppress_all": SuppressEverythingAnonymizer,
}

_widths: dict[str, float] = {}


@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_e14_interval_width(benchmark, report, algorithm):
    table = quasi_identifiers(census_table(120, seed=3)).project(
        ["age", "sex", "race"]
    )
    released = ALGORITHMS[algorithm]().anonymize(table, K).anonymized

    result = benchmark.pedantic(
        query_error_experiment,
        args=(table, released),
        kwargs={"n_queries": 60, "arity": 2, "seed": 9},
        rounds=1, iterations=1,
    )
    assert result.all_sound, "an interval missed the true count!"
    _widths[algorithm] = result.mean_relative_width
    benchmark.extra_info.update(
        mean_width=result.mean_width,
        mean_relative_width=result.mean_relative_width,
    )
    report.line(
        f"E14 {algorithm}: mean interval width "
        f"{fmt(result.mean_width, 1)} rows "
        f"({fmt(100 * result.mean_relative_width, 1)}% of n), all sound"
    )


def test_e14_shape(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_widths) < len(ALGORITHMS):
        pytest.skip("width cells did not all run (filtered invocation)")
    assert _widths["center_cover"] <= _widths["random"]
    assert _widths["random"] <= _widths["suppress_all"] + 1e-9
    report.table(
        "E14 mean relative interval width by algorithm (k=4)",
        ["algorithm", "relative width"],
        [[name, fmt(width, 3)] for name, width in sorted(_widths.items())],
    )
