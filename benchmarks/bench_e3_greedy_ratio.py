"""E3 — Theorem 4.1: the greedy-cover algorithm's approximation quality
and its exponential-in-k runtime.

Claims reproduced:
* measured ratio alg/OPT stays (far) below 3k(1 + ln 2k);
* runtime grows with k like |V|^{Theta(k)} (the full collection C).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import registry
from repro.algorithms.exact import optimal_anonymization
from repro.core.table import Table

from .conftest import fmt


def _random_table(seed: int, n: int, m: int, sigma: int) -> Table:
    rng = np.random.default_rng(seed)
    data = rng.integers(0, sigma, size=(n, m))
    return Table([tuple(int(v) for v in row) for row in data])


@pytest.mark.parametrize("k", [2, 3])
def test_e3_ratio_vs_bound(benchmark, report, k):
    """Measured approximation ratios over 20 random instances."""
    tables = [_random_table(seed, 9, 4, 3) for seed in range(20)]
    algorithm = registry.create("greedy_cover")

    def solve_all():
        return [algorithm.anonymize(t, k).stars for t in tables]

    costs = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    rows = []
    ratios = []
    for seed, (table, cost) in enumerate(zip(tables, costs)):
        opt, _ = optimal_anonymization(table, k)
        ratio = 1.0 if opt == cost == 0 else cost / opt
        ratios.append(ratio)
        rows.append([seed, opt, cost, fmt(ratio, 2)])
    bound = registry.proven_bound(algorithm, k, 4)
    assert all(r <= bound for r in ratios)
    benchmark.extra_info.update(
        k=k, bound=bound, max_ratio=max(ratios),
        mean_ratio=sum(ratios) / len(ratios),
    )
    report.table(
        f"E3 greedy-cover ratios, k={k} "
        f"(bound 3k(1+ln 2k) = {fmt(bound, 1)})",
        ["seed", "OPT", "greedy", "ratio"],
        rows,
    )
    report.line(
        f"E3 summary k={k}: max ratio {fmt(max(ratios), 2)}, "
        f"mean {fmt(sum(ratios) / len(ratios), 2)}, bound {fmt(bound, 1)}"
    )


@pytest.mark.parametrize("k", [2, 3])
def test_e3_runtime_exponential_in_k(benchmark, k):
    """Time one greedy-cover run; compare across k in the report table.

    The collection C has Theta(n^{2k-1}) sets, so the k=3 row should be
    orders of magnitude slower than k=2 at the same n.
    """
    table = _random_table(123, 12, 4, 3)
    algorithm = registry.create("greedy_cover")
    result = benchmark(algorithm.anonymize, table, k)
    assert result.is_valid(table)
    benchmark.extra_info.update(k=k, n=table.n_rows)


def test_e3_greedy_vs_exact_on_planted(benchmark, report):
    """On planted instances (known OPT = 0) greedy must find cost 0."""
    from repro.workloads import planted_groups_table

    algorithm = registry.create("greedy_cover")
    tables = [
        planted_groups_table(3, 3, 4, noise=0.0, seed=s) for s in range(5)
    ]

    def solve_all():
        return [algorithm.anonymize(t, 3).stars for t in tables]

    costs = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    assert costs == [0] * 5
    report.line("E3 planted: greedy recovers all zero-cost groupings")
