"""E9 — runtime claims of Sections 4.2.3 and 4.3.

* Theorem 4.1's algorithm is O(|V|^{2k}) — exponential in k: doubling k
  at fixed n blows the runtime up by orders of magnitude (E3 also shows
  this; here we record the n-scaling at fixed k).
* Theorem 4.2's algorithm is strongly polynomial, O(m^2 |V|^2 + |V|^3):
  timing across n in {50..400} should grow polynomially (roughly
  quadratic-to-cubic), not exponentially.

pytest-benchmark's table *is* the result series: compare the rows by
parameter.
"""

from __future__ import annotations

import pytest

from repro.algorithms.center_cover import CenterCoverAnonymizer
from repro.algorithms.exact import optimal_anonymization
from repro.algorithms.greedy_cover import GreedyCoverAnonymizer
from repro.algorithms.small_m import SmallMExactAnonymizer
from repro.workloads import duplicate_heavy_table, uniform_table


@pytest.mark.parametrize("n", [8, 10, 12, 14])
def test_e9_greedy_scaling_in_n(benchmark, n):
    """Theorem 4.1 runtime vs n at k=2 (collection size ~ n^3)."""
    table = uniform_table(n, 4, alphabet_size=3, seed=0)
    algorithm = GreedyCoverAnonymizer()
    result = benchmark(algorithm.anonymize, table, 2)
    assert result.is_valid(table)
    benchmark.extra_info.update(n=n, k=2)


@pytest.mark.parametrize("n", [50, 100, 200, 400])
def test_e9_center_scaling_in_n(benchmark, n):
    """Theorem 4.2 runtime vs n at k=5, m=8 — strongly polynomial."""
    table = uniform_table(n, 8, alphabet_size=4, seed=0)
    algorithm = CenterCoverAnonymizer()
    result = benchmark.pedantic(algorithm.anonymize, args=(table, 5),
                                rounds=2, iterations=1)
    assert result.is_valid(table)
    benchmark.extra_info.update(n=n, k=5, m=8)


@pytest.mark.parametrize("m", [4, 8, 16, 32])
def test_e9_center_scaling_in_m(benchmark, m):
    """Theorem 4.2 runtime vs the degree m at fixed n."""
    table = uniform_table(120, m, alphabet_size=4, seed=0)
    algorithm = CenterCoverAnonymizer()
    result = benchmark.pedantic(algorithm.anonymize, args=(table, 4),
                                rounds=2, iterations=1)
    assert result.is_valid(table)
    benchmark.extra_info.update(n=120, k=4, m=m)


@pytest.mark.parametrize("n", [8, 10, 12])
def test_e9_exact_dp_scaling(benchmark, n):
    """The exact DP's exponential wall: the reason Section 4 exists."""
    table = uniform_table(n, 3, alphabet_size=3, seed=0)
    result = benchmark.pedantic(optimal_anonymization, args=(table, 3),
                                rounds=1, iterations=1)
    assert result[0] >= 0
    benchmark.extra_info.update(n=n, k=3)


def test_e9_center_exponent_fit(benchmark, report):
    """Fit the center algorithm's n-scaling exponent directly: a
    strongly polynomial algorithm should land in roughly [1.3, 3.2]
    (quadratic-to-cubic), nowhere near exponential blow-up."""
    import time

    from repro.theory import fit_power_law

    sizes = [50, 100, 200, 400]

    def measure():
        times = []
        for n in sizes:
            table = uniform_table(n, 8, alphabet_size=4, seed=0)
            algorithm = CenterCoverAnonymizer()
            start = time.perf_counter()
            algorithm.anonymize(table, 5)
            times.append(time.perf_counter() - start)
        return times

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    exponent = fit_power_law(sizes, times)
    assert 1.0 <= exponent <= 3.5, f"implausible exponent {exponent}"
    benchmark.extra_info.update(exponent=exponent)
    report.line(
        f"E9 center-cover n-scaling exponent: {exponent:.2f} "
        "(strongly polynomial; O(m^2 n^2 + n^3) predicts 2-3)"
    )


@pytest.mark.parametrize("n", [30, 60, 120])
def test_e9_small_m_scaling(benchmark, n):
    """The [8]-style exact solver is polynomial in n at fixed distinct
    records — exactly the niche the paper assigns it.  (The subset DP
    hits its exponential wall at n ~ 16; these rows grow polynomially.)"""
    table = duplicate_heavy_table(n, 4, n_distinct=3, seed=0)
    algorithm = SmallMExactAnonymizer()
    result = benchmark.pedantic(algorithm.anonymize, args=(table, 3),
                                rounds=1, iterations=1)
    assert result.is_valid(table)
    benchmark.extra_info.update(n=n, distinct=3, k=3)
