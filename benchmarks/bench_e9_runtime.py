"""E9 — runtime claims of Sections 4.2.3 and 4.3.

* Theorem 4.1's algorithm is O(|V|^{2k}) — exponential in k: doubling k
  at fixed n blows the runtime up by orders of magnitude (E3 also shows
  this; here we record the n-scaling at fixed k).
* Theorem 4.2's algorithm is strongly polynomial, O(m^2 |V|^2 + |V|^3):
  timing across n in {50..400} should grow polynomially (roughly
  quadratic-to-cubic), not exponentially.

pytest-benchmark's table *is* the result series: compare the rows by
parameter.

The backend-comparison tests at the bottom time the pure-Python metric
backend against the vectorized numpy one on identical workloads and
report the speedup per algorithm — run with ``REPRO_BENCH_QUICK=1`` for
the CI-sized version.
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms.center_cover import CenterCoverAnonymizer
from repro.algorithms.chain import GreedyChainAnonymizer
from repro.algorithms.exact import optimal_anonymization
from repro.algorithms.forest import MSTForestAnonymizer
from repro.algorithms.greedy_cover import GreedyCoverAnonymizer
from repro.algorithms.small_m import SmallMExactAnonymizer
from repro.core.backend import available_backends, make_backend
from repro.workloads import duplicate_heavy_table, uniform_table

from .conftest import fmt, quick_mode


@pytest.mark.parametrize("n", [8, 10, 12, 14])
def test_e9_greedy_scaling_in_n(benchmark, n):
    """Theorem 4.1 runtime vs n at k=2 (collection size ~ n^3)."""
    table = uniform_table(n, 4, alphabet_size=3, seed=0)
    algorithm = GreedyCoverAnonymizer()
    result = benchmark(algorithm.anonymize, table, 2)
    assert result.is_valid(table)
    benchmark.extra_info.update(n=n, k=2)


@pytest.mark.parametrize("n", [50, 100, 200, 400])
def test_e9_center_scaling_in_n(benchmark, n):
    """Theorem 4.2 runtime vs n at k=5, m=8 — strongly polynomial."""
    table = uniform_table(n, 8, alphabet_size=4, seed=0)
    algorithm = CenterCoverAnonymizer()
    result = benchmark.pedantic(algorithm.anonymize, args=(table, 5),
                                rounds=2, iterations=1)
    assert result.is_valid(table)
    benchmark.extra_info.update(n=n, k=5, m=8)


@pytest.mark.parametrize("m", [4, 8, 16, 32])
def test_e9_center_scaling_in_m(benchmark, m):
    """Theorem 4.2 runtime vs the degree m at fixed n."""
    table = uniform_table(120, m, alphabet_size=4, seed=0)
    algorithm = CenterCoverAnonymizer()
    result = benchmark.pedantic(algorithm.anonymize, args=(table, 4),
                                rounds=2, iterations=1)
    assert result.is_valid(table)
    benchmark.extra_info.update(n=120, k=4, m=m)


@pytest.mark.parametrize("n", [8, 10, 12])
def test_e9_exact_dp_scaling(benchmark, n):
    """The exact DP's exponential wall: the reason Section 4 exists."""
    table = uniform_table(n, 3, alphabet_size=3, seed=0)
    result = benchmark.pedantic(optimal_anonymization, args=(table, 3),
                                rounds=1, iterations=1)
    assert result[0] >= 0
    benchmark.extra_info.update(n=n, k=3)


def test_e9_center_exponent_fit(benchmark, report):
    """Fit the center algorithm's n-scaling exponent directly: a
    strongly polynomial algorithm should land in roughly [1.3, 3.2]
    (quadratic-to-cubic), nowhere near exponential blow-up."""
    import time

    from repro.theory import fit_power_law

    sizes = [50, 100, 200, 400]

    def measure():
        times = []
        for n in sizes:
            table = uniform_table(n, 8, alphabet_size=4, seed=0)
            algorithm = CenterCoverAnonymizer()
            start = time.perf_counter()
            algorithm.anonymize(table, 5)
            times.append(time.perf_counter() - start)
        return times

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    exponent = fit_power_law(sizes, times)
    assert 1.0 <= exponent <= 3.5, f"implausible exponent {exponent}"
    benchmark.extra_info.update(exponent=exponent)
    report.line(
        f"E9 center-cover n-scaling exponent: {exponent:.2f} "
        "(strongly polynomial; O(m^2 n^2 + n^3) predicts 2-3)"
    )


@pytest.mark.parametrize("n", [30, 60, 120])
def test_e9_small_m_scaling(benchmark, n):
    """The [8]-style exact solver is polynomial in n at fixed distinct
    records — exactly the niche the paper assigns it.  (The subset DP
    hits its exponential wall at n ~ 16; these rows grow polynomially.)"""
    table = duplicate_heavy_table(n, 4, n_distinct=3, seed=0)
    algorithm = SmallMExactAnonymizer()
    result = benchmark.pedantic(algorithm.anonymize, args=(table, 3),
                                rounds=1, iterations=1)
    assert result.is_valid(table)
    benchmark.extra_info.update(n=n, distinct=3, k=3)


# ----------------------------------------------------------------------
# Backend comparison: pure-Python metric layer vs the numpy fast path
# ----------------------------------------------------------------------


def _time_once(fn) -> tuple[float, object]:
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


needs_numpy = pytest.mark.skipif(
    "numpy" not in available_backends(),
    reason="numpy backend not available",
)


@needs_numpy
@pytest.mark.parametrize("n", [100, 200] if quick_mode() else [200, 500])
def test_e9_distance_matrix_backend_speedup(benchmark, report, n):
    """Full pairwise Hamming distance matrix: python vs numpy backend.

    The chunked broadcast path must be at least 5x faster than the pure
    Python double loop once n reaches 500 (in practice it is orders of
    magnitude faster), and bit-identical to it.
    """
    table = uniform_table(n, 8, alphabet_size=4, seed=0)

    def compare():
        py_seconds, py_matrix = _time_once(
            make_backend(table, "python").distance_matrix
        )
        np_seconds, np_matrix = _time_once(
            make_backend(table, "numpy").distance_matrix
        )
        return py_seconds, np_seconds, py_matrix, np_matrix

    py_seconds, np_seconds, py_matrix, np_matrix = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert np_matrix == py_matrix, "backends disagree on the matrix"
    speedup = py_seconds / np_seconds if np_seconds > 0 else float("inf")
    if n >= 500:
        assert speedup >= 5.0, (
            f"numpy matrix only {speedup:.1f}x faster at n={n}"
        )
    benchmark.extra_info.update(
        n=n, m=8, python_seconds=py_seconds, numpy_seconds=np_seconds,
        speedup=speedup,
    )
    report.line(
        f"E9 distance matrix n={n}: python {fmt(py_seconds)}s, "
        f"numpy {fmt(np_seconds)}s — {speedup:.0f}x"
    )


@needs_numpy
def test_e9_algorithm_backend_comparison(benchmark, report):
    """End-to-end anonymization runtime per backend, per algorithm.

    Each algorithm runs the same workload once with the pure-Python
    backend and once with the numpy backend; both must produce identical
    star counts (the backends are exact drop-ins for each other), and
    the speedup column quantifies how much of each algorithm's runtime
    the metric layer accounts for.
    """
    n = 120 if quick_mode() else 300
    table = uniform_table(n, 8, alphabet_size=4, seed=0)
    algorithms = {
        "center_cover": CenterCoverAnonymizer,
        "greedy_chain": GreedyChainAnonymizer,
        "mst_forest": MSTForestAnonymizer,
    }

    def compare():
        timings = {}
        for name, factory in algorithms.items():
            row = {}
            for backend_name in ("python", "numpy"):
                algorithm = factory(
                    backend=make_backend(table, backend_name)
                )
                seconds, result = _time_once(
                    lambda alg=algorithm: alg.anonymize(table, 4)
                )
                assert result.is_valid(table)
                row[backend_name] = (seconds, result.stars)
            timings[name] = row
        return timings

    timings = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = []
    for name, row in timings.items():
        py_seconds, py_stars = row["python"]
        np_seconds, np_stars = row["numpy"]
        assert py_stars == np_stars, (
            f"{name}: backends disagree ({py_stars} vs {np_stars} stars)"
        )
        speedup = py_seconds / np_seconds if np_seconds > 0 else float("inf")
        benchmark.extra_info[name] = {
            "python_seconds": py_seconds,
            "numpy_seconds": np_seconds,
            "speedup": speedup,
            "stars": py_stars,
        }
        rows.append([name, fmt(py_seconds), fmt(np_seconds),
                     f"{speedup:.1f}x", py_stars])
    benchmark.extra_info.update(n=n, k=4, m=8)
    report.table(
        f"E9 backend comparison (n={n}, k=4, m=8)",
        ["algorithm", "python_s", "numpy_s", "speedup", "stars"],
        rows,
    )
