"""E19 — the anonymization service: cache throughput and batching.

The service's scaling story is amortization: optimal k-anonymity is
NP-hard, so the content-addressed solution cache turns every repeated
instance into an O(1) lookup.  This experiment measures

* **cold vs warm throughput** over the real TCP wire: identical
  instances served with the cache bypassed (every request re-solves)
  against the same instances served from the warm cache.  The gate —
  warm >= 5x cold — is the PR's acceptance criterion and is
  deliberately conservative: in practice the gap is orders of
  magnitude.
* **batch vs serial dispatch**: one batch of chunky distinct instances
  fanned out to ``jobs=2`` worker processes against the same batch
  solved serially (``jobs=1``), with a parity check.  The speedup is
  reported (not gated — spawn overhead and core count dominate on
  small CI boxes; E18 gates the underlying executor).

Run with ``REPRO_BENCH_QUICK=1`` for the CI-sized version.
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.service import AnonymizationService, ServiceClient, ServiceServer
from repro.workloads import census_table, quasi_identifiers

from .conftest import fmt, quick_mode

#: requests per throughput phase
REQUESTS = 20 if quick_mode() else 50

#: table size for the throughput workload (center_cover is ~quadratic,
#: so this keeps one cold solve in the tens of milliseconds)
N_ROWS = 48 if quick_mode() else 96


def _throughput(client: ServiceClient, table, *, use_cache: bool) -> float:
    """Requests per second over REQUESTS identical submissions."""
    started = time.perf_counter()
    for _ in range(REQUESTS):
        response = client.anonymize(table, 3, use_cache=use_cache)
        assert response["ok"]
    return REQUESTS / (time.perf_counter() - started)


def test_e19_warm_cache_throughput(benchmark, report):
    """Warm-cache throughput must be >= 5x cold on identical instances."""
    table = quasi_identifiers(census_table(N_ROWS, seed=0))
    with ServiceServer(AnonymizationService(max_entries=64)) as server:
        with ServiceClient(*server.address, timeout=300.0) as client:
            cold_rps = _throughput(client, table, use_cache=False)
            prime = client.anonymize(table, 3)  # fill the cache
            assert prime["cache"] == "miss"

            def warm_phase():
                return _throughput(client, table, use_cache=True)

            warm_rps = benchmark.pedantic(warm_phase, rounds=1,
                                          iterations=1)
            stats = client.stats()
    assert stats["cache"]["hits"] >= REQUESTS
    speedup = warm_rps / cold_rps
    benchmark.extra_info.update(
        n=N_ROWS, requests=REQUESTS, cold_rps=cold_rps, warm_rps=warm_rps,
        speedup=speedup,
    )
    report.line(
        f"E19 throughput (n={N_ROWS}, {REQUESTS} requests): "
        f"cold {fmt(cold_rps, 1)} req/s, warm {fmt(warm_rps, 1)} req/s "
        f"-> {fmt(speedup, 1)}x"
    )
    assert speedup >= 5.0


def _solve_batch(jobs: int, tables) -> tuple[list, float]:
    """One coalesced batch through the service core at *jobs* workers."""

    async def scenario():
        service = AnonymizationService(
            jobs=jobs, batch_window=0.2, max_batch=len(tables),
        )
        try:
            return await asyncio.gather(*(
                service.handle({
                    "op": "anonymize", "csv": t.to_csv(), "k": 2,
                    "algorithm": "exact",
                })
                for t in tables
            ))
        finally:
            await service.stop()

    started = time.perf_counter()
    responses = asyncio.run(scenario())
    return responses, time.perf_counter() - started


def test_e19_batch_vs_serial_dispatch(benchmark, report):
    """Batched dispatch onto 2 workers vs serial, bit-identical output."""
    from repro.experiments import ratio_table

    size = (9, 4) if quick_mode() else (11, 4)
    tables = [
        ratio_table(0, trial, size[0], size[1], 3)
        for trial in range(4 if quick_mode() else 6)
    ]
    serial, serial_seconds = _solve_batch(1, tables)

    def parallel_run():
        return _solve_batch(2, tables)

    parallel, parallel_seconds = benchmark.pedantic(
        parallel_run, rounds=1, iterations=1
    )
    assert [r["csv"] for r in parallel] == [r["csv"] for r in serial]
    assert [r["stars"] for r in parallel] == [r["stars"] for r in serial]
    speedup = serial_seconds / parallel_seconds
    benchmark.extra_info.update(
        batch=len(tables), n=size[0], serial_seconds=serial_seconds,
        parallel_seconds=parallel_seconds, speedup=speedup,
        cores=os.cpu_count(),
    )
    report.line(
        f"E19 batch of {len(tables)} exact solves (n={size[0]}): "
        f"jobs=1 {fmt(serial_seconds, 2)}s, "
        f"jobs=2 {fmt(parallel_seconds, 2)}s -> {fmt(speedup, 2)}x "
        f"on {os.cpu_count()} cores"
    )
