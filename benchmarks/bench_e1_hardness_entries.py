"""E1 — Theorem 3.1: the entry-suppression reduction's sharp threshold.

The theorem: a simple k-uniform hypergraph H (n vertices, m edges) has a
perfect matching iff the reduced table admits a k-anonymization with at
most n(m-1) suppressed cells.  This experiment builds planted (matching)
and matchless instances, solves the k-anonymity optimum exactly, and
reports OPT against the threshold — the reduction's behaviour is the
"table" this theory paper's result predicts:

    with matching   -> OPT == n(m-1)
    without matching-> OPT  > n(m-1)

Timing measures the exact solve on reduction instances (the hardness is
visible as growth with instance size).
"""

from __future__ import annotations

import pytest

from repro.algorithms.exact import optimal_anonymization
from repro.hardness.matching import find_perfect_matching
from repro.workloads import entry_reduction_instance

CASES = [
    # (n_groups, extra_edges, with_matching, seed)
    (2, 1, True, 0),
    (2, 2, True, 1),
    (3, 2, True, 2),
    (2, 2, False, 0),
    (3, 2, False, 1),
]


@pytest.mark.parametrize("n_groups,extra,with_matching,seed", CASES)
def test_e1_threshold(benchmark, report, n_groups, extra, with_matching, seed):
    red = entry_reduction_instance(
        n_groups, k=3, extra_edges=extra, with_matching=with_matching, seed=seed
    )
    opt, _ = benchmark.pedantic(
        optimal_anonymization, args=(red.table, 3), rounds=1, iterations=1
    )
    has_matching = find_perfect_matching(red.graph) is not None
    assert has_matching == with_matching
    meets = opt <= red.threshold
    assert meets == with_matching, (
        "Theorem 3.1 threshold equivalence violated"
    )
    benchmark.extra_info.update(
        n=red.table.n_rows, m=red.table.degree,
        threshold=red.threshold, opt=opt, matching=with_matching,
    )
    report.table(
        f"E1 Theorem 3.1 (n_groups={n_groups}, extra={extra}, seed={seed})",
        ["n", "m", "threshold n(m-1)", "OPT", "perfect matching", "OPT<=thr"],
        [[red.table.n_rows, red.table.degree, red.threshold, opt,
          has_matching, meets]],
    )


def test_e1_certificate_roundtrip(benchmark, report):
    """Matching -> anonymization -> matching, timed end to end."""
    red = entry_reduction_instance(3, k=3, extra_edges=3, with_matching=True,
                                   seed=7)

    def roundtrip():
        matching = find_perfect_matching(red.graph)
        anonymized = red.anonymize_from_matching(matching)
        return red.matching_from_anonymized(anonymized)

    matching = benchmark(roundtrip)
    report.line(
        f"E1 certificate roundtrip: edges {sorted(matching)} decode "
        f"consistently at threshold {red.threshold}"
    )
