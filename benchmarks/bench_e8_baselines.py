"""E8 — algorithm comparison table across workloads.

The paper positions its algorithms against the practice of the time
(Datafly/Samarati-style attribute suppression, clustering heuristics).
This experiment regenerates the comparison: suppressed-cell counts for
every algorithm on four workload families.  Expected shape:

* geometry-aware algorithms (center, forest, kmember, mondrian) beat the
  geometry-blind ones (random, datafly) on clustered and skewed data;
* on the planted workload the locality algorithms approach 0;
* everything stays below the suppress-everything ceiling.
"""

from __future__ import annotations

import pytest

from repro import registry
from repro.workloads import (
    census_table,
    planted_basket_table,
    planted_groups_table,
    quasi_identifiers,
    uniform_table,
    zipf_table,
)

from .conftest import fmt

K = 4

WORKLOADS = {
    "uniform": lambda: uniform_table(120, 6, alphabet_size=4, seed=0),
    "zipf": lambda: zipf_table(120, 6, alphabet_size=12, exponent=1.6, seed=0),
    "planted": lambda: planted_groups_table(30, K, 6, noise=0.08, seed=0),
    "census": lambda: quasi_identifiers(census_table(120, seed=0)),
    "baskets": lambda: planted_basket_table(30, K, 6, flip_probability=0.08,
                                            seed=0),
}

# resolved through the capability registry — no private name→class map
ALGORITHMS = {
    name: registry.get(name).cls
    for name in (
        "center_cover", "mondrian", "kmember", "mst_forest", "datafly",
        "topdown_greedy", "greedy_chain", "sorted_chunk",
        "random_partition", "suppress_everything",
    )
}

_results: dict[str, dict[str, int]] = {}


@pytest.mark.parametrize("workload", list(WORKLOADS))
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_e8_cost(benchmark, workload, algorithm):
    table = WORKLOADS[workload]()
    anonymizer = ALGORITHMS[algorithm]()
    result = benchmark.pedantic(anonymizer.anonymize, args=(table, K),
                                rounds=1, iterations=1)
    assert result.is_valid(table)
    _results.setdefault(workload, {})[algorithm] = result.stars
    benchmark.extra_info.update(workload=workload, stars=result.stars,
                                cells=table.total_cells())


def test_e8_summary(benchmark, report):
    """Assemble and print the comparison table; verify the shape claims."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_results) < len(WORKLOADS):
        pytest.skip("cost cells did not all run (filtered invocation)")
    header = ["workload"] + list(ALGORITHMS)
    rows = []
    for workload, costs in _results.items():
        cells = WORKLOADS[workload]().total_cells()
        rows.append(
            [workload]
            + [f"{costs[a]} ({fmt(100 * costs[a] / cells, 0)}%)"
               for a in ALGORITHMS]
        )
    report.table(f"E8 suppressed cells by algorithm (k={K})", header, rows)

    for workload, costs in _results.items():
        ceiling = costs["suppress_everything"]
        assert all(c <= ceiling for c in costs.values()), workload
        # locality beats blind chance everywhere
        assert costs["center_cover"] <= costs["random_partition"], workload
    # planted structure is found by the geometry-aware methods
    planted = _results["planted"]
    assert planted["center_cover"] < 0.75 * planted["random_partition"]
    assert planted["mst_forest"] < 0.5 * planted["random_partition"]
    assert planted["kmember"] < 0.5 * planted["random_partition"]
