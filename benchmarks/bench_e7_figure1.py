"""E7 — Figure 1: the triangle inequality on diameters of overlapping
sets, d(S_i u S_j) <= d(S_i) + d(S_j), which justifies Reduce's merge
step.

We sample many overlapping group pairs from random tables, measure the
realized ratio d(union) / (d(S_i) + d(S_j)), and confirm it never
exceeds 1 — plus we time Reduce itself on overlap-heavy covers, since
Figure 1 is exactly why Reduce preserves the diameter sum.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.reduce_cover import reduce_cover
from repro.core.distance import diameter_of
from repro.core.partition import Cover
from repro.core.table import Table

from .conftest import fmt


def _random_table(seed: int, n: int, m: int, sigma: int) -> Table:
    rng = np.random.default_rng(seed)
    data = rng.integers(0, sigma, size=(n, m))
    return Table([tuple(int(v) for v in row) for row in data])


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_e7_figure1_triangle(benchmark, report, seed):
    table = _random_table(seed, 20, 6, 3)
    rng = np.random.default_rng(1000 + seed)

    def sample_ratios():
        ratios = []
        for _ in range(300):
            shared = int(rng.integers(0, table.n_rows))
            size_a = int(rng.integers(2, 5))
            size_b = int(rng.integers(2, 5))
            a = frozenset(
                {shared} | {int(v) for v in rng.choice(table.n_rows, size_a)}
            )
            b = frozenset(
                {shared} | {int(v) for v in rng.choice(table.n_rows, size_b)}
            )
            denom = diameter_of(table, a) + diameter_of(table, b)
            if denom == 0:
                continue
            ratios.append(diameter_of(table, a | b) / denom)
        return ratios

    ratios = benchmark.pedantic(sample_ratios, rounds=1, iterations=1)
    worst = max(ratios)
    assert worst <= 1.0, "Figure 1's triangle inequality violated"
    benchmark.extra_info.update(samples=len(ratios), worst=worst)
    report.line(
        f"E7 Figure 1 seed={seed}: {len(ratios)} overlapping pairs, "
        f"max d(union)/(d(Si)+d(Sj)) = {fmt(worst, 3)} (bound 1.0)"
    )


def test_e7_reduce_preserves_diameter_sum(benchmark, report):
    """Reduce on an overlap-heavy cover: d never increases (the merge
    case leans on Figure 1)."""
    table = _random_table(9, 24, 5, 3)
    rng = np.random.default_rng(99)
    groups = []
    covered: set[int] = set()
    while covered != set(range(24)):
        members = {int(v) for v in rng.choice(24, size=3, replace=False)}
        groups.append(frozenset(members))
        covered |= members
    cover = Cover(groups, 24, k=2,
                  k_max=max(3, max(len(g) for g in groups)))

    partition = benchmark(reduce_cover, cover)
    before = cover.diameter_sum(table)
    after = partition.diameter_sum(table)
    assert after <= before
    report.table(
        "E7 Reduce diameter sums",
        ["cover sets", "d(cover)", "partition groups", "d(partition)"],
        [[len(cover), before, len(partition), after]],
    )
