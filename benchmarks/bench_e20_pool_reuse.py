"""E20 — persistent worker pool vs per-batch process spawning.

PR 4's service paid one interpreter spawn plus a full ``repro`` import
per worker on **every** dispatched batch, which dwarfed the actual
solve time for small instances.  The PR 5 hardening gives the service a
persistent :class:`~repro.experiments.WorkerPool` that spawns once and
stays warm across batches.

This experiment drives the same sequence of batches through the service
core twice — ``persistent_pool=True`` against ``persistent_pool=False``
(the old spawn-per-batch behaviour) — with the cache bypassed so every
request really reaches the workers.  One untimed warm-up batch runs in
both modes (it warms the persistent pool; it is a no-op for the
per-batch mode, which spawns fresh either way), so the timed phase is
the steady state a long-running server lives in.  The gate, persistent
>= 2x faster at ``jobs=2``, is the PR's acceptance criterion and is
conservative: each avoided spawn saves a full interpreter start plus a
``repro`` import per worker.

Run with ``REPRO_BENCH_QUICK=1`` for the CI-sized version.
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.service import AnonymizationService
from repro.workloads import census_table, quasi_identifiers

from .conftest import fmt, quick_mode

#: timed batches per mode (the per-batch mode pays one pool spawn for
#: each of these; the persistent mode pays one in total, untimed)
BATCHES = 4 if quick_mode() else 6

#: distinct requests per batch — enough to occupy both workers
BATCH_SIZE = 2

#: rows per instance: small on purpose, so pool management (the thing
#: under test) dominates the solve time
N_ROWS = 24 if quick_mode() else 36


def _phase(persistent: bool) -> tuple[list, float]:
    """All batches through one service core; seconds cover the timed
    batches only (the warm-up batch is excluded in both modes)."""
    tables = [
        quasi_identifiers(census_table(N_ROWS, seed=seed))
        for seed in range(BATCH_SIZE)
    ]
    service = AnonymizationService(
        jobs=2, batch_window=0.05, max_batch=BATCH_SIZE,
        persistent_pool=persistent,
    )

    async def one_batch():
        return await asyncio.gather(*(
            service.handle({
                "op": "anonymize", "csv": table.to_csv(), "k": 3,
                "use_cache": False,
            })
            for table in tables
        ))

    async def scenario():
        try:
            warm = await one_batch()
            assert all(r["ok"] for r in warm)
            responses = []
            started = time.perf_counter()
            for _ in range(BATCHES):
                responses.extend(await one_batch())
            elapsed = time.perf_counter() - started
            return responses, elapsed
        finally:
            await service.stop()

    return asyncio.run(scenario())


def test_e20_persistent_pool_beats_per_batch_spawn(benchmark, report):
    """A warm pool must serve batches >= 2x faster than spawn-per-batch."""
    per_batch, per_batch_seconds = _phase(persistent=False)

    def persistent_phase():
        return _phase(persistent=True)

    persistent, persistent_seconds = benchmark.pedantic(
        persistent_phase, rounds=1, iterations=1
    )
    assert all(r["ok"] for r in per_batch)
    assert all(r["ok"] for r in persistent)
    # same instances, same solver: identical releases either way
    assert [r["csv"] for r in persistent] == [r["csv"] for r in per_batch]
    speedup = per_batch_seconds / persistent_seconds
    benchmark.extra_info.update(
        batches=BATCHES, batch_size=BATCH_SIZE, n=N_ROWS,
        per_batch_seconds=per_batch_seconds,
        persistent_seconds=persistent_seconds, speedup=speedup,
        cores=os.cpu_count(),
    )
    report.line(
        f"E20 pool reuse ({BATCHES} batches of {BATCH_SIZE}, n={N_ROWS}, "
        f"jobs=2): spawn-per-batch {fmt(per_batch_seconds, 2)}s, "
        f"persistent {fmt(persistent_seconds, 2)}s "
        f"-> {fmt(speedup, 2)}x on {os.cpu_count()} cores"
    )
    assert speedup >= 2.0
