"""E11 — ablations of the pipeline's design choices (extension).

DESIGN.md calls out three internal choices worth isolating:

* **shrink step** — after Reduce, groups larger than 2k-1 are split
  (the Section 4.1 WLOG).  Ablation: anonymize the un-split partition.
  Splitting should never cost more and usually saves stars.
* **local search** — the optional hill-climbing pass over the final
  partition.  Ablation: off vs on, over several base algorithms.
* **ball diameter estimate** — Lemma 4.2's 2r surrogate vs exact
  diameters in the greedy ratio (across several seeds; E4 has one).
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    CenterCoverAnonymizer,
    KMemberAnonymizer,
    LocalSearchAnonymizer,
    MondrianAnonymizer,
    RandomPartitionAnonymizer,
)
from repro.algorithms.center_cover import build_ball_cover
from repro.algorithms.reduce_cover import reduce_and_shrink, reduce_cover
from repro.core.partition import anonymize_partition
from repro.workloads import planted_groups_table, uniform_table

from .conftest import fmt

K = 3


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_e11_shrink_step(benchmark, report, seed):
    """Stars with vs without the post-Reduce splitting step."""
    table = uniform_table(40, 5, alphabet_size=3, seed=seed)

    def both():
        cover = build_ball_cover(table, K)
        unsplit = reduce_cover(cover)
        split = reduce_and_shrink(table, cover)
        _, s_unsplit = anonymize_partition(table, unsplit)
        _, s_split = anonymize_partition(table, split)
        return s_unsplit.total_stars(), s_split.total_stars()

    unsplit_stars, split_stars = benchmark.pedantic(both, rounds=1,
                                                    iterations=1)
    assert split_stars <= unsplit_stars
    benchmark.extra_info.update(unsplit=unsplit_stars, split=split_stars)
    report.table(
        f"E11 shrink-step ablation (seed={seed}, k={K})",
        ["stars without split", "stars with split", "saved"],
        [[unsplit_stars, split_stars, unsplit_stars - split_stars]],
    )


BASES = {
    "center_cover": CenterCoverAnonymizer,
    "mondrian": MondrianAnonymizer,
    "kmember": KMemberAnonymizer,
    "random": lambda: RandomPartitionAnonymizer(seed=0),
}


@pytest.mark.parametrize("base", list(BASES))
def test_e11_local_search(benchmark, report, base):
    """Improvement delivered by the hill-climbing pass per base."""
    table = uniform_table(40, 5, alphabet_size=3, seed=7)

    def run():
        before = BASES[base]().anonymize(table, K).stars
        after = LocalSearchAnonymizer(BASES[base]()).anonymize(table, K).stars
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    assert after <= before
    saved = before - after
    benchmark.extra_info.update(base=base, before=before, after=after)
    report.line(
        f"E11 local search over {base}: {before} -> {after} stars "
        f"({fmt(100 * saved / max(before, 1), 1)}% saved)"
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_e11_diameter_mode(benchmark, report, seed):
    """Lemma 4.2 surrogate vs exact ball diameters, cost impact."""
    table = planted_groups_table(10, K, 5, noise=0.15, seed=seed)

    def run():
        surrogate = CenterCoverAnonymizer("radius_bound").anonymize(table, K)
        exact = CenterCoverAnonymizer("exact").anonymize(table, K)
        return surrogate.stars, exact.stars

    surrogate_stars, exact_stars = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    benchmark.extra_info.update(surrogate=surrogate_stars, exact=exact_stars)
    report.line(
        f"E11 diameter mode (seed={seed}): radius_bound={surrogate_stars}, "
        f"exact={exact_stars}"
    )
