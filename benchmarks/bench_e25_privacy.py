"""E25 — the privacy tier: what k buys against a linkage adversary,
and what the ε-DP post-pass costs.

Two regression gates on the census workload:

* **re-identification drops ≥ 5x from k=1 to k=5** — the projection
  attack (full quasi-identifier auxiliary knowledge) uniquely pins most
  individuals in the raw release and almost none in the 5-anonymous
  one (k-anonymity guarantees match sets of at least k, so unique
  re-identification of released individuals is impossible by
  construction — the gate catches a broken attack harness or a broken
  release path, whichever regresses first);
* **the DP noisy-histogram post-pass stays under 10% of solve time** —
  noise is O(classes), solving is superlinear in n, and the service
  attaches the post-pass to every ε request, so it must stay
  negligible.

Run with ``REPRO_BENCH_QUICK=1`` for the CI-sized version.
"""

from __future__ import annotations

from repro.experiments import privacy_experiment
from repro.privacy.dp import noisy_class_histogram
from repro.privacy.sensitive import split_sensitive
from repro.workloads import census_table

from .conftest import fmt, quick_mode

N_ROWS = 60 if quick_mode() else 120

EPSILON = 1.0

#: the attack gate: unique re-identification must fall at least this
#: much between the raw (k=1) and protected (k=5) releases
MIN_DROP = 5.0

#: the overhead gate: DP post-pass as a fraction of the k=5 solve
MAX_DP_OVERHEAD = 0.10


def test_e25_reidentification_drop(benchmark, report):
    exp = benchmark.pedantic(
        privacy_experiment,
        kwargs={"n": N_ROWS, "ks": (1, 5), "epsilon": EPSILON},
        rounds=1, iterations=1,
    )
    baseline, protected = exp.point(1), exp.point(5)
    assert baseline.stars == 0, "the k=1 baseline must be a no-op"
    assert baseline.fraction_unique > 0.5, (
        "the raw census release should re-identify most individuals"
    )
    assert protected.min_match >= 5 or protected.fraction_unique == 0.0
    drop = exp.reidentification_drop
    assert drop >= MIN_DROP, (
        f"unique re-identification fell only {drop:.1f}x from k=1 to "
        f"k=5 (gate: >= {MIN_DROP}x)"
    )
    benchmark.extra_info.update(
        n=N_ROWS,
        baseline_fraction_unique=baseline.fraction_unique,
        protected_fraction_unique=protected.fraction_unique,
        baseline_inference=baseline.inference_accuracy,
        protected_inference=protected.inference_accuracy,
    )
    report.table(
        f"E25 projection attack (census n={N_ROWS}, ε={EPSILON:g})",
        ["k", "stars", "unique re-id", "min match", "inference acc"],
        [
            [p.k, p.stars, f"{p.fraction_unique:.1%}", p.min_match,
             f"{p.inference_accuracy:.1%}"]
            for p in exp.points
        ],
    )


def test_e25_dp_overhead(benchmark, report):
    exp = privacy_experiment(n=N_ROWS, ks=(5,), epsilon=EPSILON)
    point = exp.point(5)
    assert point.dp_overhead < MAX_DP_OVERHEAD, (
        f"DP post-pass took {point.dp_overhead:.1%} of the k=5 solve "
        f"(gate: < {MAX_DP_OVERHEAD:.0%})"
    )
    # benchmark the post-pass itself so the baseline tracks its cost
    table = census_table(N_ROWS, seed=0)
    identifiers, _, _ = split_sensitive(table, -1)
    dp = benchmark(noisy_class_histogram, identifiers, EPSILON, seed=0)
    assert len(dp["classes"]) >= 1
    benchmark.extra_info.update(
        n=N_ROWS,
        solve_seconds=point.solve_seconds,
        dp_seconds=point.dp_seconds,
        dp_overhead=point.dp_overhead,
    )
    report.table(
        f"E25 ε-DP post-pass (census n={N_ROWS}, ε={EPSILON:g})",
        ["k", "solve s", "dp s", "overhead", "classes"],
        [[point.k, fmt(point.solve_seconds), fmt(point.dp_seconds),
          f"{point.dp_overhead:.1%}", point.classes]],
    )
