"""E6 — Lemmas 4.2 and 4.3: ball diameters and the cover restriction loss.

* Lemma 4.2: d(S_{c,r}) <= 2r for every ball.  We measure realized
  d(S)/r over all balls of random tables: never above 2.
* Lemma 4.3: restricting covers to balls costs at most a factor 2 in
  diameter sum versus unrestricted (k, 2k-1)-covers.  We compare the
  ball-cover greedy's diameter sum against the brute-force minimum
  diameter sum over partitions (a fortiori an upper bound on the
  unrestricted cover optimum... the measured factor lands around 2).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.center_cover import build_ball_cover
from repro.core.distance import diameter_of, distance
from repro.core.table import Table

from .conftest import fmt


def _random_table(seed: int, n: int, m: int, sigma: int) -> Table:
    rng = np.random.default_rng(seed)
    data = rng.integers(0, sigma, size=(n, m))
    return Table([tuple(int(v) for v in row) for row in data])


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_e6_lemma_4_2_ball_diameters(benchmark, report, seed):
    table = _random_table(seed, 25, 6, 3)

    def all_ball_stats():
        stats = []
        n = table.n_rows
        for c in range(n):
            dists = sorted(
                (distance(table[c], table[v]), v) for v in range(n)
            )
            for p in range(3, n + 1):
                if p < n and dists[p][0] == dists[p - 1][0]:
                    continue
                radius = dists[p - 1][0]
                if radius == 0:
                    continue
                members = frozenset(v for _, v in dists[:p])
                stats.append((radius, diameter_of(table, members)))
        return stats

    stats = benchmark.pedantic(all_ball_stats, rounds=1, iterations=1)
    worst = max(d / r for r, d in stats)
    assert worst <= 2.0, "Lemma 4.2 violated"
    benchmark.extra_info.update(balls=len(stats), worst_ratio=worst)
    report.line(
        f"E6 Lemma 4.2 seed={seed}: {len(stats)} balls, "
        f"max d(S)/r = {fmt(worst, 3)} (bound 2.0)"
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_e6_lemma_4_3_cover_loss(benchmark, report, seed):
    """Ball-cover diameter sum vs the partition minimum diameter sum."""
    from .bench_e5_sandwich import _min_diameter_partition

    table = _random_table(10 + seed, 7, 3, 3)
    k = 2

    def run():
        cover = build_ball_cover(table, k, diameter_mode="exact")
        dsum_cover = cover.diameter_sum(table)
        dsum_best, _ = _min_diameter_partition(table, k)
        return dsum_cover, dsum_best

    dsum_cover, dsum_best = benchmark.pedantic(run, rounds=1, iterations=1)
    # greedy pays the (1 + ln .) set-cover factor on top of Lemma 4.3's 2;
    # in practice the realized factor is small:
    factor = dsum_cover / dsum_best if dsum_best else 1.0
    benchmark.extra_info.update(cover=dsum_cover, best=dsum_best,
                                factor=factor)
    report.table(
        f"E6 Lemma 4.3 cover loss (seed={seed}, k=2)",
        ["d(ball cover)", "min d(partition)", "factor"],
        [[dsum_cover, dsum_best, fmt(factor, 2)]],
    )
    assert dsum_best == 0 or factor <= 2 * (
        1 + np.log(max(2, table.n_rows))
    ), "ball cover wildly above the Lemma 4.3 regime"
