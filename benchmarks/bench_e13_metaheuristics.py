"""E13 — metaheuristic extensions: how close can polynomial methods get?

The paper's closing question asks whether better ratios are possible.
This experiment measures the *practical* gap: on instances small enough
for exact OPT, compare the paper's algorithms, the post-optimization
passes (local search, simulated annealing), and the polynomial k=2
pair-matching optimum against OPT.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import registry
from repro.algorithms import LocalSearchAnonymizer
from repro.algorithms.exact import optimal_anonymization
from repro.core.table import Table

from .conftest import fmt


def _random_table(seed: int, n: int, m: int, sigma: int) -> Table:
    rng = np.random.default_rng(seed)
    data = rng.integers(0, sigma, size=(n, m))
    return Table([tuple(int(v) for v in row) for row in data])


CONTENDERS = {
    "center": lambda: registry.create("center_cover"),
    "greedy": lambda: registry.create("greedy_cover"),
    "center+local": lambda: LocalSearchAnonymizer(
        registry.create("center_cover")
    ),
    "center+anneal": lambda: registry.get("annealing").cls(
        steps=1500, seed=0
    ),
}

_gaps: dict[str, list[float]] = {}


@pytest.mark.parametrize("name", list(CONTENDERS))
def test_e13_gap_to_optimal(benchmark, report, name):
    tables = [_random_table(seed, 10, 4, 3) for seed in range(12)]
    optima = [optimal_anonymization(t, 2)[0] for t in tables]

    def run():
        return [CONTENDERS[name]().anonymize(t, 2).stars for t in tables]

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    ratios = [
        1.0 if opt == cost == 0 else cost / max(opt, 1)
        for opt, cost in zip(optima, costs)
    ]
    _gaps[name] = ratios
    benchmark.extra_info.update(mean_ratio=sum(ratios) / len(ratios))
    report.line(
        f"E13 {name}: mean ratio {fmt(sum(ratios) / len(ratios), 3)}, "
        f"max {fmt(max(ratios), 3)}, "
        f"optimal hits {sum(1 for r in ratios if r == 1.0)}/12"
    )


def test_e13_post_optimization_helps(benchmark, report):
    """The polish passes never hurt and usually shrink the mean ratio."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_gaps) < len(CONTENDERS):
        pytest.skip("gap cells did not all run (filtered invocation)")
    mean = {name: sum(r) / len(r) for name, r in _gaps.items()}
    assert mean["center+local"] <= mean["center"] + 1e-9
    assert mean["center+anneal"] <= mean["center"] + 1e-9
    report.table(
        "E13 mean ratio to OPT (k=2, n=10, 12 instances)",
        ["algorithm", "mean ratio"],
        [[name, fmt(value, 3)] for name, value in sorted(mean.items())],
    )


def test_e13_pair_matching_polynomial_k2(benchmark, report):
    """The k=2 pairs-only optimum, computed in polynomial time, against
    true OPT: the gap is the value of triples."""
    tables = [_random_table(100 + seed, 10, 4, 3) for seed in range(10)]

    def run():
        return [
            registry.create("pair_matching").anonymize(t, 2).stars
            for t in tables
        ]

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    exact_hits = 0
    rows = []
    for seed, (t, cost) in enumerate(zip(tables, costs)):
        opt, _ = optimal_anonymization(t, 2)
        assert cost >= opt
        exact_hits += cost == opt
        rows.append([seed, opt, cost])
    report.table(
        "E13 pair matching (poly-time, pairs-only exact) vs OPT",
        ["seed", "OPT", "pair matching"],
        rows,
    )
    report.line(f"E13 pair matching equals OPT on {exact_hits}/10 instances")
    assert exact_hits >= 5
