"""E5 — Lemma 4.1: the diameter-sum sandwich around OPT(V).

For each random instance we compute, exactly:
* OPT(V) (subset DP);
* the minimum diameter sum d* over (k, 2k-1)-partitions (brute force);

and verify  k * d*  <=  OPT(V)  <=  sum_S |S| (|S|-1) d(S)  on the
minimizing partition — the two directions of Lemma 4.1 that power
Corollary 4.1.
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np
import pytest

from repro.algorithms.exact import optimal_anonymization
from repro.core.distance import diameter_of, disagreeing_coordinates, group_rows
from repro.core.table import Table

from .conftest import fmt


def _random_table(seed: int, n: int, m: int, sigma: int) -> Table:
    rng = np.random.default_rng(seed)
    data = rng.integers(0, sigma, size=(n, m))
    return Table([tuple(int(v) for v in row) for row in data])


def _min_diameter_partition(table: Table, k: int):
    """Brute-force k-minimum diameter sum over (k, 2k-1)-partitions."""
    n = table.n_rows
    best = (math.inf, None)

    def rec(remaining: list[int], acc: list[frozenset[int]], total: int):
        nonlocal best
        if total >= best[0]:
            return
        if not remaining:
            best = (total, list(acc))
            return
        first, rest = remaining[0], remaining[1:]
        for size in range(k - 1, min(2 * k - 1, len(remaining))):
            if 0 < len(rest) - size < k:
                continue
            for mates in combinations(rest, size):
                group = frozenset((first, *mates))
                acc.append(group)
                rec([i for i in rest if i not in group], acc,
                    total + diameter_of(table, group))
                acc.pop()

    rec(list(range(n)), [], 0)
    return best


@pytest.mark.parametrize("k,seed", [(2, 0), (2, 1), (3, 2), (3, 3), (2, 4)])
def test_e5_sandwich(benchmark, report, k, seed):
    table = _random_table(seed, 7, 3, 3)

    def solve():
        opt, _ = optimal_anonymization(table, k)
        dsum, partition = _min_diameter_partition(table, k)
        return opt, dsum, partition

    opt, dsum, partition = benchmark.pedantic(solve, rounds=1, iterations=1)
    lower = k * dsum
    upper = sum(
        len(g) * (len(g) - 1) * diameter_of(table, g) for g in partition
    )
    # the partition-induced anonymization cost sits inside the sandwich
    induced = sum(
        len(g) * len(disagreeing_coordinates(group_rows(table, g)))
        for g in partition
    )
    assert lower <= opt, "Lemma 4.1 lower bound violated"
    assert opt <= induced <= max(upper, induced), "upper chain violated"
    assert induced <= upper or dsum == 0
    benchmark.extra_info.update(k=k, opt=opt, dsum=dsum, lower=lower,
                                induced=induced, upper=upper)
    report.table(
        f"E5 Lemma 4.1 sandwich (k={k}, seed={seed})",
        ["k*d*", "OPT", "induced cost", "sum |S|(|S|-1)d(S)",
         "lower ok", "upper ok"],
        [[lower, opt, induced, upper, lower <= opt, opt <= induced]],
    )


def test_e5_corollary_41_factor(benchmark, report):
    """Corollary 4.1 empirically: anonymizing along the min-diameter
    partition costs at most ~3k * OPT (here we print the realized
    factor, typically close to 1)."""
    rows = []
    factors = []

    def run_all():
        out = []
        for seed in range(6):
            table = _random_table(100 + seed, 7, 3, 3)
            opt, _ = optimal_anonymization(table, 2)
            dsum, partition = _min_diameter_partition(table, 2)
            induced = sum(
                len(g) * len(disagreeing_coordinates(group_rows(table, g)))
                for g in partition
            )
            out.append((seed, opt, induced))
        return out

    for seed, opt, induced in benchmark.pedantic(run_all, rounds=1,
                                                 iterations=1):
        factor = 1.0 if opt == induced == 0 else induced / max(opt, 1)
        factors.append(factor)
        rows.append([seed, opt, induced, fmt(factor, 2)])
    assert all(f <= 3 * 2 for f in factors)  # 3k with k=2
    report.table(
        "E5 Corollary 4.1: min-diameter partition cost vs OPT (k=2)",
        ["seed", "OPT", "partition cost", "factor (<= 3k = 6)"],
        rows,
    )
