"""E17 — cost of observability: tracing and deadline overhead.

The instrumentation layer promises near-zero cost when off (one
timestamp pair and one branch per ``anonymize`` call) and small,
bounded cost when on (phase timers plus a counter-dict snapshot per
call).  This experiment quantifies both against the untraced baseline
on the workhorse algorithms, and asserts the tracing-on overhead stays
under 5% (median of repeated interleaved measurements, plus a small
absolute epsilon so sub-millisecond workloads don't trip on timer
noise).

Run with ``REPRO_BENCH_QUICK=1`` for the CI-sized version; CI pins
``REPRO_BACKEND=python`` so the measured work is the deterministic
pure-Python metric path.
"""

from __future__ import annotations

import statistics
import time

from repro.algorithms.center_cover import CenterCoverAnonymizer
from repro.algorithms.chain import GreedyChainAnonymizer
from repro.algorithms.local_search import LocalSearchAnonymizer
from repro.core.backend import get_backend
from repro.workloads import uniform_table

from .conftest import fmt, quick_mode

#: tolerated tracing-on slowdown: 5% relative plus 5 ms absolute slack
RELATIVE_LIMIT = 1.05
ABSOLUTE_EPSILON = 0.005


def _median_seconds(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _measure(algorithm, table, k, repeats):
    """Interleaved off/on medians, warm cache, same instance."""
    get_backend(table).distance_matrix()  # warm the shared cache
    algorithm.anonymize(table, k)  # warm-up run outside the timing
    off = _median_seconds(
        lambda: algorithm.anonymize(table, k, trace=False), repeats
    )
    on = _median_seconds(
        lambda: algorithm.anonymize(table, k, trace=True), repeats
    )
    return off, on


def test_e17_trace_overhead_under_limit(benchmark, report):
    n = 120 if quick_mode() else 240
    repeats = 5 if quick_mode() else 9
    table = uniform_table(n, 6, alphabet_size=4, seed=0)
    algorithms = {
        "center_cover": CenterCoverAnonymizer(),
        "greedy_chain": GreedyChainAnonymizer(),
        "center_cover+local": LocalSearchAnonymizer(max_rounds=5),
    }

    def measure_all():
        return {
            name: _measure(algorithm, table, 4, repeats)
            for name, algorithm in algorithms.items()
        }

    timings = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    rows = []
    for name, (off, on) in timings.items():
        overhead = (on / off - 1.0) if off > 0 else 0.0
        assert on <= off * RELATIVE_LIMIT + ABSOLUTE_EPSILON, (
            f"{name}: tracing costs {overhead:.1%} "
            f"({fmt(off, 4)}s off vs {fmt(on, 4)}s on)"
        )
        benchmark.extra_info[name] = {
            "off_seconds": off, "on_seconds": on, "overhead": overhead,
        }
        rows.append([name, fmt(off, 4), fmt(on, 4), f"{overhead:+.1%}"])
    benchmark.extra_info.update(n=n, k=4, repeats=repeats)
    report.table(
        f"E17 trace overhead (n={n}, k=4, median of {repeats})",
        ["algorithm", "trace_off_s", "trace_on_s", "overhead"],
        rows,
    )


def test_e17_deadline_check_overhead(benchmark, report):
    """An armed-but-generous budget must not slow the search loops."""
    n = 100 if quick_mode() else 200
    repeats = 5 if quick_mode() else 9
    table = uniform_table(n, 6, alphabet_size=4, seed=1)
    algorithm = LocalSearchAnonymizer(max_rounds=5)
    get_backend(table).distance_matrix()
    algorithm.anonymize(table, 4)

    def measure():
        plain = _median_seconds(
            lambda: algorithm.anonymize(table, 4), repeats
        )
        budgeted = _median_seconds(
            lambda: algorithm.anonymize(table, 4, timeout=3600.0), repeats
        )
        return plain, budgeted

    plain, budgeted = benchmark.pedantic(measure, rounds=1, iterations=1)
    # generous relative bound: the check is one monotonic read per
    # candidate scan, invisible next to the O(m) what-if queries
    assert budgeted <= plain * 1.25 + ABSOLUTE_EPSILON
    benchmark.extra_info.update(
        n=n, plain_seconds=plain, budgeted_seconds=budgeted
    )
    report.line(
        f"E17 deadline checks: {fmt(plain, 4)}s plain vs "
        f"{fmt(budgeted, 4)}s with an armed 1h budget"
    )
