"""E16 — weighted suppression: stars migrate to cheap columns (extension).

The weighted objective generalizes the paper's star count; this
experiment verifies the behaviour a publisher relies on: under a skewed
weight vector the exact weighted optimum suppresses (almost) nothing in
the expensive column, at a bounded premium in raw star count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.alphabet import STAR
from repro.core.partition import anonymize_partition
from repro.core.table import Table
from repro.core.weights import (
    optimal_weighted_anonymization,
    weighted_cluster_partition,
    weighted_star_cost,
)
from repro.algorithms.exact import optimal_anonymization

from .conftest import fmt


def _random_table(seed: int, n: int, m: int, sigma: int) -> Table:
    rng = np.random.default_rng(seed)
    data = rng.integers(0, sigma, size=(n, m))
    return Table([tuple(int(v) for v in row) for row in data])


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_e16_stars_avoid_expensive_columns(benchmark, report, seed):
    table = _random_table(seed, 9, 3, 3)
    weights = [1.0, 1.0, 25.0]  # column 2 is precious

    def solve_both():
        unweighted_opt, unweighted_partition = optimal_anonymization(table, 2)
        _, weighted_partition = optimal_weighted_anonymization(
            table, 2, weights
        )
        return unweighted_opt, unweighted_partition, weighted_partition

    unweighted_opt, unweighted_partition, weighted_partition = (
        benchmark.pedantic(solve_both, rounds=1, iterations=1)
    )
    released_u, _ = anonymize_partition(table, unweighted_partition)
    released_w, _ = anonymize_partition(table, weighted_partition)

    def stars_in_column(released, j):
        return sum(1 for row in released.rows if row[j] is STAR)

    precious_u = stars_in_column(released_u, 2)
    precious_w = stars_in_column(released_w, 2)
    assert precious_w <= precious_u
    assert weighted_star_cost(released_w, weights) <= weighted_star_cost(
        released_u, weights
    ) + 1e-9
    benchmark.extra_info.update(
        unweighted_precious=precious_u, weighted_precious=precious_w,
    )
    report.table(
        f"E16 weighted optimum (seed={seed}, weights {weights})",
        ["precious-col stars (unweighted OPT)",
         "precious-col stars (weighted OPT)",
         "raw stars unweighted", "raw stars weighted"],
        [[precious_u, precious_w, unweighted_opt,
          sum(1 for row in released_w.rows for v in row if v is STAR)]],
    )


def test_e16_greedy_weighted_tracks_exact(benchmark, report):
    """The polynomial weighted clustering stays within a small factor of
    the weighted exact optimum."""
    weights = [4.0, 1.0, 1.0]
    ratios = []

    def run():
        out = []
        for seed in range(8):
            table = _random_table(100 + seed, 9, 3, 3)
            opt, _ = optimal_weighted_anonymization(table, 3, weights)
            partition = weighted_cluster_partition(table, 3, weights)
            released, _ = anonymize_partition(table, partition)
            cost = weighted_star_cost(released, weights)
            out.append((opt, cost))
        return out

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    for opt, cost in pairs:
        assert cost >= opt - 1e-9
        ratios.append(1.0 if opt == cost == 0 else cost / max(opt, 1e-9))
    report.line(
        f"E16 weighted clustering vs exact: mean ratio "
        f"{fmt(sum(ratios) / len(ratios), 2)}, max {fmt(max(ratios), 2)}"
    )
    assert max(ratios) <= 4.0
