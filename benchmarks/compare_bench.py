#!/usr/bin/env python3
"""Benchmark regression guard: diff a fresh run against a baseline.

Compares a ``pytest-benchmark --benchmark-json`` output file against a
committed baseline (``benchmarks/baselines/BENCH_*.json``) and fails —
exit status 1 — when any benchmark's mean time regressed beyond the
threshold (default: 25% slower, i.e. ratio > 1.25).

Baselines are stored in a *reduced* form (name -> mean seconds, plus
provenance) so the committed files stay small and diffs readable; the
script reads both the reduced form and raw pytest-benchmark JSON, and
``--update`` (re)writes a baseline from the current run:

    pytest benchmarks/bench_e9_runtime.py --benchmark-json=run.json
    python benchmarks/compare_bench.py run.json \
        --baseline benchmarks/baselines/BENCH_e9.json [--update]

Policy, also documented in docs/performance.md:

* Only benchmarks present in BOTH files are compared; new benchmarks
  are listed as informational, vanished ones as warnings (a vanished
  benchmark usually means a renamed test — refresh the baseline).
* Sub-millisecond baselines (see ``--min-seconds``) are skipped: at
  that scale the runner's jitter exceeds any real regression.
* The threshold can be loosened per run via ``--threshold`` or the
  ``REPRO_BENCH_TOLERANCE`` environment variable (e.g. on a noisy
  shared runner) — never tightened silently.
* Improvements are reported but never fail the run; commit a refreshed
  baseline (``--update``) to lock them in.

Stdlib only — runs anywhere the test suite runs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

#: baseline file format revision
BASELINE_VERSION = 1


def load_means(path: Path) -> dict[str, float]:
    """``{benchmark name: mean seconds}`` from either JSON format."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data.get("means"), dict):  # reduced baseline form
        return {str(name): float(mean) for name, mean in data["means"].items()}
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise SystemExit(
            f"error: {path} is neither a pytest-benchmark JSON file nor "
            f"a compare_bench baseline"
        )
    return {
        entry["fullname"]: float(entry["stats"]["mean"])
        for entry in benchmarks
    }


def write_baseline(path: Path, means: dict[str, float]) -> None:
    """Write the reduced baseline form (sorted, with provenance)."""
    payload = {
        "version": BASELINE_VERSION,
        "quick_mode": bool(os.environ.get("REPRO_BENCH_QUICK")),
        "backend": os.environ.get("REPRO_BACKEND") or "default",
        "machine": {
            "python": platform.python_version(),
            "system": platform.system(),
            "machine": platform.machine(),
        },
        "means": {name: means[name] for name in sorted(means)},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when benchmark mean times regress vs a baseline"
    )
    parser.add_argument(
        "current", type=Path,
        help="fresh pytest-benchmark --benchmark-json output",
    )
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="committed baseline (benchmarks/baselines/BENCH_*.json)",
    )
    parser.add_argument(
        "--threshold", type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25")),
        help="allowed fractional slowdown before failing "
             "(default: 0.25 = 25%%; env: REPRO_BENCH_TOLERANCE)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.001,
        help="skip benchmarks whose baseline mean is below this "
             "(jitter floor, default: 0.001)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="(re)write the baseline from the current run and exit 0",
    )
    args = parser.parse_args(argv)

    current = load_means(args.current)
    if not current:
        print("error: the current run holds no benchmarks", file=sys.stderr)
        return 1
    if args.update or not args.baseline.exists():
        write_baseline(args.baseline, current)
        action = "updated" if args.update else "seeded missing"
        print(f"{action} baseline {args.baseline} "
              f"({len(current)} benchmarks)")
        return 0

    baseline = load_means(args.baseline)
    regressions: list[tuple[str, float, float, float]] = []
    compared = skipped = improved = 0
    print(f"comparing {args.current} against {args.baseline} "
          f"(threshold: +{args.threshold:.0%}, "
          f"floor: {args.min_seconds:g}s)")
    for name in sorted(set(current) & set(baseline)):
        before, after = baseline[name], current[name]
        if before < args.min_seconds:
            skipped += 1
            continue
        compared += 1
        ratio = after / before
        marker = " "
        if ratio > 1.0 + args.threshold:
            regressions.append((name, before, after, ratio))
            marker = "!"
        elif ratio < 1.0 - args.threshold:
            improved += 1
            marker = "+"
        print(f"  {marker} {name}: {before * 1e3:.2f}ms -> "
              f"{after * 1e3:.2f}ms ({ratio:.2f}x)")

    for name in sorted(set(current) - set(baseline)):
        print(f"  ? new benchmark (not in baseline): {name}")
    for name in sorted(set(baseline) - set(current)):
        print(f"  ? baseline benchmark missing from this run: {name}")

    summary = (
        f"{compared} compared, {skipped} below the jitter floor, "
        f"{improved} improved, {len(regressions)} regressed"
    )
    if regressions:
        print(f"FAIL: {summary}", file=sys.stderr)
        for name, before, after, ratio in regressions:
            print(
                f"  regression: {name} {before * 1e3:.2f}ms -> "
                f"{after * 1e3:.2f}ms ({ratio:.2f}x > "
                f"{1 + args.threshold:.2f}x)",
                file=sys.stderr,
            )
        print(
            "  (expected? refresh the baseline with --update and commit "
            "it with the change that justifies the cost)",
            file=sys.stderr,
        )
        return 1
    print(f"ok: {summary}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
