"""Shared helpers for the experiment harness.

Each ``bench_e*.py`` regenerates one experiment from DESIGN.md's index.
Timings come from pytest-benchmark; the experiment's *result rows*
(ratios, thresholds, costs) are printed straight to the terminal via the
``report`` fixture so they survive output capturing, and are also stored
in ``benchmark.extra_info`` for machine consumption.
"""

from __future__ import annotations

import pytest


class Reporter:
    """Prints experiment tables past pytest's capture."""

    def __init__(self, capsys):
        self._capsys = capsys

    def table(self, title: str, header: list[str], rows: list[list]) -> None:
        with self._capsys.disabled():
            print(f"\n=== {title} ===")
            widths = [
                max(len(str(header[j])), *(len(str(r[j])) for r in rows))
                if rows else len(str(header[j]))
                for j in range(len(header))
            ]
            print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
            for row in rows:
                print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))

    def line(self, text: str) -> None:
        with self._capsys.disabled():
            print(text)


@pytest.fixture
def report(capsys) -> Reporter:
    return Reporter(capsys)


def fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"
