"""Shared helpers for the experiment harness.

Each ``bench_e*.py`` regenerates one experiment from DESIGN.md's index.
Timings come from pytest-benchmark; the experiment's *result rows*
(ratios, thresholds, costs) are printed straight to the terminal via the
``report`` fixture so they survive output capturing, and are also stored
in ``benchmark.extra_info`` for machine consumption.
"""

from __future__ import annotations

import os

import pytest

from repro.core.backend import available_backends, default_backend_name


def quick_mode() -> bool:
    """True when REPRO_BENCH_QUICK is set — shrink workloads for CI."""
    return bool(os.environ.get("REPRO_BENCH_QUICK"))


def pytest_report_header(config) -> str:
    backend = default_backend_name()
    parts = [
        f"repro backend: {backend} (available: "
        f"{', '.join(available_backends())})"
    ]
    if quick_mode():
        parts.append("repro bench mode: quick (REPRO_BENCH_QUICK)")
    return "\n".join(parts)


class Reporter:
    """Prints experiment tables past pytest's capture."""

    def __init__(self, capsys):
        self._capsys = capsys

    def table(self, title: str, header: list[str], rows: list[list]) -> None:
        with self._capsys.disabled():
            print(f"\n=== {title} ===")
            widths = [
                max(len(str(header[j])), *(len(str(r[j])) for r in rows))
                if rows else len(str(header[j]))
                for j in range(len(header))
            ]
            print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
            for row in rows:
                print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))

    def line(self, text: str) -> None:
        with self._capsys.disabled():
            print(text)


@pytest.fixture
def report(capsys) -> Reporter:
    return Reporter(capsys)


def fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"
