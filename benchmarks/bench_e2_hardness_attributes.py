"""E2 — Theorem 3.2: the attribute-suppression reduction's threshold.

H has a perfect matching iff the binary incidence table can be
k-anonymized by suppressing exactly m - n/k whole attributes (any fewer
is impossible; the theorem's proof shows at least m - n/k are always
needed).
"""

from __future__ import annotations

import pytest

from repro.algorithms.exact import optimal_attribute_suppression
from repro.hardness.matching import find_perfect_matching
from repro.workloads import attribute_reduction_instance

CASES = [
    (2, 2, True, 0),
    (3, 3, True, 1),
    (2, 2, False, 0),
    (3, 3, False, 1),
]


@pytest.mark.parametrize("n_groups,extra,with_matching,seed", CASES)
def test_e2_threshold(benchmark, report, n_groups, extra, with_matching, seed):
    red = attribute_reduction_instance(
        n_groups, k=3, extra_edges=extra, with_matching=with_matching, seed=seed
    )
    count, suppressed = benchmark.pedantic(
        optimal_attribute_suppression, args=(red.table, 3),
        rounds=1, iterations=1,
    )
    assert count >= red.threshold, "fewer than m - n/k attributes sufficed!"
    meets = count == red.threshold
    assert meets == with_matching
    if meets:
        kept = [j for j in range(red.table.degree) if j not in suppressed]
        red.matching_from_kept_attributes(kept)  # decodes a matching
    benchmark.extra_info.update(
        n=red.table.n_rows, m=red.table.degree,
        threshold=red.threshold, min_suppressed=count,
        matching=with_matching,
    )
    report.table(
        f"E2 Theorem 3.2 (n_groups={n_groups}, extra={extra}, seed={seed})",
        ["n", "m", "threshold m-n/k", "min suppressed attrs",
         "perfect matching", "hits threshold"],
        [[red.table.n_rows, red.table.degree, red.threshold, count,
          with_matching, meets]],
    )


def test_e2_column_structure(benchmark, report):
    """Every attribute column has exactly k ones ('for every j there are
    exactly k vectors with v_l[j] = b1')."""
    red = attribute_reduction_instance(3, k=3, extra_edges=4, seed=5)

    def column_weights():
        return [
            sum(1 for row in red.table.rows if row[j] == 1)
            for j in range(red.table.degree)
        ]

    weights = benchmark(column_weights)
    assert set(weights) == {3}
    report.line(
        f"E2 structure: all {red.table.degree} columns have exactly k=3 ones"
    )
