"""E15 — streaming anonymization: the price of monotone disclosure
(extension).

Incremental release must never let a published cell become more
specific (else successive snapshots can be intersected).  This
experiment measures what that invariant costs versus one-shot batch
anonymization of the same final table, across stream lengths — and
verifies every intermediate snapshot is publishable.
"""

from __future__ import annotations

import pytest

from repro.algorithms import CenterCoverAnonymizer
from repro.algorithms.incremental import IncrementalAnonymizer
from repro.workloads import census_table

from .conftest import fmt

K = 3


@pytest.mark.parametrize("n", [30, 60, 120])
def test_e15_streaming_overhead(benchmark, report, n):
    source = census_table(n, seed=5, age_bucket=10).project(
        ["age", "sex", "race"]
    )

    def stream():
        inc = IncrementalAnonymizer(k=K, degree=source.degree,
                                    attributes=source.attributes)
        for row in source.rows:
            inc.insert([row])
            assert inc.is_publishable()
        return inc

    inc = benchmark.pedantic(stream, rounds=1, iterations=1)
    streaming_stars = inc.total_stars()
    batch_stars = CenterCoverAnonymizer().anonymize(source, K).stars
    overhead = streaming_stars / max(1, batch_stars)
    benchmark.extra_info.update(
        n=n, streaming=streaming_stars, batch=batch_stars, overhead=overhead
    )
    report.table(
        f"E15 streaming vs batch (n={n}, k={K})",
        ["streaming stars", "batch stars", "overhead factor"],
        [[streaming_stars, batch_stars, fmt(overhead, 2)]],
    )
    # the invariant has a price, but it must stay sane
    assert streaming_stars <= source.total_cells()
    assert streaming_stars >= batch_stars * 0.5  # sanity on the comparison


def test_e15_throughput(benchmark, report):
    """Insert throughput: the per-row work is bounded by group count,
    so a 500-row stream should take well under a second."""
    source = census_table(500, seed=6, age_bucket=10).project(["age", "sex"])

    def stream():
        inc = IncrementalAnonymizer(k=K, degree=2)
        inc.insert(source.rows)
        return inc

    inc = benchmark.pedantic(stream, rounds=2, iterations=1)
    assert inc.n_rows == 500
    report.line(
        f"E15 throughput: 500 inserts, {len(inc._groups)} groups, "
        f"{inc.total_stars()} stars"
    )
