"""E21 — the bit-packed Hamming kernel on wide binary tables.

The Theorem 3.2 hardness regime — many binary attributes, alphabet
Sigma = {0, 1} — is exactly where per-attribute compares are slowest and
where the bit-packed backend shines: 64 binary columns per uint64 lane,
distances via XOR+popcount.  This experiment measures

* the raw distance-matrix kernel (``matrix_array``) for the numpy and
  bitpacked backends, **gating bitpacked >= 5x over numpy** whenever the
  table has >= 128 binary attributes;
* the end-to-end ``distance_matrix()`` build across all three backends
  (the shared nested-list conversion dilutes the kernel win — see
  docs/performance.md);
* a full center/ball (Theorem 4.2) solve per backend, asserting the
  release is identical — the kernel never changes an output.

Run with ``REPRO_BENCH_QUICK=1`` for the CI-sized version.
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms.center_cover import CenterCoverAnonymizer
from repro.core.backend import available_backends, make_backend
from repro.workloads import uniform_table

from .conftest import fmt, quick_mode

needs_numpy = pytest.mark.skipif(
    "numpy" not in available_backends(),
    reason="numpy backend not available",
)

#: minimum kernel speedup on wide binary tables (>= 128 binary attrs)
KERNEL_GATE = 5.0

_SHAPES = [(200, 128)] if quick_mode() else [(200, 128), (400, 256)]


def _binary_table(n: int, m: int):
    return uniform_table(n, m, alphabet_size=2, seed=3)


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@needs_numpy
@pytest.mark.parametrize("n,m", _SHAPES)
def test_e21_bitpack_kernel_speedup(benchmark, report, n, m):
    """XOR+popcount vs integer-compare broadcast on the raw kernel.

    Fresh backend instances per timing round so nothing is served from
    the lazy-matrix memo; ``matrix_array`` is the kernel both accelerated
    backends build their matrices from.
    """
    table = _binary_table(n, m)

    def compare():
        np_seconds = _best_of(
            lambda: make_backend(table, "numpy").matrix_array()
        )
        bp_seconds = _best_of(
            lambda: make_backend(table, "bitpacked").matrix_array()
        )
        return np_seconds, bp_seconds

    np_seconds, bp_seconds = benchmark.pedantic(compare, rounds=1,
                                                iterations=1)
    speedup = np_seconds / bp_seconds if bp_seconds > 0 else float("inf")
    assert (
        make_backend(table, "bitpacked").matrix_array()
        == make_backend(table, "numpy").matrix_array()
    ).all(), "kernels disagree on the matrix"
    if m >= 128:
        assert speedup >= KERNEL_GATE, (
            f"bitpacked kernel only {speedup:.1f}x over numpy at "
            f"n={n}, m={m} (gate: {KERNEL_GATE}x)"
        )
    benchmark.extra_info.update(
        n=n, m=m, numpy_seconds=np_seconds, bitpacked_seconds=bp_seconds,
        speedup=speedup,
    )
    report.line(
        f"E21 kernel n={n} m={m}: numpy {fmt(np_seconds)}s, "
        f"bitpacked {fmt(bp_seconds)}s — {speedup:.1f}x "
        f"(gate {KERNEL_GATE:.0f}x at m>=128)"
    )


@needs_numpy
def test_e21_distance_matrix_end_to_end(benchmark, report):
    """Full ``distance_matrix()`` build per backend on the E21 table."""
    n, m = _SHAPES[0]
    table = _binary_table(n, m)

    def compare():
        timings = {}
        for name in available_backends():
            backend = make_backend(table, name)
            start = time.perf_counter()
            matrix = backend.distance_matrix()
            timings[name] = (time.perf_counter() - start, matrix)
        return timings

    timings = benchmark.pedantic(compare, rounds=1, iterations=1)
    reference = timings["python"][1]
    rows = []
    for name, (seconds, matrix) in timings.items():
        assert matrix == reference, f"{name} disagrees with python"
        ratio = timings["python"][0] / seconds if seconds > 0 else float(
            "inf"
        )
        rows.append([name, fmt(seconds), f"{ratio:.1f}x"])
        benchmark.extra_info[f"{name}_seconds"] = seconds
    benchmark.extra_info.update(n=n, m=m)
    report.table(
        f"E21 distance_matrix (n={n}, m={m}, binary)",
        ["backend", "seconds", "vs python"],
        rows,
    )


@needs_numpy
def test_e21_center_ball_solve(benchmark, report):
    """Theorem 4.2 solve on the hardness-regime table, per backend.

    The kernel is a drop-in: every backend must release the identical
    table (same stars, same rows), whatever the speed.
    """
    n, m = (120, 128) if quick_mode() else (200, 192)
    table = _binary_table(n, m)
    k = 4

    def compare():
        timings = {}
        for name in available_backends():
            algorithm = CenterCoverAnonymizer(
                backend=make_backend(table, name)
            )
            start = time.perf_counter()
            result = algorithm.anonymize(table, k)
            timings[name] = (time.perf_counter() - start, result)
        return timings

    timings = benchmark.pedantic(compare, rounds=1, iterations=1)
    reference = timings["python"][1]
    rows = []
    for name, (seconds, result) in timings.items():
        assert result.anonymized.rows == reference.anonymized.rows, (
            f"{name} released a different table"
        )
        assert result.stars == reference.stars
        rows.append([name, fmt(seconds), result.stars])
        benchmark.extra_info[f"{name}_seconds"] = seconds
    benchmark.extra_info.update(n=n, m=m, k=k, stars=reference.stars)
    report.table(
        f"E21 center/ball solve (n={n}, m={m}, k={k}, binary)",
        ["backend", "seconds", "stars"],
        rows,
    )
