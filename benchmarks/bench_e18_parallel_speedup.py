"""E18 — the parallel experiment engine: speedup and bit-exactness.

The trial executor fans independent trials out over worker processes
(``jobs=``) while keeping results bit-identical to a serial run (per-
trial seeds are derived from ``SeedSequence(base_seed, spawn_key=(t,))``
— scheduling order can't leak into the data).  This experiment measures
the wall-clock win on the E3/E10-style workloads and asserts the parity
contract under timing pressure.

The speedup gate needs real hardware parallelism and is skipped on
single-core runners; the parity checks run everywhere.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import registry
from repro.experiments import comparison, k_sweep, ratio_experiment
from repro.workloads import census_table, quasi_identifiers

from .conftest import fmt, quick_mode

#: exact ground truth per trial makes each trial chunky enough that the
#: pool's spawn overhead amortizes away
RATIO_KWARGS = (
    dict(k=2, n=9, m=4, sigma=3, trials=4)
    if quick_mode()
    else dict(k=2, n=11, m=4, sigma=3, trials=8)
)


def _timed(jobs: int):
    algorithm = registry.create("center_cover")
    started = time.perf_counter()
    exp = ratio_experiment(algorithm, jobs=jobs, **RATIO_KWARGS)
    return exp, time.perf_counter() - started


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="speedup needs >= 2 CPU cores",
)
def test_e18_jobs2_speedup(benchmark, report):
    """jobs=2 must beat jobs=1 by >= 1.3x on a two-core (or better) box
    while returning the exact same experiment."""
    serial, serial_seconds = _timed(jobs=1)

    def parallel_run():
        return _timed(jobs=2)

    parallel, parallel_seconds = benchmark.pedantic(
        parallel_run, rounds=1, iterations=1
    )
    assert parallel == serial  # parity before performance
    speedup = serial_seconds / parallel_seconds
    benchmark.extra_info.update(
        serial_seconds=serial_seconds,
        parallel_seconds=parallel_seconds,
        speedup=speedup,
        cores=os.cpu_count(),
    )
    report.line(
        f"E18 ratio sweep: jobs=1 {fmt(serial_seconds, 2)}s, "
        f"jobs=2 {fmt(parallel_seconds, 2)}s -> {fmt(speedup, 2)}x "
        f"on {os.cpu_count()} cores"
    )
    assert speedup >= 1.3


def test_e18_parallel_parity(benchmark, report):
    """The parity contract on every runner shape, timed under jobs=2.

    Runs on any core count — correctness must not depend on the pool
    actually speeding anything up.
    """
    table = quasi_identifiers(census_table(60 if quick_mode() else 120,
                                           seed=0))
    serial_sweep = k_sweep(table, ks=(2, 4, 6), jobs=1)
    serial_costs = comparison(table, 3, jobs=1)

    def parallel_run():
        return k_sweep(table, ks=(2, 4, 6), jobs=2), comparison(
            table, 3, jobs=2
        )

    parallel_sweep, parallel_costs = benchmark.pedantic(
        parallel_run, rounds=1, iterations=1
    )
    assert parallel_sweep == serial_sweep
    assert parallel_costs == serial_costs
    report.line(
        f"E18 parity: k_sweep and comparison bit-identical at jobs=2 "
        f"(n={table.n_rows})"
    )
