"""E24 — multi-shard routing: horizontal scaling of the service fleet.

PR 9's router turns N ``kanon serve`` processes into one service whose
solution cache is partitioned by consistent hashing — so the fleet's
aggregate solve rate should scale with the shard count on a workload of
*disjoint* instances (nothing coalesces, nothing is shared).  This
experiment runs the real thing end to end: real shard subprocesses,
a real router, concurrent clients over TCP — and measures

* **aggregate cold+warm throughput** of 3 shards vs 1 shard on a
  workload balanced across the 3-shard ring by construction (the same
  instances both times).  The ≥ 2.2x gate applies only on machines
  with at least 3 cores — shard processes timeshare a smaller box and
  the scaling is physically impossible there (the correctness asserts
  below always run);
* **zero duplicate solves**: summed per-shard ``solved_instances``
  equals the number of unique instances, and each shard solved exactly
  its slice;
* **byte-identical releases**: every instance's released CSV matches
  across the 1-shard and 3-shard topologies and across cold vs warm.

Run with ``REPRO_BENCH_QUICK=1`` for the CI-sized version.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import repro
from repro.service import RouterServer, ServiceClient, ShardRouter
from repro.workloads import census_table, quasi_identifiers

from .conftest import fmt, quick_mode

#: disjoint instances owned by EACH of the 3 shards
PER_SHARD = 4 if quick_mode() else 8

#: rows per instance (center_cover is ~quadratic: tens of ms per solve)
N_ROWS = 48 if quick_mode() else 64

#: concurrent client threads driving the fleet
CLIENTS = 6

K = 3

_LISTENING = re.compile(r"listening on ([0-9.]+):(\d+)")


def _spawn_shard() -> tuple[subprocess.Popen, str]:
    """One ``kanon serve`` subprocess on an ephemeral port."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stderr=subprocess.PIPE, text=True, env=env,
    )
    assert process.stderr is not None
    line = process.stderr.readline()
    match = _LISTENING.search(line)
    if match is None:  # the shard died before binding
        process.kill()
        raise RuntimeError(f"shard failed to start: {line!r}")
    return process, f"{match.group(1)}:{match.group(2)}"


def _balanced_workload(addresses: list[str]) -> dict[str, list]:
    """PER_SHARD disjoint instances per shard of the 3-shard ring.

    Ephemeral ports move the ring every run, so balance is engineered,
    not hoped for: candidate census tables are generated and assigned
    by the same ``routing_key`` the router uses until every shard owns
    exactly PER_SHARD of them.
    """
    keyer = ShardRouter(addresses, health_interval=0.0)
    per_shard: dict[str, list] = {address: [] for address in addresses}
    seed = 0
    while any(len(owned) < PER_SHARD for owned in per_shard.values()):
        table = quasi_identifiers(census_table(N_ROWS, seed=seed))
        seed += 1
        key = keyer.routing_key({
            "op": "anonymize", "csv": table.to_csv(), "k": K,
            "algorithm": "center_cover",
        })
        owner = keyer.ring.owner(key)
        if len(per_shard[owner]) < PER_SHARD:
            per_shard[owner].append(table)
    return per_shard


def _drive(address: tuple[str, int], workload: list) -> tuple[float, dict]:
    """Cold pass + warm pass over *workload* with CLIENTS threads.

    Returns (total seconds, {instance index: released csv}) — the
    releases are collected for the byte-identity assert.
    """
    jobs = list(enumerate(workload))
    chunks = [jobs[i::CLIENTS] for i in range(CLIENTS)]
    releases: dict[int, str] = {}

    def run_chunk(chunk, expected: str) -> None:
        with ServiceClient(*address, timeout=600.0) as client:
            for index, table in chunk:
                response = client.anonymize(table, K)
                assert response["ok"]
                assert response["cache"] == expected, (
                    f"instance {index}: expected {expected}, "
                    f"got {response['cache']}"
                )
                previous = releases.setdefault(index, response["csv"])
                assert previous == response["csv"]

    started = time.perf_counter()
    for phase in ("miss", "hit"):
        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            for done in [
                pool.submit(run_chunk, chunk, phase) for chunk in chunks
            ]:
                done.result()
    return time.perf_counter() - started, releases


def _fleet(shard_count: int, workload: list) -> tuple[float, dict, dict]:
    """Run the workload against *shard_count* shards behind a router."""
    processes, addresses = [], []
    for _ in range(shard_count):
        process, address = _spawn_shard()
        processes.append(process)
        addresses.append(address)
    front = RouterServer(ShardRouter(addresses, health_interval=0.5))
    front.start()
    try:
        seconds, releases = _drive(front.address, workload)
        with ServiceClient(*front.address, timeout=60.0) as client:
            stats = client.stats()
    finally:
        front.stop()  # shutdown fans out to every shard
        for process in processes:
            process.wait(timeout=30)
    return seconds, releases, stats


def test_e24_three_shards_scale_and_never_solve_twice(benchmark, report):
    """3 shards ≥ 2.2x one shard (≥ 3 cores); zero duplicate solves."""
    # ephemeral ports shape the ring, so the shards come FIRST and the
    # workload is balanced against their actual addresses
    processes, addresses = [], []
    for _ in range(3):
        process, address = _spawn_shard()
        processes.append(process)
        addresses.append(address)
    per_shard = _balanced_workload(addresses)
    workload = [
        table for owned in per_shard.values() for table in owned
    ]
    front = RouterServer(ShardRouter(addresses, health_interval=0.5))
    front.start()
    try:
        def three_shard_run():
            return _drive(front.address, workload)

        fleet_seconds, fleet_releases = benchmark.pedantic(
            three_shard_run, rounds=1, iterations=1
        )
        with ServiceClient(*front.address, timeout=60.0) as client:
            stats = client.stats()
    finally:
        front.stop()
        for process in processes:
            process.wait(timeout=30)

    # --- zero duplicate solves, balanced by construction -------------
    solved = {
        address: shard.get("solved_instances", 0)
        for address, shard in stats["shards"].items()
    }
    assert sum(solved.values()) == len(workload)
    assert all(count == PER_SHARD for count in solved.values()), solved
    assert stats["solved_instances"] == len(workload)
    assert stats["cache"]["misses"] == len(workload)
    assert stats["cache"]["hits"] >= len(workload)

    # --- byte-identical releases vs a single shard --------------------
    single_seconds, single_releases, single_stats = _fleet(1, workload)
    assert single_releases == fleet_releases
    assert single_stats["solved_instances"] == len(workload)

    requests = 2 * len(workload)
    fleet_rps = requests / fleet_seconds
    single_rps = requests / single_seconds
    speedup = fleet_rps / single_rps
    cores = os.cpu_count() or 1
    benchmark.extra_info.update(
        instances=len(workload), per_shard=PER_SHARD, n=N_ROWS,
        clients=CLIENTS, single_rps=single_rps, fleet_rps=fleet_rps,
        speedup=speedup, cores=cores,
    )
    report.line(
        f"E24 shard scaling ({len(workload)} instances x cold+warm, "
        f"n={N_ROWS}, {CLIENTS} clients): 1 shard {fmt(single_rps, 1)} "
        f"req/s, 3 shards {fmt(fleet_rps, 1)} req/s -> "
        f"{fmt(speedup, 2)}x on {cores} cores"
    )
    if cores >= 3:
        assert speedup >= 2.2
    else:
        report.line(
            f"E24 note: {cores} core(s) < 3 — the >=2.2x gate needs one "
            "core per shard and is skipped; correctness asserts ran"
        )
