"""E10 — the practical-k regime: cost vs k on the census workload.

The paper motivates its O(k log k) ratio by noting "it generally
suffices in practice for k to be a small constant around 5 or 6" [9].
This experiment sweeps k over 2..8 on the census quasi-identifiers and
reports suppression cost and utility metrics — showing the privacy/
utility trade-off the practitioner faces at those k values, and that the
k=5..6 regime keeps a large fraction of cells intact.
"""

from __future__ import annotations

import pytest

from repro import registry
from repro.core.metrics import metric_report
from repro.workloads import census_table, quasi_identifiers

from .conftest import fmt

_sweep: dict[int, dict] = {}

KS = [2, 3, 4, 5, 6, 8]


@pytest.mark.parametrize("k", KS)
def test_e10_cost_at_k(benchmark, k):
    table = quasi_identifiers(census_table(150, seed=0))
    algorithm = registry.create("center_cover")
    result = benchmark.pedantic(algorithm.anonymize, args=(table, k),
                                rounds=1, iterations=1)
    assert result.is_valid(table)
    _sweep[k] = metric_report(result.anonymized, k)
    benchmark.extra_info.update(k=k, **{
        key: value for key, value in _sweep[k].items()
        if isinstance(value, (int, float))
    })


def test_e10_summary(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_sweep) < len(KS):
        pytest.skip("sweep cells did not all run (filtered invocation)")
    rows = [
        [k,
         _sweep[k]["stars"],
         fmt(_sweep[k]["suppression_ratio"], 3),
         fmt(_sweep[k]["precision"], 3),
         _sweep[k]["classes"],
         fmt(_sweep[k]["avg_class_size_ratio"], 2)]
        for k in KS
    ]
    report.table(
        "E10 cost vs k on census quasi-identifiers (n=150)",
        ["k", "stars", "suppressed frac", "precision", "classes",
         "avg class/k"],
        rows,
    )
    # cost grows with k...
    costs = [_sweep[k]["stars"] for k in KS]
    assert all(a <= b * 1.25 for a, b in zip(costs, costs[1:])), (
        "cost should be (weakly) increasing in k"
    )
    # ...and the practical regime k=5..6 is not catastrophic
    assert _sweep[6]["precision"] > 0.2
