"""E12 — the full hardness chain, 3SAT -> 3DM -> k-ANONYMITY (extension).

The paper's Theorem 3.1 reduces from k-dimensional matching; this
experiment composes it with the classical Garey-Johnson 3SAT -> 3DM
construction and runs the whole chain: a CNF formula's satisfiability
is decided by whether the derived k-anonymity instance reaches the
n(m-1) threshold, with certificates translated in both directions.
"""

from __future__ import annotations

import pytest

from repro.core.anonymity import is_k_anonymous, suppressed_cell_count
from repro.hardness.matching import find_perfect_matching, has_perfect_matching
from repro.hardness.reductions import EntrySuppressionReduction
from repro.hardness.sat import Cnf, planted_satisfiable_cnf, solve_sat
from repro.hardness.sat_reduction import ThreeSatToMatchingReduction


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_e12_sat_chain_forward(benchmark, report, seed):
    """Satisfiable formula -> threshold-meeting anonymization, timed."""
    formula, hidden = planted_satisfiable_cnf(3, 3, seed=seed)

    def chain():
        gadget = ThreeSatToMatchingReduction(formula)
        anonymity = EntrySuppressionReduction(gadget.hypergraph, 3)
        matching = gadget.matching_from_assignment(hidden)
        anonymized = anonymity.anonymize_from_matching(matching)
        recovered = gadget.assignment_from_matching(
            anonymity.matching_from_anonymized(anonymized)
        )
        return gadget, anonymity, anonymized, recovered

    gadget, anonymity, anonymized, recovered = benchmark.pedantic(
        chain, rounds=1, iterations=1
    )
    assert is_k_anonymous(anonymized, 3)
    assert suppressed_cell_count(anonymized) == anonymity.threshold
    assert formula.evaluate(recovered)
    benchmark.extra_info.update(
        vars=formula.n_vars, clauses=formula.n_clauses,
        elements=gadget.n_elements, edges=gadget.hypergraph.n_edges,
        table_cells=anonymity.table.total_cells(),
    )
    report.table(
        f"E12 chain (seed={seed}): 3SAT -> 3DM -> 3-ANONYMITY",
        ["vars", "clauses", "3DM elements", "3DM edges",
         "table cells", "threshold", "chain intact"],
        [[formula.n_vars, formula.n_clauses, gadget.n_elements,
          gadget.hypergraph.n_edges, anonymity.table.total_cells(),
          anonymity.threshold, True]],
    )


def test_e12_unsat_blocks_the_chain(benchmark, report):
    """UNSAT formulas yield gadget graphs with no perfect matching."""
    cases = {
        "x & !x": Cnf(1, [(1,), (-1,)]),
        "x1 & x2 & (!x1|!x2)": Cnf(2, [(1,), (2,), (-1, -2)]),
    }

    def verify_all():
        results = {}
        for label, formula in cases.items():
            gadget = ThreeSatToMatchingReduction(formula)
            results[label] = has_perfect_matching(gadget.hypergraph)
        return results

    results = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    assert not any(results.values())
    for label, formula in cases.items():
        assert solve_sat(formula) is None
    report.line(
        "E12 UNSAT formulas: no perfect matching in any gadget graph "
        f"({', '.join(results)})"
    )


def test_e12_solver_side_agreement(benchmark, report):
    """The 3DM backtracking solver decides SAT through the gadget."""
    from repro.hardness.sat import random_three_cnf

    formulas = [random_three_cnf(3, 2, seed=s) for s in range(4)]

    def run():
        agreements = 0
        for formula in formulas:
            gadget = ThreeSatToMatchingReduction(formula)
            via_matching = find_perfect_matching(gadget.hypergraph) is not None
            via_dpll = solve_sat(formula) is not None
            agreements += via_matching == via_dpll
        return agreements

    agreements = benchmark.pedantic(run, rounds=1, iterations=1)
    assert agreements == len(formulas)
    report.line(
        f"E12 solver agreement: {agreements}/{len(formulas)} formulas "
        "decided identically by DPLL and by matching search"
    )
