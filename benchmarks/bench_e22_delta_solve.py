"""E22 — incremental delta-solves: warm continuation vs cold re-solve.

The ``delta`` verb's scaling story: once a table has been solved with
the streaming engine, bringing it up to date after a handful of
appended rows should cost a few flushes — not a re-run of the whole
stream.  This experiment measures

* **cold vs delta latency**: a from-scratch ``incremental`` solve of
  the grown table (cache bypassed, every run re-streams all rows)
  against a ``delta`` solve of only the appended rows on the restored
  state snapshot.  The gate — warm delta >= 3x cold — is the PR's
  acceptance criterion.
* **correctness alongside the timing**: the delta release must be
  byte-identical to the cold streaming run (replay equivalence, which
  also pins the suppression cost to the streaming engine's bound), and
  the groups the delta never touched must keep their frozen images
  byte-identical (the anti-intersection invariant over the wire).

Run with ``REPRO_BENCH_QUICK=1`` for the CI-sized version.
"""

from __future__ import annotations

import asyncio
import time

from repro.core.alphabet import STAR
from repro.core.table import Table
from repro.service import AnonymizationService
from repro.workloads import census_table, quasi_identifiers

from .conftest import fmt, quick_mode

#: rows already solved before the delta arrives (the cold stream's
#: cost grows superlinearly in this, the delta's barely at all)
N_ROWS = 360 if quick_mode() else 720

#: rows appended by the delta
DELTA_ROWS = 12 if quick_mode() else 24

#: timed repetitions per phase
ROUNDS = 3 if quick_mode() else 5

K = 3


def _tables() -> tuple[Table, Table, Table]:
    """(base, delta, grown) cut from one wire-representation table."""
    grown = quasi_identifiers(census_table(N_ROWS + DELTA_ROWS, seed=0))
    grown = Table.from_csv(grown.to_csv())  # all-string, as the wire sees it
    base = Table(grown.rows[:N_ROWS], attributes=grown.attributes)
    delta = Table(grown.rows[N_ROWS:], attributes=grown.attributes)
    return base, delta, grown


async def _served(service: AnonymizationService, *requests):
    try:
        return [await service.handle(r) for r in requests]
    finally:
        await service.stop()


def _timed(service: AnonymizationService, request: dict) -> tuple[dict, float]:
    """One request through the core, returning (response, seconds)."""
    started = time.perf_counter()
    (response,) = asyncio.run(_served(service, dict(request)))
    assert response["ok"], response
    return response, time.perf_counter() - started


def test_e22_delta_vs_cold_solve(benchmark, report):
    """A warm delta-solve must be >= 3x faster than a cold re-solve."""
    base, delta, grown = _tables()
    service = AnonymizationService()

    # prime: solve the base stream once; its snapshot seeds the chain
    (prime,) = asyncio.run(_served(service, {
        "op": "anonymize", "csv": base.to_csv(), "k": K,
        "algorithm": "incremental",
    }))
    assert prime["cache"] == "miss"
    state_key = prime["state_key"]

    # cache bypassed on both sides so every timed run actually solves;
    # the delta still restores the stored snapshot (state lookups are
    # not part of the solution-cache bypass)
    cold_request = {
        "op": "anonymize", "csv": grown.to_csv(), "k": K,
        "algorithm": "incremental", "use_cache": False,
    }
    delta_request = {
        "op": "delta", "state_key": state_key, "csv": delta.to_csv(),
        "use_cache": False,
    }

    cold_seconds = []
    for _ in range(ROUNDS):
        cold, seconds = _timed(service, cold_request)
        cold_seconds.append(seconds)

    def delta_phase():
        response, seconds = _timed(service, delta_request)
        return response, seconds

    warm, warm_first = benchmark.pedantic(delta_phase, rounds=1,
                                          iterations=1)
    warm_seconds = [warm_first]
    for _ in range(ROUNDS - 1):
        _, seconds = _timed(service, delta_request)
        warm_seconds.append(seconds)

    # replay equivalence: the delta release is byte-identical to the
    # cold streaming run, so its suppression cost IS the streaming
    # engine's cost — the bound holds with equality
    assert warm["csv"] == cold["csv"]
    assert warm["stars"] == cold["stars"]

    # untouched groups keep their frozen images byte-identical, and no
    # published prefix cell ever gets more specific
    before = Table.from_csv(prime["csv"]).rows
    after = Table.from_csv(warm["csv"]).rows
    unchanged = sum(1 for i in range(len(before)) if before[i] == after[i])
    assert warm["delta"]["untouched_groups"] >= 1
    assert unchanged >= warm["delta"]["untouched_groups"]
    for i in range(len(before)):
        for old_cell, new_cell in zip(before[i], after[i]):
            if old_cell is STAR:
                assert new_cell is STAR

    cold_best = min(cold_seconds)
    warm_best = min(warm_seconds)
    speedup = cold_best / warm_best
    benchmark.extra_info.update(
        n=N_ROWS, delta_rows=DELTA_ROWS, k=K, rounds=ROUNDS,
        cold_seconds=cold_best, warm_seconds=warm_best, speedup=speedup,
        untouched_groups=warm["delta"]["untouched_groups"],
        groups=warm["delta"]["groups"], stars=warm["stars"],
    )
    report.line(
        f"E22 delta-solve (n={N_ROWS} +{DELTA_ROWS} rows, k={K}): "
        f"cold {fmt(cold_best, 3)}s, delta {fmt(warm_best, 3)}s "
        f"-> {fmt(speedup, 1)}x "
        f"({warm['delta']['untouched_groups']}/{warm['delta']['groups']} "
        f"groups untouched, {warm['stars']} stars)"
    )
    assert speedup >= 3.0
