"""E23 — planner dispatch: auto vs every fixed single-algorithm policy.

A mixed suite of instance shapes — tiny (exact territory), narrow
(bounded m, the FPT pattern-DP's regime), and wide (only the polynomial
tiers apply) — solved twice over:

* **auto**: one :class:`repro.planner.PlannedAnonymizer` per instance,
  planning included in the measured time;
* **fixed**: each portfolio algorithm (polynomial solvers applicable to
  *every* instance of the suite) run on every instance.

Gates (the PR's acceptance criteria):

1. **total cost** — the planner's summed suppression cost is <= the
   total of *any* single fixed policy: per-instance dispatch never
   loses to picking one algorithm for the whole suite.
2. **dispatch overhead** — the planner's total wall-clock is within
   1.1x of the per-instance best *quality-matched* time: for each
   instance, the fastest run (fixed or auto) whose measured cost is at
   least as good as the planner's AND whose guarantee tier is at least
   as strong as the planner's resolved choice.  A heuristic that
   happens to tie the optimum without proving it does not count — the
   planner is buying the guarantee, not just the number — but where it
   delegates to a polynomial solver the fixed run of that same solver
   does count, so the gate caps pure planning overhead at 10%.
3. **FPT exactness** — on every instance where both the pattern DP and
   the subset DP are applicable, their optima are bit-identical.

Run with ``REPRO_BENCH_QUICK=1`` for the CI-sized version.
"""

from __future__ import annotations

import time

from repro import registry
from repro.algorithms.exact import ExactAnonymizer
from repro.algorithms.fpt_suppression import FPTSuppressionAnonymizer
from repro.experiments import _random_table
from repro.planner import PlannedAnonymizer

from .conftest import fmt, quick_mode

#: fixed single-algorithm policies; every entry must be applicable to
#: every instance in the suite so the totals are comparable
PORTFOLIO = ("center_cover", "mondrian", "kmember")

#: (label, n, m, sigma, k) — tiny / narrow / wide shapes, mixed
SUITE = (
    [
        ("tiny", 10, 4, 3, 2),
        ("tiny-narrow", 9, 3, 2, 2),
        ("tiny-narrow-2", 10, 3, 2, 3),
        ("narrow", 60, 3, 2, 2),
        ("wide", 120, 10, 4, 2),
    ]
    if quick_mode()
    else [
        ("tiny", 10, 4, 3, 2),
        ("tiny-2", 12, 4, 3, 2),
        ("tiny-narrow", 9, 3, 2, 2),
        ("tiny-narrow-2", 10, 3, 2, 3),
        ("narrow", 120, 3, 2, 2),
        ("narrow-2", 90, 2, 3, 2),
        ("wide", 120, 10, 4, 2),
        ("wide-2", 150, 10, 4, 2),
    ]
)

BASE_SEED = 230

#: timed repetitions per (instance, policy); the minimum is kept — the
#: 1.1x overhead gate needs jitter well below 10%
ROUNDS = 3


def _instances():
    return [
        (label, _random_table(BASE_SEED + index, n, m, sigma), k)
        for index, (label, n, m, sigma, k) in enumerate(SUITE)
    ]


def _timed_solve(make_algorithm, table, k, rounds: int = ROUNDS):
    """(result, best-of-rounds seconds) for a fresh algorithm per round."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        algorithm = make_algorithm()
        started = time.perf_counter()
        current = algorithm.anonymize(table, k)
        seconds = time.perf_counter() - started
        assert current.is_valid(table)
        assert result is None or result.stars == current.stars, (
            "non-deterministic cost across rounds"
        )
        result = current
        best = min(best, seconds)
    return result, best


def test_e23_planner_dispatch(benchmark, report):
    """Auto dispatch beats every fixed policy on cost at ~zero overhead."""
    instances = _instances()

    # warmup: one untimed pass of every policy on every instance, so
    # import costs and allocator warmup land outside the measurements
    for _, table, k in instances:
        PlannedAnonymizer().anonymize(table, k)
        for name in PORTFOLIO:
            registry.create(name).anonymize(table, k)

    def auto_sweep():
        runs = []
        for label, table, k in instances:
            result, seconds = _timed_solve(PlannedAnonymizer, table, k)
            runs.append({
                "label": label,
                "resolved": result.algorithm,
                "cost": result.stars,
                "seconds": seconds,
                "plan": result.extras["plan"],
            })
        return runs

    auto_runs = benchmark.pedantic(auto_sweep, rounds=1, iterations=1)

    fixed: dict[str, list[tuple[int, float]]] = {}
    for name in PORTFOLIO:
        fixed[name] = []
        for _, table, k in instances:
            result, seconds = _timed_solve(
                lambda name=name: registry.create(name), table, k
            )
            fixed[name].append((result.stars, seconds))

    # gate 3: the FPT pattern DP is bit-identical to the subset DP on
    # every instance where both are applicable
    fpt_info = registry.get("fpt_suppression")
    exact_info = registry.get("exact_dp")
    both_checked = 0
    for _, table, k in instances:
        sigma = max(
            (len(alphabet) for alphabet in table.alphabets()), default=0
        )
        features = (table.n_rows, table.degree, sigma, k)
        if not (fpt_info.is_applicable(*features)
                and exact_info.is_applicable(*features)):
            continue
        fpt_result, _ = _timed_solve(FPTSuppressionAnonymizer, table, k,
                                     rounds=1)
        exact_result, _ = _timed_solve(ExactAnonymizer, table, k, rounds=1)
        assert fpt_result.stars == exact_result.stars, (
            f"FPT diverged from exact on n={table.n_rows} "
            f"m={table.degree} k={k}: {fpt_result.stars} != "
            f"{exact_result.stars}"
        )
        both_checked += 1
    assert both_checked >= 2, "suite must exercise the FPT/exact overlap"

    auto_total_cost = sum(run["cost"] for run in auto_runs)
    auto_total_seconds = sum(run["seconds"] for run in auto_runs)
    fixed_total_costs = {
        name: sum(cost for cost, _ in runs) for name, runs in fixed.items()
    }

    # gate 2 reference: per instance, the fastest run that matches the
    # planner's quality — cost at least as good AND a guarantee tier at
    # least as strong (the planner's own run always qualifies)
    from repro.planner import tier_of

    matched_best = 0.0
    for index, run in enumerate(auto_runs):
        resolved_tier = tier_of(registry.get(run["resolved"]))
        candidates = [run["seconds"]]
        for name in PORTFOLIO:
            cost, seconds = fixed[name][index]
            if cost <= run["cost"] and tier_of(
                registry.get(name)
            ) <= resolved_tier:
                candidates.append(seconds)
        matched_best += min(candidates)
    overhead_ratio = auto_total_seconds / matched_best

    benchmark.extra_info.update(
        suite=[run["label"] for run in auto_runs],
        resolved=[run["resolved"] for run in auto_runs],
        auto_total_cost=auto_total_cost,
        auto_total_seconds=auto_total_seconds,
        fixed_total_costs=fixed_total_costs,
        matched_best_seconds=matched_best,
        overhead_ratio=overhead_ratio,
        fpt_exact_checked=both_checked,
    )
    report.table(
        "E23 planner dispatch",
        ["instance", "resolved", "cost", "seconds"],
        [[run["label"], run["resolved"], run["cost"],
          fmt(run["seconds"], 4)] for run in auto_runs],
    )
    report.line(
        f"E23 totals: auto {auto_total_cost} stars / "
        f"{fmt(auto_total_seconds, 3)}s; fixed "
        + ", ".join(f"{name} {cost}" for name, cost
                    in sorted(fixed_total_costs.items()))
        + f"; overhead {fmt(overhead_ratio, 3)}x of quality-matched best"
    )

    # gate 1: per-instance dispatch never loses to a fixed policy
    for name, total in fixed_total_costs.items():
        assert auto_total_cost <= total, (
            f"planner total {auto_total_cost} worse than fixed "
            f"{name} total {total}"
        )
    # gate 2: <= 10% dispatch overhead over the quality-matched best
    assert overhead_ratio <= 1.1, (
        f"planner wall-clock {auto_total_seconds:.3f}s exceeds 1.1x the "
        f"quality-matched best {matched_best:.3f}s"
    )
    # the suite must actually exercise more than one tier
    assert len({run["resolved"] for run in auto_runs}) >= 2
