"""Tests for the local-search improvement pass."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    CenterCoverAnonymizer,
    LocalSearchAnonymizer,
    MondrianAnonymizer,
    RandomPartitionAnonymizer,
    improve_partition,
)
from repro.algorithms.exact import optimal_anonymization
from repro.core.partition import Partition
from repro.core.table import Table

from .conftest import random_table


class TestImprovePartition:
    def test_fixes_an_obviously_bad_pairing(self):
        # rows 0,1 identical and 2,3 identical, but the partition crosses
        t = Table([(0, 0), (9, 9), (0, 0), (9, 9)])
        bad = Partition([{0, 1}, {2, 3}], n_rows=4, k=2)
        assert bad.anon_cost(t) == 8
        improved, rounds = improve_partition(t, bad)
        assert improved.anon_cost(t) == 0
        assert rounds >= 1

    def test_never_increases_cost(self):
        import numpy as np

        for seed in range(8):
            rng = np.random.default_rng(seed)
            t = random_table(rng, 12, 4, 3)
            base = RandomPartitionAnonymizer(seed=seed).anonymize(t, 3)
            assert base.partition is not None
            improved, _ = improve_partition(t, base.partition)
            assert improved.anon_cost(t) <= base.stars
            improved.validate()

    def test_respects_group_bounds(self):
        import numpy as np

        t = random_table(np.random.default_rng(1), 14, 3, 3)
        base = RandomPartitionAnonymizer(seed=0).anonymize(t, 3)
        improved, _ = improve_partition(t, base.partition)
        assert all(len(g) >= 3 for g in improved.groups)
        assert improved.is_partition()

    def test_max_rounds_budget(self):
        import numpy as np

        t = random_table(np.random.default_rng(2), 12, 4, 4)
        base = RandomPartitionAnonymizer(seed=0).anonymize(t, 2)
        _, rounds = improve_partition(t, base.partition, max_rounds=1)
        assert rounds == 1


class TestLocalSearchAnonymizer:
    def test_beats_or_matches_inner(self):
        import numpy as np

        for seed in range(6):
            t = random_table(np.random.default_rng(seed), 15, 4, 3)
            inner = CenterCoverAnonymizer()
            base = inner.anonymize(t, 3).stars
            polished = LocalSearchAnonymizer(inner).anonymize(t, 3)
            assert polished.stars <= base
            assert polished.is_valid(t)
            assert polished.extras["base_stars"] == base

    def test_default_inner_is_center(self):
        assert LocalSearchAnonymizer().name == "center_cover+local"

    def test_closes_gap_toward_optimal(self):
        """On small instances, local search should land between the base
        algorithm and OPT."""
        import numpy as np

        gaps_closed = 0
        trials = 0
        for seed in range(10):
            t = random_table(np.random.default_rng(100 + seed), 9, 4, 3)
            opt, _ = optimal_anonymization(t, 3)
            base = RandomPartitionAnonymizer(seed=0).anonymize(t, 3).stars
            polished = LocalSearchAnonymizer(
                RandomPartitionAnonymizer(seed=0)
            ).anonymize(t, 3).stars
            assert opt <= polished <= base
            if base > opt:
                trials += 1
                if polished < base:
                    gaps_closed += 1
        assert trials == 0 or gaps_closed >= trials // 2

    def test_works_over_mondrian(self):
        import numpy as np

        t = random_table(np.random.default_rng(5), 18, 4, 4)
        polished = LocalSearchAnonymizer(MondrianAnonymizer()).anonymize(t, 3)
        assert polished.is_valid(t)

    def test_empty_and_infeasible(self):
        from repro.algorithms.base import InfeasibleAnonymizationError

        assert LocalSearchAnonymizer().anonymize(Table([]), 2).stars == 0
        with pytest.raises(InfeasibleAnonymizationError):
            LocalSearchAnonymizer().anonymize(Table([(1,)]), 2)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_property_valid_and_no_worse(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 16))
        t = random_table(rng, n, 3, 3)
        # separate instances: the random baseline's RNG state advances
        # per call, so base and polished must start from equal seeds
        base = RandomPartitionAnonymizer(seed=seed).anonymize(t, k).stars
        polished = LocalSearchAnonymizer(
            RandomPartitionAnonymizer(seed=seed)
        ).anonymize(t, k)
        assert polished.is_valid(t)
        assert polished.stars <= base
