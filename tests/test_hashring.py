"""The consistent-hash ring: determinism, balance, minimal remapping.

The remapping properties are the whole point of a consistent-hash ring
(versus ``hash(key) % n``): membership changes must move only the keys
owned by the affected node, or the shard fleet's cache is thrown away
on every eviction/rejoin.  Stated and checked here as hypothesis
properties over arbitrary node sets and key sets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.hashring import DEFAULT_VNODES, HashRing, ring_hash

THREE_SHARDS = ["10.0.0.1:7683", "10.0.0.2:7683", "10.0.0.3:7683"]

node_names = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=20,
)
node_sets = st.lists(node_names, min_size=1, max_size=8, unique=True)
keys = st.lists(node_names, min_size=1, max_size=50)


class TestRingBasics:
    def test_empty_ring_has_no_owner(self):
        ring = HashRing()
        assert len(ring) == 0
        with pytest.raises(LookupError):
            ring.owner("anything")
        assert ring.owners("anything") == []

    def test_membership_is_a_set(self):
        ring = HashRing(["a:1"])
        assert ring.add("a:1") is False  # already present: no-op
        assert ring.add("b:2") is True
        assert ring.remove("c:3") is False  # absent: no-op
        assert ring.remove("a:1") is True
        assert ring.nodes == frozenset({"b:2"})
        assert "b:2" in ring and "a:1" not in ring

    def test_add_remove_roundtrip_restores_placement(self):
        ring = HashRing(THREE_SHARDS)
        before = {f"key-{i}": ring.owner(f"key-{i}") for i in range(64)}
        ring.remove(THREE_SHARDS[1])
        ring.add(THREE_SHARDS[1])
        assert all(ring.owner(key) == node for key, node in before.items())

    def test_invalid_nodes_and_vnodes_rejected(self):
        with pytest.raises(ValueError):
            HashRing([""])
        with pytest.raises(ValueError):
            HashRing(vnodes=0)

    def test_ring_hash_is_64_bit(self):
        assert 0 <= ring_hash("x") < 2**64

    def test_distribution_counts_every_node(self):
        ring = HashRing(THREE_SHARDS)
        shares = ring.distribution(f"key-{i}" for i in range(100))
        assert set(shares) == set(THREE_SHARDS)  # 0-count nodes included
        assert sum(shares.values()) == 100


class TestDeterminism:
    @given(nodes=node_sets, key=node_names)
    def test_owner_is_membership_not_history(self, nodes, key):
        """Placement depends only on the member set — not on insertion
        order, not on process, not on unrelated churn."""
        forward = HashRing(nodes)
        backward = HashRing(reversed(nodes))
        assert forward.owner(key) == backward.owner(key)
        assert forward.owners(key) == backward.owners(key)

    @given(nodes=node_sets, key=node_names)
    def test_owners_is_a_distinct_preference_list(self, nodes, key):
        ring = HashRing(nodes)
        preference = ring.owners(key)
        assert preference[0] == ring.owner(key)
        assert len(preference) == len(set(preference)) == len(nodes)
        assert set(preference) == set(nodes)
        # truncation keeps the prefix
        assert ring.owners(key, 2) == preference[:2]

    @given(nodes=node_sets, key=node_names)
    def test_failover_order_is_eviction_order(self, nodes, key):
        """owners()[1] is exactly the node that inherits the key when
        the owner leaves — failover lands where re-routing would."""
        ring = HashRing(nodes)
        preference = ring.owners(key)
        for expected_next in preference[1:]:
            ring.remove(preference[0])
            assert ring.owner(key) == expected_next
            preference = ring.owners(key)


class TestMinimalRemapping:
    @given(nodes=node_sets, probe_keys=keys)
    @settings(max_examples=50)
    def test_remove_only_remaps_the_removed_nodes_keys(
        self, nodes, probe_keys
    ):
        ring = HashRing(nodes)
        before = {key: ring.owner(key) for key in probe_keys}
        fallback = {key: ring.owners(key) for key in probe_keys}
        victim = sorted(ring.nodes)[0]
        ring.remove(victim)
        for key in probe_keys:
            if before[key] != victim:
                # a key the victim never owned must not move at all
                assert ring.owner(key) == before[key]
            elif len(ring):
                # the victim's keys go to their next ring owner
                assert ring.owner(key) == fallback[key][1]

    @given(nodes=node_sets, probe_keys=keys, joiner=node_names)
    @settings(max_examples=50)
    def test_add_only_steals_keys_for_the_new_node(
        self, nodes, probe_keys, joiner
    ):
        ring = HashRing(nodes)
        before = {key: ring.owner(key) for key in probe_keys}
        if not ring.add(joiner):
            return  # already a member: nothing to check
        for key in probe_keys:
            after = ring.owner(key)
            assert after == before[key] or after == joiner


class TestBalance:
    def test_three_shard_share_ratio_under_vnodes(self):
        """The ISSUE's balance gate: with vnodes, no shard's key share
        dwarfs another's across 3 realistic addresses."""
        ring = HashRing(THREE_SHARDS, vnodes=DEFAULT_VNODES)
        shares = ring.distribution(f"instance-{i:04x}" for i in range(3000))
        assert min(shares.values()) > 0
        assert max(shares.values()) / min(shares.values()) <= 3.0

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20)
    def test_balance_holds_for_arbitrary_key_populations(self, seed):
        ring = HashRing(THREE_SHARDS, vnodes=DEFAULT_VNODES)
        shares = ring.distribution(
            f"{seed:08x}-{i:04d}" for i in range(900)
        )
        assert min(shares.values()) > 0
        assert max(shares.values()) / min(shares.values()) <= 4.0
