"""Operation-count assertions for the incremental metaheuristic path.

The backends count how group statistics get computed:
``full_group_scans`` (a group reduced from scratch) vs
``incremental_updates`` (an O(m) :class:`MutableGroupStats` step).
Local search and annealing must evaluate and apply *every* move on the
incremental path — zero from-scratch group computations once the
initial per-group trackers are seeded.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.annealing import SimulatedAnnealingAnonymizer
from repro.algorithms.baselines import RandomPartitionAnonymizer
from repro.algorithms.local_search import improve_partition
from repro.core.backend import available_backends, make_backend
from repro.core.table import Table


def _random_table(seed: int = 0, n: int = 24, m: int = 5, sigma: int = 3):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, sigma, size=(n, m))
    return Table([tuple(int(v) for v in row) for row in data])


@pytest.mark.parametrize("backend_name", available_backends())
def test_local_search_moves_are_incremental(backend_name):
    table = _random_table()
    base = RandomPartitionAnonymizer(seed=3).anonymize(table, 3)
    backend = make_backend(table, backend_name)

    before = dict(backend.counters)
    improved, rounds = improve_partition(
        table, base.partition, backend=backend
    )
    after = backend.counters

    assert rounds >= 1
    assert after["full_group_scans"] == before["full_group_scans"], (
        "local search recomputed a whole group during the search"
    )
    assert after["incremental_updates"] > before["incremental_updates"]
    # and the incremental bookkeeping kept the true cost
    total = sum(backend.anon_cost(g) for g in improved.groups)
    assert total <= sum(backend.anon_cost(g) for g in base.partition.groups)


@pytest.mark.parametrize("backend_name", available_backends())
def test_annealing_moves_are_incremental(backend_name):
    table = _random_table(seed=1)
    backend = make_backend(table, backend_name)
    algorithm = SimulatedAnnealingAnonymizer(
        inner=RandomPartitionAnonymizer(seed=5),
        steps=300,
        seed=7,
        backend=backend,
    )

    result = algorithm.anonymize(table, 3)

    assert result.is_valid(table)
    assert result.extras["accepted_moves"] > 0
    # the anneal loop itself only spends full scans on seeding its
    # per-group trackers and scoring the final partition — a tiny,
    # partition-sized number, not moves * groups
    groups = len(result.partition.groups)
    assert backend.counters["full_group_scans"] <= 4 * groups
    assert backend.counters["incremental_updates"] >= 300


def test_what_if_queries_do_not_touch_memos():
    """A thousand what-if evaluations cost zero full group scans."""
    table = _random_table(seed=2)
    backend = make_backend(table, "python")
    stats = backend.group_stats(range(6))
    before = backend.counters["full_group_scans"]
    for _ in range(100):
        for i in range(6, 16):
            stats.cost_if_add(i)
    assert backend.counters["full_group_scans"] == before
