"""Tests for repro.core.partition: covers, partitions, and anonymization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import STAR
from repro.core.anonymity import is_k_anonymous
from repro.core.distance import anon_cost_of, diameter_of
from repro.core.partition import (
    Cover,
    Partition,
    anonymize_partition,
    partition_from_equivalence,
    split_into_small_groups,
)
from repro.core.table import Table

from .conftest import random_table


class TestCoverValidation:
    def test_valid_cover(self):
        c = Cover([{0, 1}, {1, 2}], n_rows=3, k=2)
        assert len(c) == 2
        assert not c.is_partition()

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="empty group"):
            Cover([set(), {0, 1}], n_rows=2, k=1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out-of-range"):
            Cover([{0, 5}], n_rows=2, k=2)

    def test_undersized_group_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            Cover([{0}, {1, 2}], n_rows=3, k=2)

    def test_oversized_group_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            Cover([{0, 1, 2, 3}], n_rows=4, k=2, k_max=3)

    def test_uncovered_rows_rejected(self):
        with pytest.raises(ValueError, match="not covered"):
            Cover([{0, 1}], n_rows=3, k=2)

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k must be positive"):
            Cover([{0}], n_rows=1, k=0)
        with pytest.raises(ValueError, match="k_max"):
            Cover([{0, 1}], n_rows=2, k=2, k_max=1)

    def test_default_k_max_is_2k_minus_1(self):
        assert Cover([{0, 1}], n_rows=2, k=2).k_max == 3

    def test_validate_false_skips_checks(self):
        c = Cover([{0}], n_rows=5, k=3, validate=False)
        with pytest.raises(ValueError):
            c.validate()


class TestPartitionValidation:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            Partition([{0, 1}, {1, 2}], n_rows=3, k=2)

    def test_valid_partition(self):
        p = Partition([{0, 1}, {2, 3}], n_rows=4, k=2)
        assert p.is_partition()

    def test_from_cover(self):
        c = Cover([{0, 1}, {2, 3}], n_rows=4, k=2)
        assert Partition.from_cover(c).groups == c.groups

    def test_from_overlapping_cover_rejected(self):
        c = Cover([{0, 1}, {1, 2}], n_rows=3, k=2)
        with pytest.raises(ValueError):
            Partition.from_cover(c)

    def test_single_group(self):
        t = Table([(i,) for i in range(5)])
        p = Partition.single_group(t, 3)
        assert len(p) == 1
        assert p.is_partition()


class TestDiameterSumAndCost:
    def test_diameter_sum(self):
        t = Table([(0, 0), (0, 1), (1, 1), (1, 1)])
        p = Partition([{0, 1}, {2, 3}], n_rows=4, k=2)
        assert p.diameter_sum(t) == 1

    def test_anon_cost_matches_groupwise(self):
        t = Table([(0, 0), (0, 1), (1, 1), (1, 1)])
        p = Partition([{0, 1}, {2, 3}], n_rows=4, k=2)
        assert p.anon_cost(t) == sum(anon_cost_of(t, g) for g in p.groups)

    def test_equality_and_hash(self):
        a = Cover([{0, 1}], n_rows=2, k=2)
        b = Cover([frozenset([1, 0])], n_rows=2, k=2)
        assert a == b
        assert hash(a) == hash(b)
        assert a != "something"

    def test_repr(self):
        assert "Partition" in repr(Partition([{0, 1}], n_rows=2, k=2))
        assert "Cover" in repr(Cover([{0, 1}], n_rows=2, k=2))


class TestAnonymizePartition:
    def test_stars_disagreements_only(self):
        t = Table([(1, 7), (1, 8), (2, 9), (2, 9)])
        p = Partition([{0, 1}, {2, 3}], n_rows=4, k=2)
        anonymized, suppressor = anonymize_partition(t, p)
        assert anonymized.rows == ((1, STAR), (1, STAR), (2, 9), (2, 9))
        assert suppressor.total_stars() == 2

    def test_result_is_k_anonymous(self):
        t = Table([(1, 7), (1, 8), (2, 9), (3, 9)])
        p = Partition([{0, 1}, {2, 3}], n_rows=4, k=2)
        anonymized, _ = anonymize_partition(t, p)
        assert is_k_anonymous(anonymized, 2)

    def test_cost_equals_partition_anon_cost(self):
        t = Table([(0, 1, 2), (0, 2, 2), (5, 5, 5), (5, 0, 5)])
        p = Partition([{0, 1}, {2, 3}], n_rows=4, k=2)
        _, suppressor = anonymize_partition(t, p)
        assert suppressor.total_stars() == p.anon_cost(t)

    def test_overlapping_cover_rejected(self):
        t = Table([(0,), (1,), (2,)])
        c = Cover([{0, 1}, {1, 2}], n_rows=3, k=2)
        with pytest.raises(ValueError, match="Reduce"):
            anonymize_partition(t, c)

    @settings(max_examples=30)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_random_partitions_produce_k_anonymous_output(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 12))
        t = random_table(rng, n, 3, 3)
        order = list(rng.permutation(n))
        groups = []
        while order:
            take = int(rng.integers(k, 2 * k))
            if len(order) - take < k:
                take = len(order)
            groups.append(frozenset(int(i) for i in order[:take]))
            order = order[take:]
        p = Partition(groups, n, k, k_max=max(len(g) for g in groups))
        anonymized, _ = anonymize_partition(t, p)
        assert is_k_anonymous(anonymized, k)


class TestSplitting:
    def test_splits_large_groups_into_range(self):
        t = Table([(i % 3, i % 2) for i in range(11)])
        groups = split_into_small_groups(t, [range(11)], 3)
        assert sum(len(g) for g in groups) == 11
        assert all(3 <= len(g) <= 5 for g in groups)

    def test_small_group_untouched(self):
        t = Table([(0,), (1,), (2,)])
        groups = split_into_small_groups(t, [{0, 1, 2}], 2)
        assert groups == [frozenset({0, 1, 2})]

    def test_undersized_group_rejected(self):
        t = Table([(0,), (1,)])
        with pytest.raises(ValueError, match="smaller than k"):
            split_into_small_groups(t, [{0}], 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            split_into_small_groups(Table([(0,)]), [{0}], 0)

    @settings(max_examples=30)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_splitting_never_increases_anon_cost(self, seed, k):
        """The Section 4.1 WLOG argument, empirically."""
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2 * k, 14))
        t = random_table(rng, n, 4, 3)
        whole = [frozenset(range(n))]
        split = split_into_small_groups(t, whole, k)
        cost_before = anon_cost_of(t, whole[0])
        cost_after = sum(anon_cost_of(t, g) for g in split)
        assert cost_after <= cost_before

    @settings(max_examples=30)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_splitting_diameters_never_increase_groupwise(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2 * k, 14))
        t = random_table(rng, n, 4, 3)
        before = diameter_of(t, range(n))
        for g in split_into_small_groups(t, [range(n)], k):
            assert diameter_of(t, g) <= before


class TestPartitionFromEquivalence:
    def test_builds_from_identical_rows(self):
        t = Table([(1,), (1,), (2,), (2,), (2,)])
        p = partition_from_equivalence(t, 2)
        assert p.is_partition()
        assert p.anon_cost(t) == 0

    def test_rejects_undersized_class(self):
        t = Table([(1,), (2,), (2,)])
        with pytest.raises(ValueError):
            partition_from_equivalence(t, 2)

    def test_splits_oversized_class(self):
        t = Table([(1,)] * 7)
        p = partition_from_equivalence(t, 2)
        assert all(2 <= len(g) <= 3 for g in p.groups)
