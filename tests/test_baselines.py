"""Tests for the baseline anonymizers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import InfeasibleAnonymizationError
from repro.algorithms.baselines import (
    RandomPartitionAnonymizer,
    SortedChunkAnonymizer,
    SuppressEverythingAnonymizer,
    chunk_indices,
)
from repro.core.alphabet import STAR
from repro.core.table import Table

from .conftest import random_table


class TestChunkIndices:
    def test_even_split(self):
        groups = chunk_indices(range(6), 3)
        assert [sorted(g) for g in groups] == [[0, 1, 2], [3, 4, 5]]

    def test_remainder_absorbed(self):
        groups = chunk_indices(range(7), 3)
        assert sorted(len(g) for g in groups) == [3, 4]

    def test_remainder_never_exceeds_2k_minus_1(self):
        for n in range(2, 30):
            for k in range(2, 6):
                if n < k:
                    continue
                groups = chunk_indices(range(n), k)
                assert all(k <= len(g) <= 2 * k - 1 for g in groups)
                assert sorted(i for g in groups for i in g) == list(range(n))

    def test_empty(self):
        assert chunk_indices([], 3) == []

    def test_errors(self):
        with pytest.raises(ValueError):
            chunk_indices(range(2), 3)
        with pytest.raises(ValueError):
            chunk_indices(range(2), 0)


class TestRandomPartition:
    def test_valid_output(self):
        import numpy as np

        t = random_table(np.random.default_rng(0), 11, 4, 3)
        result = RandomPartitionAnonymizer(seed=1).anonymize(t, 3)
        assert result.is_valid(t)

    def test_seed_determinism(self):
        import numpy as np

        t = random_table(np.random.default_rng(0), 11, 4, 3)
        a = RandomPartitionAnonymizer(seed=42).anonymize(t, 3)
        b = RandomPartitionAnonymizer(seed=42).anonymize(t, 3)
        assert a.anonymized == b.anonymized

    def test_infeasible(self):
        with pytest.raises(InfeasibleAnonymizationError):
            RandomPartitionAnonymizer().anonymize(Table([(1,)]), 2)

    def test_empty(self):
        assert RandomPartitionAnonymizer().anonymize(Table([]), 2).stars == 0


class TestSortedChunk:
    def test_valid_output(self):
        import numpy as np

        t = random_table(np.random.default_rng(0), 11, 4, 3)
        result = SortedChunkAnonymizer().anonymize(t, 3)
        assert result.is_valid(t)

    def test_groups_sorted_runs(self):
        t = Table([(3,), (1,), (2,), (1,), (3,), (2,)])
        result = SortedChunkAnonymizer().anonymize(t, 2)
        # sorted runs pair the duplicates -> zero stars
        assert result.stars == 0

    def test_exploits_locality(self):
        import numpy as np

        rng = np.random.default_rng(5)
        t = random_table(rng, 20, 3, 2)
        sorted_cost = SortedChunkAnonymizer().anonymize(t, 2).stars
        random_cost = RandomPartitionAnonymizer(seed=0).anonymize(t, 2).stars
        assert sorted_cost <= random_cost

    def test_mixed_type_rows_sortable(self):
        t = Table([("b", 2), ("a", 1), ("b", 2), ("a", 1)])
        result = SortedChunkAnonymizer().anonymize(t, 2)
        assert result.stars == 0


class TestSuppressEverything:
    def test_everything_starred(self):
        t = Table([(1, 2), (3, 4)])
        result = SuppressEverythingAnonymizer().anonymize(t, 2)
        assert result.stars == 4
        assert all(v is STAR for row in result.anonymized.rows for v in row)

    def test_always_valid(self):
        import numpy as np

        t = random_table(np.random.default_rng(1), 7, 3, 10)
        result = SuppressEverythingAnonymizer().anonymize(t, 7)
        assert result.is_valid(t)

    def test_upper_bounds_everything(self):
        import numpy as np

        from repro.algorithms import CenterCoverAnonymizer

        t = random_table(np.random.default_rng(2), 12, 4, 4)
        ceiling = SuppressEverythingAnonymizer().anonymize(t, 3).stars
        assert CenterCoverAnonymizer().anonymize(t, 3).stars <= ceiling

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(1, 4))
    def test_all_baselines_produce_valid_output(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 15))
        t = random_table(rng, n, 3, 3)
        for algorithm in [
            RandomPartitionAnonymizer(seed=seed),
            SortedChunkAnonymizer(),
            SuppressEverythingAnonymizer(),
        ]:
            assert algorithm.anonymize(t, k).is_valid(t)
