"""Integration tests: the paper's example and cross-module pipelines."""

import pytest

from repro import (
    CenterCoverAnonymizer,
    ExactAnonymizer,
    GreedyCoverAnonymizer,
    STAR,
    Suppressor,
    Table,
    is_k_anonymous,
    optimal_anonymization,
)
from repro.core.anonymity import equivalence_classes
from repro.core.metrics import metric_report


class TestHospitalExample:
    """Section 1's motivating table, under the suppression-only model."""

    def test_optimal_two_anonymization(self, hospital_table):
        opt, partition = optimal_anonymization(hospital_table, 2)
        # The natural grouping: the two Stones (differ in first+age,
        # 2 coords x 2 rows = 4 stars) and the two Johns (differ in
        # last+age+race, 3 coords x 2 rows = 6 stars): 10 total.
        assert opt == 10
        groups = {frozenset(g) for g in partition.groups}
        assert groups == {frozenset({0, 2}), frozenset({1, 3})}

    def test_anonymized_output_matches_paper_structure(self, hospital_table):
        result = ExactAnonymizer().anonymize(hospital_table, 2)
        rows = result.anonymized.rows
        # Stones: (*, Stone, *, Afr-Am); Johns: (John, *, *, *)
        assert rows[0] == (STAR, "Stone", STAR, "Afr-Am")
        assert rows[2] == (STAR, "Stone", STAR, "Afr-Am")
        assert rows[1] == ("John", STAR, STAR, STAR)
        assert rows[3] == ("John", STAR, STAR, STAR)

    def test_approximations_also_find_it(self, hospital_table):
        for algorithm in [GreedyCoverAnonymizer(), CenterCoverAnonymizer()]:
            result = algorithm.anonymize(hospital_table, 2)
            assert result.is_valid(hospital_table)
            assert result.stars <= 12  # never catastrophically off

    def test_metrics_on_released_table(self, hospital_table):
        result = ExactAnonymizer().anonymize(hospital_table, 2)
        report = metric_report(result.anonymized, 2)
        assert report["stars"] == 10
        assert report["classes"] == 2
        assert report["avg_class_size_ratio"] == 1.0


class TestEndToEndPipelines:
    def test_census_pipeline_all_algorithms_ordered(self):
        """On a real-ish workload the cost ordering must put exact below
        the approximations and everything below suppress-everything."""
        from repro.algorithms import (
            KMemberAnonymizer,
            MondrianAnonymizer,
            MSTForestAnonymizer,
            RandomPartitionAnonymizer,
            SuppressEverythingAnonymizer,
        )
        from repro.workloads import census_table, quasi_identifiers

        table = quasi_identifiers(census_table(60, seed=0))
        ceiling = SuppressEverythingAnonymizer().anonymize(table, 3).stars
        for algorithm in [
            CenterCoverAnonymizer(),
            MondrianAnonymizer(),
            KMemberAnonymizer(),
            MSTForestAnonymizer(),
            RandomPartitionAnonymizer(seed=0),
        ]:
            result = algorithm.anonymize(table, 3)
            assert result.is_valid(table)
            assert result.stars <= ceiling

    def test_suppressor_roundtrip_through_csv(self, tmp_path):
        from repro.io import read_csv, write_csv
        from repro.workloads import uniform_table

        t = uniform_table(12, 3, alphabet_size=3, seed=0)
        str_table = t.with_rows(
            [tuple(str(v) for v in row) for row in t.rows]
        )
        result = CenterCoverAnonymizer().anonymize(str_table, 3)
        path = tmp_path / "anon.csv"
        write_csv(result.anonymized, path)
        released = read_csv(path)
        assert is_k_anonymous(released, 3)
        # the suppressor can be recovered from the released file
        recovered = Suppressor.from_tables(str_table, released)
        assert recovered.total_stars() == result.stars

    def test_hardness_to_algorithm_pipeline(self):
        """Run the approximation algorithms on a reduction instance and
        decode a matching whenever the output hits the threshold."""
        from repro.workloads import entry_reduction_instance

        red = entry_reduction_instance(2, k=3, extra_edges=2, seed=5)
        result = ExactAnonymizer().anonymize(red.table, 3)
        assert result.stars == red.threshold
        matching = red.matching_from_anonymized(result.anonymized)
        from repro.hardness.matching import is_perfect_matching

        assert is_perfect_matching(red.graph, matching)

    def test_generalization_vs_suppression_on_same_table(self):
        """Generalization (the intro's flavour) loses no more records
        than suppression at the same k, and both release k-anonymous
        tables."""
        from repro.generalization import (
            Hierarchy,
            generalize_table,
            interval_hierarchy,
            samarati,
        )

        t = Table(
            [(34, "Stone"), (47, "Stone"), (36, "Reyser"), (22, "Ramos")],
            attributes=["age", "last"],
        )
        hierarchies = [
            interval_hierarchy(0, 80, base_width=10, branching=2),
            Hierarchy.suppression(["Stone", "Reyser", "Ramos"]),
        ]
        node, _ = samarati(t, hierarchies, 2)
        recoded = generalize_table(t, hierarchies, list(node))
        assert is_k_anonymous(recoded, 2)

        suppressed = ExactAnonymizer().anonymize(t, 2)
        assert is_k_anonymous(suppressed.anonymized, 2)

    def test_equivalence_classes_match_partition(self):
        from repro.workloads import planted_groups_table

        t = planted_groups_table(4, 3, 5, noise=0.1, seed=2)
        result = CenterCoverAnonymizer().anonymize(t, 3)
        classes = equivalence_classes(result.anonymized)
        assert result.partition is not None
        # every partition group maps into a single equivalence class
        for group in result.partition.groups:
            images = {result.anonymized.rows[i] for i in group}
            assert len(images) == 1
        # and class sizes are sums of group sizes
        assert sum(len(v) for v in classes.values()) == t.n_rows
