"""Tests for the set-valued transaction workloads."""

import pytest

from repro.algorithms import CenterCoverAnonymizer, DataflyAnonymizer
from repro.algorithms.exact import optimal_anonymization
from repro.workloads import planted_basket_table, transaction_table


class TestTransactionTable:
    def test_shape_and_binary(self):
        t = transaction_table(30, 12, seed=0)
        assert (t.n_rows, t.degree) == (30, 12)
        assert {v for row in t.rows for v in row} <= {0, 1}
        assert t.attributes[0] == "item0"

    def test_popularity_skew(self):
        t = transaction_table(500, 10, popularity_exponent=1.5, seed=1)
        first = sum(row[0] for row in t.rows)
        last = sum(row[-1] for row in t.rows)
        assert first > last

    def test_density_controls_fill(self):
        sparse = transaction_table(300, 10, density=0.1, seed=2)
        dense = transaction_table(300, 10, density=0.6, seed=2)
        fill = lambda t: sum(v for row in t.rows for v in row)  # noqa: E731
        assert fill(sparse) < fill(dense)

    def test_deterministic(self):
        assert transaction_table(20, 8, seed=5) == transaction_table(20, 8, seed=5)

    def test_validation(self):
        with pytest.raises(ValueError):
            transaction_table(-1, 5)
        with pytest.raises(ValueError):
            transaction_table(5, 0)
        with pytest.raises(ValueError):
            transaction_table(5, 5, density=0.0)
        with pytest.raises(ValueError):
            transaction_table(5, 5, popularity_exponent=-1)

    def test_anonymizable(self):
        t = transaction_table(40, 8, seed=3)
        result = CenterCoverAnonymizer().anonymize(t, 4)
        assert result.is_valid(t)


class TestPlantedBaskets:
    def test_shape(self):
        t = planted_basket_table(4, 3, 10, seed=0)
        assert t.n_rows == 12
        assert t.degree == 10

    def test_zero_flips_zero_opt(self):
        t = planted_basket_table(3, 3, 6, flip_probability=0.0, seed=1)
        opt, _ = optimal_anonymization(t, 3)
        assert opt == 0

    def test_attribute_suppression_works_on_baskets(self):
        t = planted_basket_table(4, 3, 6, flip_probability=0.05, seed=2)
        result = DataflyAnonymizer().anonymize(t, 3)
        assert result.is_valid(t)

    def test_validation(self):
        with pytest.raises(ValueError):
            planted_basket_table(0, 3, 5)
        with pytest.raises(ValueError):
            planted_basket_table(2, 3, 5, flip_probability=2.0)
