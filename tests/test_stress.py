"""End-to-end stress tests: realistic scales, full pipeline, every gate.

Heavier than unit tests (a few seconds total) but still CI-friendly;
these are the runs a release engineer would do before shipping.
"""

import numpy as np
import pytest

from repro import (
    CenterCoverAnonymizer,
    KMemberAnonymizer,
    LocalSearchAnonymizer,
    MondrianAnonymizer,
    MSTForestAnonymizer,
)
from repro.analysis import query_error_experiment
from repro.core.anonymity import is_k_anonymous
from repro.privacy import linkage_attack, risk_report
from repro.validate import validate_release
from repro.workloads import census_table, quasi_identifiers, zipf_table


class TestCensusPipelineAtScale:
    @pytest.fixture(scope="class")
    def table(self):
        return quasi_identifiers(census_table(250, seed=99, age_bucket=10))

    def test_full_publisher_pipeline(self, table):
        k = 5
        result = LocalSearchAnonymizer(CenterCoverAnonymizer()).anonymize(
            table, k
        )
        report = validate_release(table, result.anonymized, k)
        assert report.ok, report.summary()
        assert risk_report(result.anonymized).meets_k(k)
        counts = linkage_attack(
            result.anonymized, table, list(range(table.n_rows))
        )
        assert min(counts.values()) >= k
        utility = query_error_experiment(
            table, result.anonymized, n_queries=25, seed=0
        )
        assert utility.all_sound

    def test_three_algorithms_agree_on_validity(self, table):
        for algorithm in [
            CenterCoverAnonymizer(),
            MondrianAnonymizer(),
            MSTForestAnonymizer(),
        ]:
            result = algorithm.anonymize(table, 4)
            assert result.is_valid(table)
            assert validate_release(table, result.anonymized, 4).ok


class TestWideZipfTable:
    def test_wide_skewed_table(self):
        table = zipf_table(150, 16, alphabet_size=10, exponent=1.4, seed=7)
        result = CenterCoverAnonymizer().anonymize(table, 6)
        assert result.is_valid(table)
        assert is_k_anonymous(result.anonymized, 6)

    def test_kmember_on_wide_table(self):
        table = zipf_table(80, 12, alphabet_size=6, exponent=1.3, seed=8)
        result = KMemberAnonymizer().anonymize(table, 4)
        assert result.is_valid(table)


class TestManySeedsQuickSweep:
    def test_twenty_seeds_center_cover(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            seed = int(rng.integers(0, 10 ** 9))
            n = int(rng.integers(10, 60))
            m = int(rng.integers(2, 7))
            k = int(rng.integers(2, 6))
            if n < k:
                continue
            inner = np.random.default_rng(seed)
            data = inner.integers(0, 4, size=(n, m))
            from repro.core.table import Table

            table = Table([tuple(int(v) for v in row) for row in data])
            result = CenterCoverAnonymizer().anonymize(table, k)
            assert result.is_valid(table), (seed, n, m, k)
