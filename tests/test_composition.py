"""Composition tests: the pieces are designed to snap together.

Any partition-based algorithm composes with cell-level recoding, the
diversity/closeness wrappers, local search, and the validator — these
tests exercise the combinations users will actually build.
"""

import pytest

from repro import (
    CenterCoverAnonymizer,
    LocalSearchAnonymizer,
    MondrianAnonymizer,
    MSTForestAnonymizer,
    SimulatedAnnealingAnonymizer,
    is_k_anonymous,
)
from repro.core.table import Table
from repro.generalization import (
    Hierarchy,
    interval_hierarchy,
    recode_partition,
    recoding_loss,
)
from repro.privacy import LDiverseAnonymizer, TCloseAnonymizer
from repro.validate import validate_release

from .conftest import random_table


@pytest.fixture
def numeric_table():
    import numpy as np

    rng = np.random.default_rng(0)
    return Table(
        [(int(a), int(b)) for a, b in
         zip(rng.integers(0, 32, size=18), rng.integers(0, 32, size=18))],
        attributes=["x", "y"],
    )


@pytest.fixture
def hierarchies():
    h = interval_hierarchy(0, 32, base_width=4, branching=2)
    return [h, h]


class TestRecodingOverAnyPartitionAlgorithm:
    @pytest.mark.parametrize("algorithm_factory", [
        CenterCoverAnonymizer,
        MondrianAnonymizer,
        MSTForestAnonymizer,
    ])
    def test_recode_partition_composition(
        self, numeric_table, hierarchies, algorithm_factory
    ):
        result = algorithm_factory().anonymize(numeric_table, 3)
        assert result.partition is not None
        released = recode_partition(numeric_table, result.partition,
                                    hierarchies)
        assert is_k_anonymous(released, 3)
        loss = recoding_loss(numeric_table, result.partition, hierarchies)
        assert loss <= result.stars + 1e-9  # LCA beats stars

    def test_local_search_improves_recoding_too(self, numeric_table,
                                                hierarchies):
        base = CenterCoverAnonymizer().anonymize(numeric_table, 3)
        polished = LocalSearchAnonymizer(CenterCoverAnonymizer()).anonymize(
            numeric_table, 3
        )
        # star cost improved (or equal) implies we can recode both
        assert polished.stars <= base.stars
        for result in (base, polished):
            released = recode_partition(
                numeric_table, result.partition, hierarchies
            )
            assert is_k_anonymous(released, 3)


class TestWrappersStack:
    def test_ldiverse_over_annealing(self):
        import numpy as np

        rng = np.random.default_rng(1)
        identifiers = random_table(rng, 18, 3, 3)
        sensitive = [int(v) for v in rng.integers(0, 3, size=18)]
        wrapped = LDiverseAnonymizer(
            2, inner=SimulatedAnnealingAnonymizer(steps=200, seed=0)
        )
        result = wrapped.anonymize_with_sensitive(identifiers, 3, sensitive)
        assert result.is_valid(identifiers)
        from repro.privacy import is_l_diverse

        assert is_l_diverse(result.anonymized, sensitive, 2)

    def test_tclose_over_local_search(self):
        import numpy as np

        rng = np.random.default_rng(2)
        identifiers = random_table(rng, 20, 3, 3)
        sensitive = [int(v) for v in rng.integers(0, 2, size=20)]
        wrapped = TCloseAnonymizer(
            0.25, inner=LocalSearchAnonymizer(CenterCoverAnonymizer())
        )
        result = wrapped.anonymize_with_sensitive(identifiers, 3, sensitive)
        from repro.privacy import is_t_close

        assert is_t_close(result.anonymized, sensitive, 0.25)

    def test_validator_accepts_all_compositions(self):
        import numpy as np

        rng = np.random.default_rng(3)
        table = random_table(rng, 16, 3, 3)
        for algorithm in [
            LocalSearchAnonymizer(MondrianAnonymizer()),
            SimulatedAnnealingAnonymizer(steps=150, seed=1),
        ]:
            result = algorithm.anonymize(table, 3)
            report = validate_release(table, result.anonymized, 3)
            assert report.ok, report.summary()


class TestSuppressionHierarchyBridge:
    def test_star_release_equals_suppression_hierarchy_recode(self):
        """Recoding with height-1 hierarchies is literally the paper's
        Step 3 with '*' replaced by each hierarchy's root label."""
        import numpy as np

        from repro.core.alphabet import STAR
        from repro.core.partition import anonymize_partition

        rng = np.random.default_rng(4)
        table = random_table(rng, 12, 2, 3)
        hierarchies = [
            Hierarchy.suppression(sorted({row[j] for row in table.rows}),
                                  root=("ROOT", j))
            for j in range(2)
        ]
        result = CenterCoverAnonymizer().anonymize(table, 3)
        starred, _ = anonymize_partition(table, result.partition)
        recoded = recode_partition(table, result.partition, hierarchies)
        for star_row, recoded_row in zip(starred.rows, recoded.rows):
            for j, (a, b) in enumerate(zip(star_row, recoded_row)):
                if a is STAR:
                    assert b == ("ROOT", j)
                else:
                    assert a == b
