"""Tests for the FPT pattern-DP exact solver (the planner's tier-1 engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import registry, theory
from repro.algorithms.base import InfeasibleAnonymizationError
from repro.algorithms.exact import ExactAnonymizer
from repro.algorithms.fpt_suppression import (
    FPTSuppressionAnonymizer,
    fpt_applicable,
    fpt_cost_model,
)
from repro.core.anonymity import is_k_anonymous
from repro.core.table import Table
from repro.instrument import BudgetExceededError
from tests.conftest import random_table


class TestOptimality:
    """The solver is exact: bit-identical cost to the subset DP."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [2, 3])
    def test_matches_subset_dp_on_random_tables(self, seed, k):
        rng = np.random.default_rng(seed)
        table = random_table(rng, 9, 3, 2)
        reference = ExactAnonymizer().anonymize(table, k)
        result = FPTSuppressionAnonymizer().anonymize(table, k)
        assert result.stars == reference.stars
        assert result.is_valid(table)
        assert is_k_anonymous(result.anonymized, k)

    def test_matches_subset_dp_with_larger_alphabet(self):
        rng = np.random.default_rng(99)
        table = random_table(rng, 10, 2, 3)
        reference = ExactAnonymizer().anonymize(table, 3)
        result = FPTSuppressionAnonymizer().anonymize(table, 3)
        assert result.stars == reference.stars

    def test_scales_past_the_subset_dp_wall(self):
        # n = 60 is far beyond any 2^n subset DP; the pattern DP only
        # sees sigma^m = 8 distinct kinds
        rng = np.random.default_rng(7)
        table = random_table(rng, 60, 3, 2)
        result = FPTSuppressionAnonymizer().anonymize(table, 3)
        assert result.is_valid(table)
        assert result.extras["opt"] == result.stars

    def test_duplicate_rows_cost_nothing(self):
        table = Table([(0, 1, 0)] * 5 + [(1, 0, 1)] * 4)
        result = FPTSuppressionAnonymizer().anonymize(table, 4)
        assert result.stars == 0

    def test_forced_suppression_is_minimal(self):
        # two kinds differing in one column, each below k alone: the
        # optimum suppresses exactly that column on all rows
        table = Table([(0, 0), (0, 1)] * 2)
        result = FPTSuppressionAnonymizer().anonymize(table, 3)
        assert result.stars == 4


class TestEdgeCases:
    def test_empty_table(self):
        result = FPTSuppressionAnonymizer().anonymize(Table([]), 3)
        assert result.stars == 0

    def test_k_one_is_free(self):
        table = Table([(0, 1), (1, 0), (2, 2)])
        result = FPTSuppressionAnonymizer().anonymize(table, 1)
        assert result.stars == 0

    def test_infeasible_raises(self):
        with pytest.raises(InfeasibleAnonymizationError):
            FPTSuppressionAnonymizer().anonymize(Table([(0, 0)]), 2)

    def test_degree_guard(self):
        wide = Table([tuple(range(12))] * 4)
        with pytest.raises(ValueError, match="max_degree"):
            FPTSuppressionAnonymizer(max_degree=8).anonymize(wide, 2)

    def test_budget_expiry_raises(self):
        rng = np.random.default_rng(3)
        table = random_table(rng, 40, 3, 2)
        with pytest.raises(BudgetExceededError):
            FPTSuppressionAnonymizer().anonymize(table, 3, timeout=1e-9)

    def test_extras_expose_search_counters(self):
        table = Table([(0, 0), (0, 1), (1, 0), (1, 1)] * 2)
        result = FPTSuppressionAnonymizer().anonymize(table, 2)
        assert result.extras["opt"] == result.stars
        assert result.extras["patterns"] == 4
        assert result.extras["dp_states"] >= 1


class TestRegistration:
    def test_registered_as_parameterized_exact(self):
        info = registry.get("fpt_suppression")
        assert info.kind == "exact"
        assert info.parameterized
        assert registry.get("fpt") is info
        assert registry.get("pattern_dp") is info

    def test_proven_bound_is_one(self):
        assert registry.proven_bound("fpt_suppression", 3, 4) == 1.0

    def test_applicable_regime(self):
        assert fpt_applicable(100, 3, 2, 3)
        assert fpt_applicable(240, 2, 2, 2)
        assert not fpt_applicable(100, 8, 2, 3)   # too wide
        assert not fpt_applicable(100, 3, 2, 9)   # k too large
        assert not fpt_applicable(1, 3, 2, 3)     # infeasible

    def test_cost_model_prefers_settled_instances(self):
        plentiful = fpt_cost_model(240, 3, 2, 2)
        starved = fpt_cost_model(10, 3, 2, 2)
        assert plentiful < starved


class TestTheoryBound:
    def test_state_bound_grows_with_parameters(self):
        small = theory.fpt_suppression_states(2, 1, 2)
        bigger = theory.fpt_suppression_states(3, 2, 2)
        assert small == 81.0
        assert bigger > small

    def test_state_bound_rejects_bad_args(self):
        with pytest.raises(ValueError):
            theory.fpt_suppression_states(0, 1, 2)
