"""Tests for the Reduce procedure (Section 4.2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.reduce_cover import reduce_and_shrink, reduce_cover
from repro.core.partition import Cover, Partition
from repro.core.table import Table

from .conftest import random_table


def _random_cover(rng, n: int, k: int) -> Cover:
    """A random (k, *)-cover: every row in at least one random group."""
    groups = []
    uncovered = set(range(n))
    while uncovered:
        size = int(rng.integers(k, min(2 * k, n) + 1))
        seed_row = uncovered.pop()
        others = [i for i in range(n) if i != seed_row]
        mates = rng.choice(others, size=min(size - 1, len(others)), replace=False)
        group = frozenset({seed_row, *(int(i) for i in mates)})
        uncovered -= group
        groups.append(group)
    k_max = max(len(g) for g in groups)
    return Cover(groups, n, k, k_max=max(k_max, 2 * k - 1))


class TestRemovalPath:
    def test_removes_from_larger_set(self):
        c = Cover([{0, 1, 2}, {2, 3}], n_rows=4, k=2)
        p = reduce_cover(c)
        assert p.is_partition()
        # 2 must stay in the size-2 set; the size-3 set loses it.
        assert frozenset({2, 3}) in p.groups
        assert frozenset({0, 1}) in p.groups

    def test_tie_removes_deterministically(self):
        c = Cover([{0, 1, 2}, {2, 3, 4}], n_rows=5, k=2)
        p1 = reduce_cover(c)
        p2 = reduce_cover(c)
        assert p1.groups == p2.groups


class TestMergePath:
    def test_merges_two_k_sets(self):
        c = Cover([{0, 1}, {1, 2}], n_rows=3, k=2)
        p = reduce_cover(c)
        assert p.groups == (frozenset({0, 1, 2}),)

    def test_merged_size_bounded_by_2k_minus_1(self):
        c = Cover([{0, 1, 2}, {2, 3, 4}], n_rows=5, k=3)
        p = reduce_cover(c)
        assert all(len(g) <= 5 for g in p.groups)

    def test_identical_duplicate_sets_collapse(self):
        c = Cover([{0, 1}, {0, 1}], n_rows=2, k=2)
        p = reduce_cover(c)
        assert p.groups == (frozenset({0, 1}),)


class TestAlreadyPartition:
    def test_no_op(self):
        c = Cover([{0, 1}, {2, 3}], n_rows=4, k=2)
        p = reduce_cover(c)
        assert set(p.groups) == set(c.groups)

    def test_triple_overlap_chain(self):
        c = Cover([{0, 1}, {1, 2}, {2, 3}], n_rows=4, k=2)
        p = reduce_cover(c)
        assert p.is_partition()
        assert all(len(g) >= 2 for g in p.groups)


class TestInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 4))
    def test_reduce_produces_valid_partition(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 16))
        cover = _random_cover(rng, n, k)
        p = reduce_cover(cover)
        assert p.is_partition()
        p.validate()
        assert all(len(g) >= k for g in p.groups)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 4))
    def test_diameter_sum_never_increases(self, seed, k):
        """The paper's key property of Reduce, checked on random tables
        and covers."""
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 16))
        t = random_table(rng, n, 4, 3)
        cover = _random_cover(rng, n, k)
        p = reduce_cover(cover)
        assert p.diameter_sum(t) <= cover.diameter_sum(t)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_reduce_and_shrink_yields_small_groups(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 16))
        t = random_table(rng, n, 4, 3)
        cover = _random_cover(rng, n, k)
        p = reduce_and_shrink(t, cover)
        assert isinstance(p, Partition)
        assert all(k <= len(g) <= 2 * k - 1 for g in p.groups)


class TestDoctestCase:
    def test_module_example(self):
        c = Cover([{0, 1}, {1, 2}], n_rows=3, k=2)
        assert sorted(len(g) for g in reduce_cover(c).groups) == [3]
