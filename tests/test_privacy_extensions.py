"""Tests for entropy l-diversity, the t-closeness enforcer, and the
power-law fitter."""

import math

import pytest

from repro.algorithms import CenterCoverAnonymizer
from repro.core.table import Table
from repro.privacy import (
    TCloseAnonymizer,
    closeness_level,
    entropy_diversity_level,
    is_entropy_l_diverse,
    is_l_diverse,
    is_t_close,
)
from repro.theory import fit_power_law

from .conftest import random_table


class TestEntropyDiversity:
    def test_uniform_class_reaches_distinct_count(self):
        released = Table([(1,)] * 4)
        sensitive = ["a", "b", "c", "d"]
        assert entropy_diversity_level(released, sensitive) == pytest.approx(4.0)

    def test_skewed_class_scores_lower_than_distinct(self):
        released = Table([(1,)] * 50)
        sensitive = ["HIV"] * 49 + ["Flu"]
        assert is_l_diverse(released, sensitive, 2)  # distinct says 2
        level = entropy_diversity_level(released, sensitive)
        assert 1.0 < level < 1.2  # entropy says "barely above 1"
        assert not is_entropy_l_diverse(released, sensitive, 2)

    def test_min_over_classes(self):
        released = Table([(1,), (1,), (2,), (2,)])
        sensitive = ["a", "b", "c", "c"]
        # class (1,) has entropy log 2; class (2,) has entropy 0
        assert entropy_diversity_level(released, sensitive) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            entropy_diversity_level(Table([(1,)]), ["a", "b"])
        with pytest.raises(ValueError):
            is_entropy_l_diverse(Table([(1,)]), ["a"], 0.5)

    def test_empty(self):
        assert is_entropy_l_diverse(Table([]), [], 3)

    def test_entropy_never_exceeds_distinct(self):
        import numpy as np

        rng = np.random.default_rng(0)
        for _ in range(10):
            n = int(rng.integers(4, 16))
            released = Table([(int(v),) for v in rng.integers(0, 3, size=n)])
            sensitive = [int(v) for v in rng.integers(0, 4, size=n)]
            from repro.privacy import diversity_level

            assert entropy_diversity_level(released, sensitive) <= (
                diversity_level(released, sensitive) + 1e-9
            )


class TestTCloseAnonymizer:
    def _instance(self, seed=0, n=20):
        import numpy as np

        rng = np.random.default_rng(seed)
        identifiers = random_table(rng, n, 3, 3)
        sensitive = [str(int(v)) for v in rng.integers(0, 3, size=n)]
        return identifiers, sensitive

    def test_enforces_t(self):
        identifiers, sensitive = self._instance()
        result = TCloseAnonymizer(0.2).anonymize_with_sensitive(
            identifiers, 3, sensitive
        )
        assert result.is_valid(identifiers)
        assert is_t_close(result.anonymized, sensitive, 0.2)

    def test_t_zero_reachable_by_full_merge(self):
        identifiers, sensitive = self._instance(seed=1)
        result = TCloseAnonymizer(0.0).anonymize_with_sensitive(
            identifiers, 3, sensitive
        )
        assert closeness_level(result.anonymized, sensitive) <= 1e-9

    def test_tighter_t_costs_more(self):
        identifiers, sensitive = self._instance(seed=2)
        loose = TCloseAnonymizer(0.6).anonymize_with_sensitive(
            identifiers, 3, sensitive
        )
        tight = TCloseAnonymizer(0.05).anonymize_with_sensitive(
            identifiers, 3, sensitive
        )
        assert tight.stars >= loose.stars

    def test_cost_at_least_base(self):
        identifiers, sensitive = self._instance(seed=3)
        base = CenterCoverAnonymizer().anonymize(identifiers, 3).stars
        result = TCloseAnonymizer(0.3).anonymize_with_sensitive(
            identifiers, 3, sensitive
        )
        assert result.stars >= base
        assert result.extras["base_stars"] == base

    def test_validation(self):
        with pytest.raises(ValueError):
            TCloseAnonymizer(1.5)
        identifiers, sensitive = self._instance()
        with pytest.raises(ValueError):
            TCloseAnonymizer(0.2).anonymize_with_sensitive(
                identifiers, 3, sensitive[:-1]
            )

    def test_name(self):
        assert TCloseAnonymizer(0.25).name == "center_cover+tclose0.25"


class TestFitPowerLaw:
    def test_exact_quadratic(self):
        sizes = [10, 20, 40, 80]
        times = [s ** 2 for s in sizes]
        assert fit_power_law(sizes, times) == pytest.approx(2.0)

    def test_exact_linear_with_constant(self):
        sizes = [1, 2, 4, 8]
        times = [5 * s for s in sizes]
        assert fit_power_law(sizes, times) == pytest.approx(1.0)

    def test_exponential_data_fits_high(self):
        sizes = [10, 20, 40]
        times = [math.exp(s) for s in sizes]
        assert fit_power_law(sizes, times) > 10

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ValueError):
            fit_power_law([0, 2], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([2, 2], [1, 2])
