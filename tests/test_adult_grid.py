"""The adult-like workload, and the full algorithm x workload validity
grid — every anonymizer against every workload family, one parametrized
case each."""

from collections import Counter

import pytest

from repro.algorithms import (
    CenterCoverAnonymizer,
    DataflyAnonymizer,
    GreedyChainAnonymizer,
    KMemberAnonymizer,
    LocalSearchAnonymizer,
    MSTForestAnonymizer,
    MondrianAnonymizer,
    RandomPartitionAnonymizer,
    SimulatedAnnealingAnonymizer,
    SortedChunkAnonymizer,
    SuppressEverythingAnonymizer,
    TopDownGreedyAnonymizer,
)
from repro.workloads import (
    adult_like_table,
    census_table,
    duplicate_heavy_table,
    planted_basket_table,
    planted_groups_table,
    quasi_identifiers,
    transaction_table,
    uniform_table,
    zipf_table,
)
from repro.workloads.adult_like import ATTRIBUTES


class TestAdultLikeWorkload:
    def test_schema_and_shape(self):
        t = adult_like_table(50, seed=0)
        assert t.attributes == ATTRIBUTES
        assert t.n_rows == 50

    def test_deterministic(self):
        assert adult_like_table(20, seed=1) == adult_like_table(20, seed=1)

    def test_education_income_correlation(self):
        """P(>50K | Doctorate/Masters) > P(>50K | HS) — the correlation
        the generator exists to provide."""
        t = adult_like_table(2000, seed=2)
        edu = t.column("education")
        income = t.column("income")
        rates = {}
        for level in ("HS", "Masters", "Doctorate"):
            rows = [i for i, e in enumerate(edu) if e == level]
            if rows:
                rates[level] = sum(
                    1 for i in rows if income[i] == ">50K"
                ) / len(rows)
        assert rates["Doctorate"] > rates["HS"]

    def test_age_marital_correlation(self):
        t = adult_like_table(2000, seed=3)
        age = t.column("age")
        marital = t.column("marital")
        young_single = Counter(
            marital[i] for i in range(t.n_rows) if age[i] < 25
        )
        old = Counter(marital[i] for i in range(t.n_rows) if age[i] >= 60)
        assert young_single["Single"] > young_single["Widowed"]
        assert old["Widowed"] > 0

    def test_ages_bucketed(self):
        t = adult_like_table(100, seed=4, age_bucket=5)
        assert all(a % 5 == 0 for a in t.column("age"))

    def test_validation(self):
        with pytest.raises(ValueError):
            adult_like_table(-1)
        with pytest.raises(ValueError):
            adult_like_table(10, age_bucket=0)

    def test_correlated_data_is_easier_than_uniform(self):
        """The point of correlation: the same algorithm keeps more cells
        on adult-like data than on uniform data of equal shape."""
        adult = adult_like_table(100, seed=5)
        uniform = uniform_table(100, 6, alphabet_size=6, seed=5)
        a = CenterCoverAnonymizer().anonymize(adult, 4)
        u = CenterCoverAnonymizer().anonymize(uniform, 4)
        assert a.stars / adult.total_cells() < u.stars / uniform.total_cells()


WORKLOADS = {
    "uniform": lambda: uniform_table(40, 4, alphabet_size=3, seed=0),
    "zipf": lambda: zipf_table(40, 4, alphabet_size=8, seed=0),
    "planted": lambda: planted_groups_table(10, 4, 4, noise=0.1, seed=0),
    "census": lambda: quasi_identifiers(census_table(40, seed=0)),
    "adult": lambda: adult_like_table(40, seed=0),
    "baskets": lambda: planted_basket_table(10, 4, 5, seed=0),
    "transactions": lambda: transaction_table(40, 5, seed=0),
    "duplicates": lambda: duplicate_heavy_table(40, 4, n_distinct=5, seed=0),
}

ALGORITHMS = {
    "center": CenterCoverAnonymizer,
    "mondrian": MondrianAnonymizer,
    "kmember": KMemberAnonymizer,
    "forest": MSTForestAnonymizer,
    "datafly": DataflyAnonymizer,
    "topdown": TopDownGreedyAnonymizer,
    "chain": GreedyChainAnonymizer,
    "sorted": SortedChunkAnonymizer,
    "random": lambda: RandomPartitionAnonymizer(seed=0),
    "all_star": SuppressEverythingAnonymizer,
    "local": lambda: LocalSearchAnonymizer(GreedyChainAnonymizer()),
    "anneal": lambda: SimulatedAnnealingAnonymizer(
        inner=GreedyChainAnonymizer(), steps=80, seed=0
    ),
}


@pytest.mark.parametrize("workload", list(WORKLOADS))
@pytest.mark.parametrize("algorithm", list(ALGORITHMS))
def test_grid_validity(workload, algorithm):
    """Every algorithm must produce a valid 4-anonymous suppression on
    every workload family."""
    table = WORKLOADS[workload]()
    result = ALGORITHMS[algorithm]().anonymize(table, 4)
    assert result.is_valid(table), (algorithm, workload)
