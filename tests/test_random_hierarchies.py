"""Property tests over randomly generated taxonomy hierarchies.

The hand-written hierarchy tests use fixed trees; here hypothesis builds
random uniform-depth taxonomies and checks the structural laws that
every hierarchy must satisfy, plus Samarati/Incognito consistency and
journalist-vs-prosecutor risk domination.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.table import Table
from repro.generalization import (
    GeneralizationLattice,
    Hierarchy,
    incognito,
    samarati,
)
from repro.privacy import journalist_risk, prosecutor_risk


def random_hierarchy(rng: np.random.Generator, n_leaves: int, depth: int
                     ) -> Hierarchy:
    """A random uniform-depth taxonomy over leaves ``L0..L{n-1}``."""
    parent: dict = {}
    level_nodes = [f"L{i}" for i in range(n_leaves)]
    for level in range(1, depth + 1):
        if level == depth:
            for node in level_nodes:
                parent[node] = "*"
            break
        n_parents = max(1, int(rng.integers(1, max(2, len(level_nodes)))))
        labels = [f"lvl{level}-{p}" for p in range(n_parents)]
        # every parent gets at least one child; extras go randomly
        children = list(level_nodes)
        rng.shuffle(children)
        for p, child in enumerate(children[:n_parents]):
            parent[child] = labels[p]
        for child in children[n_parents:]:
            parent[child] = labels[int(rng.integers(0, n_parents))]
        level_nodes = labels
    return Hierarchy(parent, "*")


class TestRandomHierarchyLaws:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_structural_laws(self, seed):
        rng = np.random.default_rng(seed)
        n_leaves = int(rng.integers(2, 8))
        depth = int(rng.integers(1, 4))
        hierarchy = random_hierarchy(rng, n_leaves, depth)
        assert hierarchy.height == depth
        assert len(hierarchy.leaves) == n_leaves
        for leaf in hierarchy.leaves:
            # generalizing to the top always reaches the root
            assert hierarchy.generalize(leaf, hierarchy.height) == "*"
            # levels are monotone along the ancestor chain
            previous = leaf
            for level in range(1, hierarchy.height + 1):
                node = hierarchy.generalize(leaf, level)
                assert hierarchy.level_of(node) == level
                assert hierarchy.generalize(previous, level) == node
                previous = node

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_lca_laws(self, seed):
        rng = np.random.default_rng(seed)
        hierarchy = random_hierarchy(rng, int(rng.integers(2, 8)),
                                     int(rng.integers(1, 4)))
        leaves = list(hierarchy.leaves)
        a = leaves[int(rng.integers(0, len(leaves)))]
        b = leaves[int(rng.integers(0, len(leaves)))]
        level = hierarchy.lca_level([a, b])
        # symmetric, reflexive-zero, and actually unifying
        assert level == hierarchy.lca_level([b, a])
        assert hierarchy.lca_level([a]) == 0
        assert hierarchy.generalize(a, level) == hierarchy.generalize(b, level)
        if level > 0:
            below = level - 1
            if below >= 0 and a != b:
                assert (
                    hierarchy.generalize(a, below)
                    != hierarchy.generalize(b, below)
                    or level == 0
                )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_samarati_incognito_consistency(self, seed):
        """On random tables + random hierarchies, Samarati's minimal
        height equals the minimum height over Incognito's frontier."""
        rng = np.random.default_rng(seed)
        h1 = random_hierarchy(rng, 3, int(rng.integers(1, 3)))
        h2 = random_hierarchy(rng, 3, int(rng.integers(1, 3)))
        leaves1, leaves2 = list(h1.leaves), list(h2.leaves)
        n = int(rng.integers(2, 9))
        rows = [
            (leaves1[int(rng.integers(0, 3))], leaves2[int(rng.integers(0, 3))])
            for _ in range(n)
        ]
        table = Table(rows)
        _, height = samarati(table, [h1, h2], 2)
        frontier = incognito(table, [h1, h2], 2)
        assert min(sum(node) for node in frontier) == height
        lattice = GeneralizationLattice([h1, h2])
        for node in frontier:
            assert lattice.satisfies(table, node, 2)


class TestJournalistRisk:
    def test_dominated_by_prosecutor(self):
        from repro.algorithms import CenterCoverAnonymizer

        rng = np.random.default_rng(0)
        population_rows = [
            tuple(int(v) for v in rng.integers(0, 3, size=3))
            for _ in range(60)
        ]
        population = Table(population_rows)
        sample = population.select_rows(range(20))
        released = CenterCoverAnonymizer().anonymize(sample, 3).anonymized
        journalist = journalist_risk(released, population)
        prosecutor = prosecutor_risk(released)
        # the release's rows all exist in the population, so every
        # journalist risk is positive and at most ~the prosecutor risk
        assert all(0 < j <= p + 1e-9 for j, p in zip(journalist, prosecutor))

    def test_impossible_record_zero(self):
        released = Table([(99, 99)])
        population = Table([(1, 1), (2, 2)])
        assert journalist_risk(released, population) == [0.0]

    def test_star_matches_everyone(self):
        from repro.core.alphabet import STAR

        released = Table([(STAR, STAR)])
        population = Table([(1, 1), (2, 2), (3, 3)])
        assert journalist_risk(released, population) == [pytest.approx(1 / 3)]

    def test_schema_mismatch(self):
        with pytest.raises(ValueError):
            journalist_risk(Table([(1,)]), Table([(1, 2)]))
