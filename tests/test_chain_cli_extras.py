"""Tests for the greedy-chain baseline and the CLI's --ldiv flag."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    GreedyChainAnonymizer,
    RandomPartitionAnonymizer,
    nearest_neighbour_order,
)
from repro.cli import main
from repro.core.table import Table

from .conftest import random_table


class TestNearestNeighbourOrder:
    def test_visits_everything_once(self):
        import numpy as np

        t = random_table(np.random.default_rng(0), 15, 3, 3)
        order = nearest_neighbour_order(t)
        assert sorted(order) == list(range(15))

    def test_follows_locality(self):
        t = Table([(0, 0), (9, 9), (0, 1), (9, 8)])
        order = nearest_neighbour_order(t)
        assert order == [0, 2, 1, 3] or order == [0, 2, 3, 1]

    def test_empty(self):
        assert nearest_neighbour_order(Table([])) == []


class TestGreedyChain:
    def test_valid_output(self):
        import numpy as np

        t = random_table(np.random.default_rng(1), 17, 4, 3)
        result = GreedyChainAnonymizer().anonymize(t, 3)
        assert result.is_valid(t)

    def test_beats_random_on_clustered_data(self):
        from repro.workloads import planted_groups_table

        t = planted_groups_table(8, 3, 5, noise=0.05, seed=0)
        chain = GreedyChainAnonymizer().anonymize(t, 3).stars
        rand = RandomPartitionAnonymizer(seed=0).anonymize(t, 3).stars
        assert chain < rand

    def test_empty_and_infeasible(self):
        from repro.algorithms.base import InfeasibleAnonymizationError

        assert GreedyChainAnonymizer().anonymize(Table([]), 2).stars == 0
        with pytest.raises(InfeasibleAnonymizationError):
            GreedyChainAnonymizer().anonymize(Table([(1,)]), 2)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 4))
    def test_always_valid(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 20))
        t = random_table(rng, n, 3, 3)
        assert GreedyChainAnonymizer().anonymize(t, k).is_valid(t)


class TestCliLdiv:
    @pytest.fixture
    def csv_with_sensitive(self, tmp_path):
        path = tmp_path / "patients.csv"
        rows = [
            "age,zip,diagnosis",
            "30,100,flu", "30,101,cold",
            "40,200,flu", "40,201,hep",
            "30,100,hep", "40,200,cold",
        ]
        path.write_text("\n".join(rows) + "\n")
        return path

    def test_ldiv_release_is_diverse(self, csv_with_sensitive, tmp_path):
        out = tmp_path / "out.csv"
        code = main(
            ["anonymize", str(csv_with_sensitive), "-k", "2",
             "--ldiv", "2", "-o", str(out)]
        )
        assert code == 0
        from repro.io import read_csv
        from repro.privacy import is_l_diverse

        released = read_csv(out)
        assert released.attributes == ("age", "zip", "diagnosis")
        sensitive = released.column("diagnosis")
        identifiers = released.project(["age", "zip"])
        from repro.core.anonymity import is_k_anonymous

        assert is_k_anonymous(identifiers, 2)
        assert is_l_diverse(identifiers, sensitive, 2)
        # the sensitive column is released untouched
        assert sorted(sensitive) == sorted(
            ["flu", "cold", "flu", "hep", "hep", "cold"]
        )

    def test_chain_algorithm_via_cli(self, csv_with_sensitive, tmp_path):
        out = tmp_path / "chain.csv"
        code = main(
            ["anonymize", str(csv_with_sensitive), "-k", "2",
             "--algorithm", "chain", "-o", str(out)]
        )
        assert code == 0
