"""Property-based parity: every backend must be bit-identical to PythonBackend.

The pure-Python backend is the reference oracle — its primitives are the
row-level functions in :mod:`repro.core.distance` applied verbatim.  The
numpy backend re-derives every primitive from the integer-encoded table,
and the bitpacked backend re-derives them again from XOR+popcount over
uint64 lanes (binary columns) plus residual compares (wide columns), so
this suite drives all available backends with the same generated tables
(random values, suppressed cells, mixed binary/wide alphabets, degenerate
shapes) and requires exact agreement, including Python types (plain
``int``, plain ``list``).
"""

from __future__ import annotations

import gc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import STAR
from repro.core.backend import (
    BitpackedBackend,
    EncodedTable,
    NumpyBackend,
    available_backends,
    default_backend_name,
    encode_table,
    get_backend,
    make_backend,
)
from repro.core.distance import pairwise_distance_matrix
from repro.core.table import Table

pytestmark = pytest.mark.skipif(
    "numpy" not in available_backends(),
    reason="numpy backend not available",
)

# -- table strategies ---------------------------------------------------

_VALUES = st.one_of(
    st.integers(0, 3),
    st.sampled_from(["a", "b", STAR]),
)

# columns drawn from a two-symbol pool encode to <= 2 codes and land in
# the bitpacked lanes; the wide pool forces the residual compare path
_BINARY_VALUES = st.sampled_from([0, 1])
_STARRED_BINARY_VALUES = st.sampled_from(["yes", STAR])
_WIDE_VALUES = st.sampled_from([0, 1, 2, "q", STAR])


@st.composite
def tables(draw, min_rows: int = 0, max_rows: int = 8) -> Table:
    m = draw(st.integers(0, 5))
    n = draw(st.integers(min_rows, max_rows))
    rows = [
        tuple(draw(_VALUES) for _ in range(m))
        for _ in range(n)
    ]
    return Table(rows)


@st.composite
def mixed_width_tables(draw, min_rows: int = 0, max_rows: int = 8) -> Table:
    """Tables mixing binary, STAR-augmented-binary, and wide columns."""
    pools = draw(
        st.lists(
            st.sampled_from(
                [_BINARY_VALUES, _STARRED_BINARY_VALUES, _WIDE_VALUES]
            ),
            min_size=0,
            max_size=6,
        )
    )
    n = draw(st.integers(min_rows, max_rows))
    rows = [tuple(draw(pool) for pool in pools) for _ in range(n)]
    return Table(rows)


@st.composite
def tables_with_group(draw) -> tuple[Table, frozenset[int]]:
    table = draw(
        st.one_of(tables(min_rows=1), mixed_width_tables(min_rows=1))
    )
    size = draw(st.integers(1, table.n_rows))
    group = draw(
        st.sets(
            st.integers(0, table.n_rows - 1), min_size=size, max_size=size
        )
    )
    return table, frozenset(group)


def backends(table: Table) -> list:
    """The python oracle first, then every accelerated backend."""
    return [make_backend(table, name) for name in available_backends()]


# -- primitive parity ---------------------------------------------------


@given(st.one_of(tables(), mixed_width_tables()))
@settings(max_examples=60, deadline=None)
def test_distance_matrix_parity(table):
    py, *accelerated = backends(table)
    py_matrix = py.distance_matrix()
    assert py_matrix == pairwise_distance_matrix(table)
    for backend in accelerated:
        matrix = backend.distance_matrix()
        assert matrix == py_matrix
        for row in matrix:
            assert type(row) is list
            assert all(type(value) is int for value in row)


@given(st.one_of(tables(min_rows=2), mixed_width_tables(min_rows=2)))
@settings(max_examples=40, deadline=None)
def test_pointwise_distance_parity(table):
    py, *accelerated = backends(table)
    for backend in accelerated:
        for i in range(table.n_rows):
            for j in range(table.n_rows):
                d = backend.distance(i, j)
                assert type(d) is int
                assert d == py.distance(i, j)


@given(st.one_of(tables(min_rows=1), mixed_width_tables(min_rows=1)))
@settings(max_examples=40, deadline=None)
def test_distance_row_parity(table):
    py, *accelerated = backends(table)
    for i in range(table.n_rows):
        reference = py.distance_row(i)
        assert reference == [py.distance(i, j) for j in range(table.n_rows)]
        for backend in accelerated:
            row = backend.distance_row(i)
            assert type(row) is list
            assert all(type(value) is int for value in row)
            assert row == reference


@given(tables_with_group())
@settings(max_examples=80, deadline=None)
def test_group_query_parity(table_and_group):
    table, group = table_and_group
    py, *accelerated = backends(table)
    center = min(group)
    for backend in accelerated:
        assert backend.diameter(group) == py.diameter(group)
        assert backend.disagreeing_coordinates(
            group
        ) == py.disagreeing_coordinates(group)
        assert backend.anon_cost(group) == py.anon_cost(group)
        assert backend.group_image(group) == py.group_image(group)
        assert backend.radius_from(center, group) == py.radius_from(
            center, group
        )


@given(st.one_of(tables(min_rows=1), mixed_width_tables(min_rows=1)))
@settings(max_examples=40, deadline=None)
def test_neighbor_index_parity(table):
    py, *accelerated = backends(table)
    n = table.n_rows
    radii = sorted({d for row in py.distance_matrix() for d in row})
    for center in range(n):
        reference_order = py.neighbor_order(center)
        for backend in accelerated:
            assert backend.neighbor_order(center) == reference_order
            for r in radii:
                assert backend.neighbors_within(
                    center, r
                ) == py.neighbors_within(center, r)


@given(tables_with_group())
@settings(max_examples=60, deadline=None)
def test_group_stats_parity(table_and_group):
    """Incremental stats agree with from-scratch queries on all backends."""
    table, group = table_and_group
    for backend in backends(table):
        stats = backend.group_stats(group)
        assert stats.cost == backend.anon_cost(group)
        assert stats.n_disagreeing == len(
            backend.disagreeing_coordinates(group)
        )
        for extra in range(table.n_rows):
            if extra in group:
                assert stats.cost_if_remove(extra) == backend.anon_cost(
                    group - {extra}
                )
            else:
                assert stats.cost_if_add(extra) == backend.anon_cost(
                    group | {extra}
                )
        out = min(group)
        for into in range(table.n_rows):
            if into not in group:
                assert stats.cost_if_swap(out, into) == backend.anon_cost(
                    (group - {out}) | {into}
                )
        # what-if queries must not have mutated the tracker
        assert stats.members == group
        assert stats.cost == backend.anon_cost(group)


def test_degenerate_shapes():
    for rows in ([], [()], [(), ()], [(1,)], [(STAR, STAR)]):
        table = Table(rows)
        py, *accelerated = backends(table)
        for backend in accelerated:
            assert backend.distance_matrix() == py.distance_matrix()
            if rows:
                full = frozenset(range(len(rows)))
                assert backend.diameter(full) == py.diameter(full)
                assert backend.group_image(full) == py.group_image(full)


# -- encoding -----------------------------------------------------------


def test_encoded_table_roundtrip():
    table = Table([(1, "x", STAR), (1, "y", 2.5), (3, "x", STAR)])
    encoded = EncodedTable(table)
    assert encoded.n_rows == 3 and encoded.degree == 3
    for i, row in enumerate(table.rows):
        for j, value in enumerate(row):
            assert encoded.decode(j, int(encoded.codes[i, j])) == value


def test_encoded_table_star_is_ordinary_symbol():
    """STAR equals only itself, so starred tables stay on the fast path."""
    table = Table([(STAR, 0), (STAR, 1), (0, 0)])
    py, *accelerated = backends(table)
    for backend in accelerated:
        assert backend.distance(0, 1) == py.distance(0, 1) == 1
        assert backend.distance(0, 2) == py.distance(0, 2) == 1
        assert backend.distance_matrix() == py.distance_matrix()


def test_encoded_table_packs_narrow_dtypes():
    small = EncodedTable(Table([(0, 1), (2, 3)]))
    assert small.codes.dtype == np.uint8
    # codes count distinct values per column: >256 of them need uint16
    tall = EncodedTable(Table([(i,) for i in range(300)]))
    assert tall.codes.dtype == np.uint16


def test_encode_once_per_table():
    """All backend instances over one table share one EncodedTable."""
    table = Table([(0, 1, "a"), (1, 0, "b"), (0, 0, "c")])
    npb = make_backend(table, "numpy")
    bp = make_backend(table, "bitpacked")
    assert isinstance(npb, NumpyBackend) and isinstance(bp, BitpackedBackend)
    assert npb.encoded is bp.encoded
    assert encode_table(table) is npb.encoded
    # fresh instances over the same live table still hit the cache
    assert make_backend(table, "numpy").encoded is npb.encoded


def test_encoded_cache_evicts_dead_tables():
    from repro.core.backend import _ENCODED_CACHE

    table = Table([(0, 1), (1, 0)])
    key = id(table)
    encode_table(table)
    assert key in _ENCODED_CACHE
    del table
    gc.collect()
    assert key not in _ENCODED_CACHE


# -- bit-packed lanes ---------------------------------------------------


def _binary_wide_table(n_rows: int, n_binary: int, seed: int = 0) -> Table:
    """n_binary 0/1 columns (spanning >1 lane when > 64) plus 3 wide."""
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(n_rows):
        binary = tuple(int(v) for v in rng.integers(0, 2, n_binary))
        wide = tuple(int(v) for v in rng.integers(0, 5, 3))
        rows.append(binary + wide)
    return Table(rows)


def test_bitpacked_lane_layout():
    table = _binary_wide_table(6, 130)
    bp = make_backend(table, "bitpacked")
    lanes, wide = bp.packed
    assert lanes.dtype == np.uint64
    assert lanes.shape == (6, 3)  # 130 binary bits -> 3 uint64 lanes
    assert wide.shape[0] == 6
    encoded = bp.encoded
    assert len(encoded.binary_columns) >= 130
    assert set(encoded.binary_columns) | set(encoded.wide_columns) == set(
        range(table.degree)
    )


def test_bitpacked_parity_across_lane_boundary():
    """Exact parity on a table whose lanes cross the 64-bit boundary."""
    table = _binary_wide_table(12, 130, seed=7)
    py = make_backend(table, "python")
    bp = make_backend(table, "bitpacked")
    assert bp.distance_matrix() == py.distance_matrix()
    group = frozenset([0, 3, 11])
    assert bp.diameter(group) == py.diameter(group)
    assert bp.anon_cost(group) == py.anon_cost(group)
    assert bp.group_image(group) == py.group_image(group)


def test_bitpacked_all_wide_columns_fall_back():
    """A table with no binary columns still works (zero-lane packing)."""
    table = Table([(0, 1, 2), (3, 4, 5), (6, 7, 8), (0, 4, 8)])
    py = make_backend(table, "python")
    bp = make_backend(table, "bitpacked")
    lanes, wide = bp.packed
    assert lanes.shape[1] == 0 and wide.shape[1] == 3
    assert bp.distance_matrix() == py.distance_matrix()


# -- selection and caching ----------------------------------------------


def test_available_backends_lists_bitpacked():
    assert available_backends() == ("python", "numpy", "bitpacked")


def test_default_backend_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "python")
    assert default_backend_name() == "python"
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    assert default_backend_name() == "numpy"
    monkeypatch.setenv("REPRO_BACKEND", "bitpacked")
    assert default_backend_name() == "bitpacked"
    monkeypatch.setenv("REPRO_BACKEND", "fortran")
    with pytest.raises(ValueError, match="REPRO_BACKEND"):
        default_backend_name()
    monkeypatch.delenv("REPRO_BACKEND")
    assert default_backend_name() == "numpy"


def test_get_backend_caches_per_table_and_name():
    table = Table([(0, 1), (1, 0)])
    first = get_backend(table, "numpy")
    assert get_backend(table, "numpy") is first
    assert get_backend(table, "python") is not first
    assert get_backend(table, "bitpacked") is not first
    # an instance already bound to the table passes through unchanged
    assert get_backend(table, first) is first
    # a foreign instance is re-resolved by name onto the new table
    other = Table([(5, 5), (6, 6)])
    rebound = get_backend(other, first)
    assert rebound is not first and rebound.table is other


def test_make_backend_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown backend"):
        make_backend(Table([(0,)]), "fortran")
