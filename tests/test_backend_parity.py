"""Property-based parity: NumpyBackend must be bit-identical to PythonBackend.

The pure-Python backend is the reference oracle — its primitives are the
row-level functions in :mod:`repro.core.distance` applied verbatim.  The
numpy backend re-derives every primitive from the integer-encoded table,
so this suite drives both with the same generated tables (random values,
suppressed cells, mixed types, degenerate shapes) and requires exact
agreement, including Python types (plain ``int``, plain ``list``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import STAR
from repro.core.backend import (
    EncodedTable,
    NumpyBackend,
    PythonBackend,
    available_backends,
    default_backend_name,
    get_backend,
    make_backend,
)
from repro.core.distance import pairwise_distance_matrix
from repro.core.table import Table

pytestmark = pytest.mark.skipif(
    "numpy" not in available_backends(),
    reason="numpy backend not available",
)

# -- table strategies ---------------------------------------------------

_VALUES = st.one_of(
    st.integers(0, 3),
    st.sampled_from(["a", "b", STAR]),
)


@st.composite
def tables(draw, min_rows: int = 0, max_rows: int = 8) -> Table:
    m = draw(st.integers(0, 5))
    n = draw(st.integers(min_rows, max_rows))
    rows = [
        tuple(draw(_VALUES) for _ in range(m))
        for _ in range(n)
    ]
    return Table(rows)


@st.composite
def tables_with_group(draw) -> tuple[Table, frozenset[int]]:
    table = draw(tables(min_rows=1))
    size = draw(st.integers(1, table.n_rows))
    group = draw(
        st.sets(
            st.integers(0, table.n_rows - 1), min_size=size, max_size=size
        )
    )
    return table, frozenset(group)


def backends(table: Table) -> tuple[PythonBackend, NumpyBackend]:
    return make_backend(table, "python"), make_backend(table, "numpy")


# -- primitive parity ---------------------------------------------------


@given(tables())
@settings(max_examples=60, deadline=None)
def test_distance_matrix_parity(table):
    py, npb = backends(table)
    py_matrix = py.distance_matrix()
    np_matrix = npb.distance_matrix()
    assert np_matrix == py_matrix
    assert np_matrix == pairwise_distance_matrix(table)
    for row in np_matrix:
        assert type(row) is list
        assert all(type(value) is int for value in row)


@given(tables(min_rows=2))
@settings(max_examples=40, deadline=None)
def test_pointwise_distance_parity(table):
    py, npb = backends(table)
    for i in range(table.n_rows):
        for j in range(table.n_rows):
            d = npb.distance(i, j)
            assert type(d) is int
            assert d == py.distance(i, j)


@given(tables_with_group())
@settings(max_examples=80, deadline=None)
def test_group_query_parity(table_and_group):
    table, group = table_and_group
    py, npb = backends(table)
    assert npb.diameter(group) == py.diameter(group)
    assert npb.disagreeing_coordinates(group) == py.disagreeing_coordinates(
        group
    )
    assert npb.anon_cost(group) == py.anon_cost(group)
    assert npb.group_image(group) == py.group_image(group)
    center = min(group)
    assert npb.radius_from(center, group) == py.radius_from(center, group)


@given(tables_with_group())
@settings(max_examples=60, deadline=None)
def test_group_stats_parity(table_and_group):
    """Incremental stats agree with from-scratch queries on both backends."""
    table, group = table_and_group
    for backend in backends(table):
        stats = backend.group_stats(group)
        assert stats.cost == backend.anon_cost(group)
        assert stats.n_disagreeing == len(
            backend.disagreeing_coordinates(group)
        )
        for extra in range(table.n_rows):
            if extra in group:
                assert stats.cost_if_remove(extra) == backend.anon_cost(
                    group - {extra}
                )
            else:
                assert stats.cost_if_add(extra) == backend.anon_cost(
                    group | {extra}
                )
        out = min(group)
        for into in range(table.n_rows):
            if into not in group:
                assert stats.cost_if_swap(out, into) == backend.anon_cost(
                    (group - {out}) | {into}
                )
        # what-if queries must not have mutated the tracker
        assert stats.members == group
        assert stats.cost == backend.anon_cost(group)


def test_degenerate_shapes():
    for rows in ([], [()], [(), ()], [(1,)], [(STAR, STAR)]):
        table = Table(rows)
        py, npb = backends(table)
        assert npb.distance_matrix() == py.distance_matrix()
        if rows:
            full = frozenset(range(len(rows)))
            assert npb.diameter(full) == py.diameter(full)
            assert npb.group_image(full) == py.group_image(full)


# -- encoding -----------------------------------------------------------


def test_encoded_table_roundtrip():
    table = Table([(1, "x", STAR), (1, "y", 2.5), (3, "x", STAR)])
    encoded = EncodedTable(table)
    assert encoded.n_rows == 3 and encoded.degree == 3
    for i, row in enumerate(table.rows):
        for j, value in enumerate(row):
            assert encoded.decode(j, int(encoded.codes[i, j])) == value


def test_encoded_table_star_is_ordinary_symbol():
    """STAR equals only itself, so starred tables stay on the fast path."""
    table = Table([(STAR, 0), (STAR, 1), (0, 0)])
    py, npb = backends(table)
    assert npb.distance(0, 1) == py.distance(0, 1) == 1
    assert npb.distance(0, 2) == py.distance(0, 2) == 1
    assert npb.distance_matrix() == py.distance_matrix()


def test_encoded_table_packs_narrow_dtypes():
    small = EncodedTable(Table([(0, 1), (2, 3)]))
    assert small.codes.dtype == np.uint8
    # codes count distinct values per column: >256 of them need uint16
    tall = EncodedTable(Table([(i,) for i in range(300)]))
    assert tall.codes.dtype == np.uint16


# -- selection and caching ----------------------------------------------


def test_default_backend_honours_env(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "python")
    assert default_backend_name() == "python"
    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    assert default_backend_name() == "numpy"
    monkeypatch.setenv("REPRO_BACKEND", "fortran")
    with pytest.raises(ValueError, match="REPRO_BACKEND"):
        default_backend_name()
    monkeypatch.delenv("REPRO_BACKEND")
    assert default_backend_name() == "numpy"


def test_get_backend_caches_per_table_and_name():
    table = Table([(0, 1), (1, 0)])
    first = get_backend(table, "numpy")
    assert get_backend(table, "numpy") is first
    assert get_backend(table, "python") is not first
    # an instance already bound to the table passes through unchanged
    assert get_backend(table, first) is first
    # a foreign instance is re-resolved by name onto the new table
    other = Table([(5, 5), (6, 6)])
    rebound = get_backend(other, first)
    assert rebound is not first and rebound.table is other


def test_make_backend_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown backend"):
        make_backend(Table([(0,)]), "fortran")
