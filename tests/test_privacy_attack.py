"""The projection/intersection attack harness and its CLI surface.

Covers the adversary model (auxiliary-column linkage with majority-vote
sensitive inference), the schema regressions that motivated it — the
l-diversity release must come back with the sensitive column attached —
and the ``kanon risk --sensitive`` / ``kanon attack`` command paths.
"""

import json

import pytest

from repro.cli import main
from repro.core.alphabet import STAR
from repro.core.table import Table
from repro.privacy.attack import AttackReport, projection_attack
from repro.privacy.ldiversity import LDiverseAnonymizer
from repro.privacy.risk import journalist_risk
from repro.privacy.tcloseness import TCloseAnonymizer


def clinic_table() -> Table:
    return Table(
        [
            (34, "02139", "flu"),
            (34, "02139", "cold"),
            (47, "02141", "flu"),
            (47, "02141", "hep"),
        ],
        attributes=["age", "zip", "diagnosis"],
    )


class TestProjectionAttack:
    def test_raw_release_reidentifies_everyone(self):
        table = Table(
            [(1, "a", "x"), (2, "b", "y"), (3, "c", "z")],
            attributes=["age", "zip", "diag"],
        )
        report = projection_attack(table, table, ["age", "zip"],
                                   sensitive="diag")
        assert report.targets == 3
        assert report.unique == 3
        assert report.fraction_unique == 1.0
        assert report.min_match == 1
        assert report.inference_accuracy == 1.0

    def test_suppressed_release_resists(self):
        original = clinic_table()
        released = Table(
            [
                (34, STAR, "flu"),
                (34, STAR, "cold"),
                (47, STAR, "flu"),
                (47, STAR, "hep"),
            ],
            attributes=original.attributes,
        )
        report = projection_attack(released, original, ["age", "zip"],
                                   sensitive="diagnosis")
        assert report.unique == 0
        assert report.min_match == 2
        assert report.mean_match == 2.0

    def test_columns_by_index_match_columns_by_name(self):
        original = clinic_table()
        by_name = projection_attack(original, original, ["age", "zip"],
                                    sensitive="diagnosis")
        by_index = projection_attack(original, original, [0, 1],
                                     sensitive=2)
        assert by_name == by_index

    def test_inference_is_majority_vote_within_match_set(self):
        original = Table(
            [(1, "flu"), (1, "flu"), (1, "cold")],
            attributes=["zip", "diag"],
        )
        released = Table(
            [(1, "flu"), (1, "flu"), (1, "cold")],
            attributes=["zip", "diag"],
        )
        report = projection_attack(released, original, ["zip"],
                                   sensitive="diag")
        # every target's match set is all three rows; the vote is "flu"
        assert report.inference_correct == 2
        assert report.inference_accuracy == pytest.approx(2 / 3)

    def test_without_sensitive_no_inference_is_reported(self):
        table = clinic_table()
        report = projection_attack(table, table, ["age", "zip"])
        assert report.inference_correct == 0
        assert report.inference_accuracy == 0.0

    def test_validation(self):
        table = clinic_table()
        with pytest.raises(ValueError):
            projection_attack(table, table.project([0, 1]), ["age"])
        with pytest.raises(ValueError):
            projection_attack(table, table, [])
        with pytest.raises(ValueError):
            projection_attack(table, table, ["age", "age"])
        with pytest.raises(ValueError):  # sensitive can't be auxiliary
            projection_attack(table, table, ["age", "diagnosis"],
                              sensitive="diagnosis")

    def test_empty_tables(self):
        empty = Table([], attributes=["a", "b"])
        report = projection_attack(empty, empty, ["a"])
        assert report == AttackReport(
            targets=0, unique=0, fraction_unique=0.0, min_match=0,
            mean_match=0.0, inference_correct=0, inference_accuracy=0.0,
        )

    def test_as_dict_round_trips(self):
        table = clinic_table()
        report = projection_attack(table, table, ["age"])
        assert report.as_dict()["targets"] == table.n_rows
        json.dumps(report.as_dict())  # JSON-ready


class TestReleaseSchemaRegression:
    """The l-diversity release lost its sensitive column (degree m-1);
    both entry points must return a same-schema table."""

    def test_anonymize_returns_full_schema(self):
        table = clinic_table()
        result = LDiverseAnonymizer(2).anonymize(table, 2)
        assert result.anonymized.degree == table.degree
        assert result.anonymized.attributes == table.attributes
        assert result.anonymized.column("diagnosis") == table.column(
            "diagnosis"
        )

    def test_anonymize_with_sensitive_keeps_identifier_schema(self):
        table = clinic_table()
        identifiers = table.project(["age", "zip"])
        result = LDiverseAnonymizer(2).anonymize_with_sensitive(
            identifiers, 2, table.column("diagnosis")
        )
        assert result.anonymized.degree == identifiers.degree

    def test_tclose_anonymize_returns_full_schema(self):
        table = clinic_table()
        result = TCloseAnonymizer(0.6).anonymize(table, 2)
        assert result.anonymized.degree == table.degree
        assert result.anonymized.attributes == table.attributes


class TestJournalistStarRegression:
    def test_starred_population_row_raises(self):
        released = Table([(1, 2)])
        population = Table([(1, 2), (STAR, 2)])
        with pytest.raises(ValueError, match="star-free"):
            journalist_risk(released, population)


@pytest.fixture
def clinic_csv(tmp_path):
    path = tmp_path / "clinic.csv"
    path.write_text(
        "age,zip,diagnosis\n"
        "34,02139,flu\n34,02139,cold\n47,02141,flu\n47,02141,hep\n"
    )
    return path


class TestRiskSensitiveFlag:
    def test_sensitive_column_projected_out(self, clinic_csv, capsys):
        """Without --sensitive the diagnosis column makes every row
        unique (max risk 1.0); with it risk reflects the QI classes."""
        assert main(["risk", str(clinic_csv)]) == 0
        naive = capsys.readouterr().out
        assert "max prosecutor risk: 1.0000" in naive
        assert main(["risk", str(clinic_csv), "--sensitive",
                     "diagnosis"]) == 0
        informed = capsys.readouterr().out
        assert "max prosecutor risk: 0.5000" in informed

    def test_unknown_sensitive_column_exits(self, clinic_csv, capsys):
        assert main(["risk", str(clinic_csv), "--sensitive", "nope"]) == 2


class TestAttackCommand:
    def test_human_output(self, clinic_csv, tmp_path, capsys):
        out = tmp_path / "released.csv"
        assert main(["anonymize", str(clinic_csv), "-k", "2",
                     "--ldiv", "2", "-o", str(out)]) == 0
        assert main(["attack", str(clinic_csv), str(out),
                     "--aux", "age,zip", "--sensitive", "diagnosis"]) == 0
        text = capsys.readouterr().out
        assert "uniquely re-identified: 0" in text
        assert "inference accuracy" in text

    def test_json_output(self, clinic_csv, capsys):
        assert main(["attack", str(clinic_csv), str(clinic_csv),
                     "--aux", "age,zip", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["targets"] == 4
        assert report["unique"] == 0  # duplicate QI rows are never unique

    def test_headerless_indices(self, tmp_path, capsys):
        path = tmp_path / "plain.csv"
        path.write_text("1,a,x\n2,b,y\n")
        assert main(["attack", str(path), str(path), "--no-header",
                     "--aux", "0,1", "--sensitive", "2", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["fraction_unique"] == 1.0
        assert report["inference_accuracy"] == 1.0
