"""Tests for the hypergraph perfect-matching solver."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardness.generators import (
    matchless_hypergraph,
    planted_matching_hypergraph,
    random_hypergraph,
)
from repro.hardness.hypergraph import Hypergraph
from repro.hardness.matching import (
    find_perfect_matching,
    greedy_matching,
    has_perfect_matching,
    is_perfect_matching,
)


class TestIsPerfectMatching:
    def test_accepts_exact_cover(self):
        h = Hypergraph(6, [{0, 1, 2}, {3, 4, 5}, {0, 3, 4}])
        assert is_perfect_matching(h, [0, 1])

    def test_rejects_overlap(self):
        h = Hypergraph(6, [{0, 1, 2}, {2, 3, 4}])
        assert not is_perfect_matching(h, [0, 1])

    def test_rejects_undercover(self):
        h = Hypergraph(6, [{0, 1, 2}])
        assert not is_perfect_matching(h, [0])

    def test_empty_graph(self):
        assert is_perfect_matching(Hypergraph(0, []), [])


class TestFindPerfectMatching:
    def test_docstring_instance(self):
        h = Hypergraph(6, [{0, 1, 2}, {1, 2, 3}, {3, 4, 5}])
        assert find_perfect_matching(h) == [0, 2]

    def test_needs_backtracking(self):
        # taking {0,1,2} first is a dead end; the only solution is
        # {0,1,3} + {2,4,5}.
        h = Hypergraph(6, [{0, 1, 2}, {0, 1, 3}, {2, 4, 5}])
        matching = find_perfect_matching(h)
        assert matching is not None
        assert is_perfect_matching(h, matching)
        assert sorted(matching) == [1, 2]

    def test_no_matching(self):
        h = Hypergraph(6, [{0, 1, 2}, {0, 3, 4}, {0, 1, 5}])
        assert find_perfect_matching(h) is None
        assert not has_perfect_matching(h)

    def test_isolated_vertex_fast_path(self):
        h = Hypergraph(4, [{0, 1, 2}])
        assert find_perfect_matching(h) is None

    def test_empty_graph(self):
        assert find_perfect_matching(Hypergraph(0, [])) == []

    def test_indivisible_vertex_count(self):
        h = Hypergraph(4, [{0, 1, 2}, {1, 2, 3}, {0, 2, 3}, {0, 1, 3}])
        assert find_perfect_matching(h) is None

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 4), st.integers(2, 4))
    def test_planted_instances_always_found(self, seed, n_groups, k):
        h, planted = planted_matching_hypergraph(
            n_groups, k, extra_edges=3, seed=seed
        )
        assert is_perfect_matching(h, planted)
        found = find_perfect_matching(h)
        assert found is not None
        assert is_perfect_matching(h, found)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 4))
    def test_matchless_instances_never_found(self, seed, n_groups):
        h = matchless_hypergraph(max(2, n_groups), 3, n_edges=8, seed=seed)
        assert find_perfect_matching(h) is None

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_agrees_with_exhaustive_search(self, seed):
        from itertools import combinations

        h = random_hypergraph(6, 6, 3, seed=seed)
        exhaustive = any(
            is_perfect_matching(h, combo)
            for r in range(3)
            for combo in combinations(range(h.n_edges), r)
        )
        assert has_perfect_matching(h) == exhaustive


class TestGreedyMatching:
    def test_maximal(self):
        h = Hypergraph(6, [{0, 1, 2}, {1, 2, 3}, {3, 4, 5}])
        chosen = greedy_matching(h)
        covered = set().union(*(h.edge(j) for j in chosen))
        for j, edge in enumerate(h.edges):
            assert j in chosen or (edge & covered)

    def test_greedy_can_miss_perfect(self):
        # greedy takes {0,1,2} by index and strands vertices 3..5
        h = Hypergraph(6, [{0, 1, 2}, {0, 1, 3}, {2, 4, 5}])
        greedy = greedy_matching(h)
        assert not is_perfect_matching(h, greedy)
        assert has_perfect_matching(h)
