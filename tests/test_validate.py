"""Tests for the release validator and its CLI command."""

import pytest

from repro import CenterCoverAnonymizer, STAR, Table
from repro.cli import main
from repro.io import write_csv
from repro.validate import validate_release

from .conftest import random_table


@pytest.fixture
def pair():
    import numpy as np

    original = random_table(np.random.default_rng(0), 12, 3, 3)
    released = CenterCoverAnonymizer().anonymize(original, 3).anonymized
    return original, released


class TestValidateRelease:
    def test_good_release_passes(self, pair):
        original, released = pair
        report = validate_release(original, released, 3)
        assert report.ok
        assert report.is_suppression
        assert report.anonymity >= 3
        assert report.max_risk <= 1 / 3 + 1e-9
        assert "RELEASE OK" in report.summary()

    def test_underanonymized_release_fails(self, pair):
        original, _ = pair
        report = validate_release(original, original, 3)
        assert not report.ok
        assert any("not 3-anonymous" in p for p in report.problems)
        assert "DO NOT RELEASE" in report.summary()

    def test_tampered_values_detected(self, pair):
        original, released = pair
        rows = list(released.rows)
        tampered_cell = None
        for i, row in enumerate(rows):
            for j, value in enumerate(row):
                if value is not STAR:
                    tampered_cell = (i, j)
                    break
            if tampered_cell:
                break
        i, j = tampered_cell
        rows[i] = rows[i][:j] + (999,) + rows[i][j + 1:]
        tampered = released.with_rows(rows)
        report = validate_release(original, tampered, 3)
        assert not report.is_suppression
        assert any("not a pure suppression" in p for p in report.problems)

    def test_shape_mismatch(self, pair):
        original, _ = pair
        report = validate_release(original, Table([(1,)]), 3)
        assert not report.ok
        assert any("shape mismatch" in p for p in report.problems)

    def test_renamed_attributes_flagged(self, pair):
        original, released = pair
        renamed = Table(released.rows, attributes=["x", "y", "z"])
        report = validate_release(original, renamed, 3)
        assert any("attribute names" in p for p in report.problems)

    def test_claiming_higher_k_than_delivered(self, pair):
        original, released = pair
        report = validate_release(original, released, 7)
        # the release is 3-anonymous; claiming 7 usually fails
        if report.anonymity < 7:
            assert not report.ok

    def test_invalid_k(self, pair):
        original, released = pair
        with pytest.raises(ValueError):
            validate_release(original, released, 0)

    def test_empty_tables(self):
        empty = Table([], attributes=["a"])
        assert validate_release(empty, empty, 3).ok


class TestCliValidate:
    def test_ok_exit_code(self, tmp_path, pair, capsys):
        original, released = pair
        orig_str = original.with_rows(
            [tuple(str(v) for v in row) for row in original.rows]
        )
        rel_str = released.with_rows(
            [tuple(str(v) if v is not STAR else STAR for v in row)
             for row in released.rows]
        )
        a, b = tmp_path / "orig.csv", tmp_path / "rel.csv"
        write_csv(orig_str, a)
        write_csv(rel_str, b)
        assert main(["validate", str(a), str(b), "-k", "3"]) == 0
        assert "RELEASE OK" in capsys.readouterr().out

    def test_failing_exit_code(self, tmp_path, capsys):
        path = tmp_path / "same.csv"
        path.write_text("a,b\n1,2\n3,4\n")
        code = main(["validate", str(path), str(path), "-k", "2"])
        assert code == 1
        assert "DO NOT RELEASE" in capsys.readouterr().out
