"""Tests for the Datafly-style attribute suppressor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.datafly import DataflyAnonymizer, greedy_attribute_suppression
from repro.algorithms.exact import optimal_attribute_suppression
from repro.core.anonymity import is_k_anonymous
from repro.core.table import Table

from .conftest import random_table


class TestGreedyAttributeSuppression:
    def test_already_anonymous(self):
        t = Table([(1, 2)] * 4)
        assert greedy_attribute_suppression(t, 4) == frozenset()

    def test_kills_most_diverse_column_first(self):
        t = Table([(1, i) for i in range(4)])
        suppressed = greedy_attribute_suppression(t, 4)
        assert suppressed == frozenset({1})

    def test_result_k_anonymizes_projection(self):
        import numpy as np

        t = random_table(np.random.default_rng(0), 12, 4, 2)
        suppressed = greedy_attribute_suppression(t, 3)
        kept = [j for j in range(4) if j not in suppressed]
        if kept:
            assert is_k_anonymous(t.project(kept), 3)

    def test_never_beats_exact(self):
        import numpy as np

        for seed in range(6):
            t = random_table(np.random.default_rng(seed), 9, 4, 2)
            greedy = len(greedy_attribute_suppression(t, 3))
            exact, _ = optimal_attribute_suppression(t, 3)
            assert greedy >= exact

    def test_errors(self):
        with pytest.raises(ValueError):
            greedy_attribute_suppression(Table([(1,)]), 0)
        with pytest.raises(ValueError):
            greedy_attribute_suppression(Table([(1,)]), 2)


class TestDataflyAnonymizer:
    def test_valid_output(self):
        import numpy as np

        t = random_table(np.random.default_rng(0), 15, 4, 3)
        result = DataflyAnonymizer().anonymize(t, 3)
        assert result.is_valid(t)

    def test_outlier_rows_fully_starred(self):
        # 5 identical rows + 1 outlier: cheapest Datafly move is to star
        # the outlier row and absorb enough rows to fill its class.
        t = Table([(1, 1, 1)] * 5 + [(2, 2, 2)])
        result = DataflyAnonymizer().anonymize(t, 2)
        assert result.is_valid(t)
        # outlier row starred (3) + one absorbed row to fill its class (3)
        assert result.stars == 6

    def test_extras(self):
        import numpy as np

        t = random_table(np.random.default_rng(1), 12, 3, 4)
        result = DataflyAnonymizer().anonymize(t, 3)
        assert "suppressed_columns" in result.extras
        assert "suppressed_rows" in result.extras

    def test_no_partition(self):
        t = Table([(1, 1)] * 4)
        result = DataflyAnonymizer().anonymize(t, 2)
        assert result.partition is None

    def test_empty_and_infeasible(self):
        from repro.algorithms.base import InfeasibleAnonymizationError

        assert DataflyAnonymizer().anonymize(Table([]), 2).stars == 0
        with pytest.raises(InfeasibleAnonymizationError):
            DataflyAnonymizer().anonymize(Table([(1,)]), 2)

    def test_max_outliers_zero_forces_columns(self):
        import numpy as np

        t = random_table(np.random.default_rng(2), 10, 3, 2)
        result = DataflyAnonymizer(max_outliers=0).anonymize(t, 2)
        assert result.is_valid(t)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 4))
    def test_always_valid(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 25))
        m = int(rng.integers(1, 5))
        t = random_table(rng, n, m, 3)
        result = DataflyAnonymizer().anonymize(t, k)
        assert result.is_valid(t)

    def test_all_distinct_worst_case_terminates(self):
        """Everything distinct at high k: Datafly must converge (possibly
        to the all-starred table)."""
        t = Table([(i, i + 1) for i in range(6)])
        result = DataflyAnonymizer().anonymize(t, 6)
        assert result.is_valid(t)
