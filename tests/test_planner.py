"""Tests for the capability registry metadata and the auto planner."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import planner, registry
from repro.algorithms.base import Anonymizer
from repro.core.anonymity import is_k_anonymous
from repro.core.table import Table
from repro.experiments import ratio_experiment, resolve_algorithm
from repro.planner import (
    FALLBACK_ALGORITHM,
    TIER_APPROX,
    TIER_EXACT,
    TIER_FPT,
    InstanceFeatures,
    PlannedAnonymizer,
    plan,
    plan_features,
    tier_of,
)
from tests.conftest import random_table


class TestCapabilities:
    """Every registration exposes planner-consumable metadata."""

    def test_every_algorithm_answers_capability_queries(self):
        for info in registry.all_algorithms():
            applicable = info.is_applicable(50, 4, 3, 3)
            assert isinstance(applicable, bool)
            seconds = info.estimated_seconds(50, 4, 3, 3)
            assert seconds >= 0.0
            assert info.estimated_ops(50, 4, 3, 3) == pytest.approx(
                seconds * registry.CALIBRATED_OPS_PER_SECOND
            )

    def test_exact_default_regime_is_bounded(self):
        info = registry.get("exact_dp")
        assert info.is_applicable(12, 4, 3, 3)
        assert not info.is_applicable(100, 4, 3, 3)

    def test_polynomial_algorithms_stay_applicable_at_scale(self):
        assert registry.get("center_cover").is_applicable(5000, 12, 10, 5)

    def test_cost_models_grow_with_n(self):
        for name in ("exact_dp", "center_cover", "mondrian"):
            info = registry.get(name)
            assert (info.estimated_ops(64, 4, 3, 3)
                    > info.estimated_ops(16, 4, 3, 3))

    def test_parameterized_reserved_for_exact_solvers(self):
        with pytest.raises(ValueError, match="parameterized"):
            @registry.register(
                "bogus_parameterized_approx", kind="approx",
                summary="invalid", parameterized=True,
            )
            class Bogus(Anonymizer):  # pragma: no cover - never registered
                name = "bogus_parameterized_approx"

        assert "bogus_parameterized_approx" not in registry.names()

    def test_auto_is_not_a_registry_entry(self):
        with pytest.raises(KeyError):
            registry.get("auto")
        assert registry.proven_bound(PlannedAnonymizer(), 3, 4) is None


class TestPlanDecisions:
    def test_tiny_instance_gets_an_exact_tier(self):
        decision = plan_features(InstanceFeatures(n=10, m=4, sigma=3, k=2))
        chosen = registry.get(decision.algorithm)
        assert tier_of(chosen) == TIER_EXACT
        assert decision.algorithm in decision.reason or "tier" in decision.reason

    def test_narrow_instance_gets_the_fpt_tier(self):
        decision = plan_features(InstanceFeatures(n=80, m=3, sigma=2, k=3))
        assert tier_of(registry.get(decision.algorithm)) == TIER_FPT
        assert decision.algorithm == "fpt_suppression"

    def test_wide_instance_falls_to_the_proven_approximation(self):
        decision = plan_features(InstanceFeatures(n=150, m=12, sigma=5, k=3))
        chosen = registry.get(decision.algorithm)
        assert tier_of(chosen) == TIER_APPROX
        assert chosen.bound is not None

    def test_tight_budget_forces_the_fallback(self):
        decision = plan_features(
            InstanceFeatures(n=10, m=4, sigma=3, k=2), budget=1e-12,
        )
        assert decision.algorithm == FALLBACK_ALGORITHM
        assert "falling back" in decision.reason

    def test_candidates_cover_the_whole_registry(self):
        decision = plan(Table([(0, 0), (0, 1), (1, 0), (1, 1)]), 2)
        assert {c.name for c in decision.candidates} == set(registry.names())
        selectable = [c.selectable for c in decision.candidates]
        # sorted selectable-first: no selectable entry after a rejected one
        assert selectable == sorted(selectable, reverse=True)

    def test_decision_serializes(self):
        decision = plan(Table([(0, 0), (0, 1)] * 2), 2)
        payload = json.loads(json.dumps(decision.to_dict()))
        assert payload["algorithm"] == decision.algorithm
        assert payload["features"]["n"] == 4
        assert len(payload["candidates"]) == len(decision.candidates)


class TestPlannedAnonymizer:
    def test_result_carries_the_plan(self):
        rng = np.random.default_rng(0)
        table = random_table(rng, 12, 3, 2)
        result = PlannedAnonymizer().anonymize(table, 2)
        assert result.is_valid(table)
        assert is_k_anonymous(result.anonymized, 2)
        plan_dict = result.extras["plan"]
        assert plan_dict["algorithm"] == result.algorithm
        assert "fallback" not in plan_dict

    def test_trace_records_the_plan(self):
        table = Table([(0, 0), (0, 1), (1, 0), (1, 1)] * 2)
        result = PlannedAnonymizer().anonymize(table, 2, trace=True)
        trace = result.extras["trace"]
        assert trace["plan"]["algorithm"] == result.algorithm
        assert trace["algorithm"] == result.algorithm

    def test_matches_the_explicit_algorithm(self):
        rng = np.random.default_rng(5)
        table = random_table(rng, 10, 3, 2)
        auto = PlannedAnonymizer().anonymize(table, 2)
        explicit = registry.create(auto.algorithm).anonymize(table, 2)
        assert auto.stars == explicit.stars

    def test_untraced_runs_have_no_trace_key(self):
        table = Table([(0, 0), (0, 1)] * 2)
        result = PlannedAnonymizer().anonymize(table, 2)
        assert "trace" not in result.extras


class TestExperimentsAuto:
    def test_resolve_algorithm_accepts_names_and_auto(self):
        assert resolve_algorithm("center").name == "center_cover"
        assert isinstance(resolve_algorithm("auto"), PlannedAnonymizer)
        inner = registry.create("mondrian")
        assert resolve_algorithm(inner) is inner
        with pytest.raises(KeyError):
            resolve_algorithm("no_such_algorithm")

    def test_auto_ratio_experiment_has_no_bound(self):
        exp = ratio_experiment("auto", k=2, n=8, m=3, sigma=2, trials=2)
        assert exp.algorithm == "auto"
        assert not exp.has_bound
        with pytest.raises(ValueError, match="no proven approximation bound"):
            exp.within_bound

    def test_fpt_ratio_experiment_is_within_its_exact_bound(self):
        exp = ratio_experiment("fpt_suppression", k=2, n=8, m=3, sigma=2,
                               trials=3)
        assert exp.bound == 1.0
        assert exp.has_bound
        assert exp.within_bound
        assert exp.max_ratio == 1.0


@pytest.fixture(scope="class")
def server():
    from repro.service import AnonymizationService
    from repro.service.server import ServiceServer

    with ServiceServer(
        AnonymizationService(max_entries=64, batch_window=0.002)
    ) as running:
        yield running


@pytest.mark.usefixtures("server")
class TestServiceAuto:
    def test_auto_resolves_and_shares_the_cache(self, server):
        from repro.service import ServiceClient

        table = Table([(0, 0), (0, 1), (1, 0), (1, 1)] * 2)
        with ServiceClient(*server.address) as client:
            first = client.anonymize(table, 2, algorithm="auto")
            assert first["cache"] == "miss"
            resolved = first["algorithm"]
            assert resolved != "auto"
            assert first["plan"]["algorithm"] == resolved

            # the cache entry is keyed by the resolved algorithm, so an
            # explicit request for it is a hit — and carries no plan
            explicit = client.anonymize(table, 2, algorithm=resolved)
            assert explicit["cache"] == "hit"
            assert "plan" not in explicit

            # a second auto request re-plans, hits, and echoes its plan
            again = client.anonymize(table, 2, algorithm="auto")
            assert again["cache"] == "hit"
            assert again["plan"]["algorithm"] == resolved

            assert client.stats()["planned"] >= 2


class TestCLI:
    def test_algorithms_json_is_machine_readable(self, capsys):
        from repro.cli import main

        assert main(["algorithms", "--json", "-n", "30", "-k", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {record["name"] for record in payload["algorithms"]}
        assert names == set(registry.names())
        for record in payload["algorithms"]:
            assert isinstance(record["applicable"], bool)
            assert record["estimated_seconds"] >= 0.0
            assert record["tier"] == tier_of(registry.get(record["name"]))

    def test_algorithms_text_capability_columns(self, capsys):
        from repro.cli import main

        assert main(["algorithms", "-n", "100", "--sigma", "2",
                     "-k", "3", "-m", "3"]) == 0
        out = capsys.readouterr().out
        assert "applicable" in out
        assert "est_s" in out
        assert "fpt_suppression" in out

    def test_anonymize_auto_prints_the_plan(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n1,3\n2,2\n2,3\n", encoding="utf-8")
        out = tmp_path / "out.csv"
        code = main(["anonymize", str(path), "-k", "2",
                     "--algorithm", "auto", "-o", str(out)])
        captured = capsys.readouterr()
        assert code == 0
        assert out.exists()
        assert "plan: " in captured.err


def test_tier_ladder_is_total():
    tiers = {tier_of(info) for info in registry.all_algorithms()}
    assert tiers == {planner.TIER_EXACT, planner.TIER_FPT,
                     planner.TIER_APPROX, planner.TIER_HEURISTIC}
