"""Tests for repro.core.alphabet: the STAR sentinel and Alphabet domains."""

import copy
import pickle

import pytest

from repro.core.alphabet import STAR, Alphabet, infer_alphabets, is_suppressed
from repro.core.alphabet import _SuppressionSymbol


class TestStar:
    def test_singleton_construction(self):
        assert _SuppressionSymbol() is STAR

    def test_equality_only_with_itself(self):
        assert STAR == STAR
        assert STAR != "*"
        assert STAR != 0
        assert STAR != None  # noqa: E711 - deliberate: STAR must not equal None

    def test_repr(self):
        assert repr(STAR) == "*"

    def test_hashable_and_stable(self):
        assert hash(STAR) == hash(STAR)
        assert {STAR: 1}[STAR] == 1

    def test_copy_preserves_identity(self):
        assert copy.copy(STAR) is STAR
        assert copy.deepcopy(STAR) is STAR

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(STAR)) is STAR

    def test_is_suppressed_predicate(self):
        assert is_suppressed(STAR)
        assert not is_suppressed("*")
        assert not is_suppressed(None)

    def test_star_distinct_from_string_star_in_sets(self):
        values = {STAR, "*"}
        assert len(values) == 2


class TestAlphabet:
    def test_preserves_first_appearance_order(self):
        a = Alphabet(["c", "a", "b", "a"])
        assert a.values == ("c", "a", "b")

    def test_membership(self):
        a = Alphabet([1, 2, 3])
        assert 2 in a
        assert 4 not in a

    def test_unhashable_membership_is_false(self):
        a = Alphabet([1, 2])
        assert [1] not in a

    def test_len_counts_distinct(self):
        assert len(Alphabet("aabbc")) == 3

    def test_index(self):
        a = Alphabet(["x", "y"])
        assert a.index("y") == 1
        with pytest.raises(KeyError):
            a.index("z")

    def test_iteration(self):
        assert list(Alphabet([3, 1, 2])) == [3, 1, 2]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Alphabet([])

    def test_rejects_star(self):
        with pytest.raises(ValueError, match="suppression symbol"):
            Alphabet(["a", STAR])

    def test_equality_and_hash(self):
        assert Alphabet([1, 2]) == Alphabet([1, 2])
        assert Alphabet([1, 2]) != Alphabet([2, 1])
        assert hash(Alphabet("ab")) == hash(Alphabet("ab"))

    def test_equality_with_other_types(self):
        assert Alphabet([1]) != [1]

    def test_repr_truncates(self):
        short = repr(Alphabet([1, 2]))
        assert "1" in short and "..." not in short
        long = repr(Alphabet(range(10)))
        assert "..." in long


class TestInferAlphabets:
    def test_per_attribute_domains(self):
        alphabets = infer_alphabets([("a", 1), ("b", 1), ("a", 2)])
        assert alphabets[0].values == ("a", "b")
        assert alphabets[1].values == (1, 2)

    def test_skips_suppressed_cells(self):
        alphabets = infer_alphabets([("a", STAR), ("b", 7)])
        assert alphabets[1].values == (7,)

    def test_empty_relation_rejected(self):
        with pytest.raises(ValueError):
            infer_alphabets([])

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="same degree"):
            infer_alphabets([("a",), ("b", "c")])

    def test_all_suppressed_column_rejected(self):
        with pytest.raises(ValueError, match="no unsuppressed"):
            infer_alphabets([(STAR,), (STAR,)])
