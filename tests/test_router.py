"""The shard router: routing keys, failover, fan-out, CLI rendering.

The fleet tests run real ``ServiceServer`` shards behind a real
``RouterServer`` on loopback sockets — the same wire path as
``kanon route`` — with the background health sweep disabled
(``health_interval=0``) so membership changes only when a test causes
them; the sweep itself is tested separately with a fast interval.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.artifacts import instance_key, state_key
from repro.cli import main
from repro.core.table import Table
from repro.io import write_csv
from repro.service import (
    RouterServer,
    ServiceClient,
    ServiceError,
    ServiceServer,
    ShardRouter,
    merge_shard_stats,
)
from repro.service.router import format_address, parse_address
from repro.workloads import census_table, quasi_identifiers


def tables(count: int, rows: int = 20) -> list[Table]:
    return [
        quasi_identifiers(census_table(rows, seed=seed))
        for seed in range(count)
    ]


@pytest.fixture
def fleet():
    """Three live shards behind a live router; tears the fleet down."""
    shards = [ServiceServer(port=0) for _ in range(3)]
    addresses = [format_address(shard.start()) for shard in shards]
    router = ShardRouter(addresses, health_interval=0.0)
    front = RouterServer(router)
    front.start()
    try:
        yield shards, addresses, router, front
    finally:
        front.stop()  # shutdown fans out to every shard by design
        for shard in shards:
            shard.stop()


# ----------------------------------------------------------------------
# Transport-free: routing keys, address parsing, stats merging
# ----------------------------------------------------------------------


class TestRoutingKey:
    def setup_method(self):
        self.router = ShardRouter(["a:1", "b:2"], backend="python",
                                  health_interval=0.0)
        csv = quasi_identifiers(census_table(16, seed=0)).to_csv()
        # the wire table: exactly what a shard parses at admission
        self.table = Table.from_csv(csv)
        self.request = {
            "op": "anonymize", "csv": csv, "k": 2,
            "algorithm": "center_cover",
        }

    def test_matches_the_shards_cache_key(self):
        key = self.router.routing_key(self.request)
        assert key == instance_key(self.table, 2, "center_cover", "python")

    def test_aliases_canonicalize_to_one_key(self):
        """``center`` and ``center_cover`` must not land on two
        shards — the key is computed from the canonical name."""
        alias = self.router.routing_key(
            {**self.request, "algorithm": "center"}
        )
        assert alias == self.router.routing_key(self.request)

    def test_auto_resolves_through_the_planner(self):
        """An ``auto`` request routes to the same shard as the explicit
        request it resolves to (they share that shard's cache entry)."""
        from repro.planner import plan

        resolved = plan(self.table, 2).algorithm
        assert self.router.routing_key(
            {**self.request, "algorithm": "auto"}
        ) == self.router.routing_key(
            {**self.request, "algorithm": resolved}
        )

    def test_incremental_routes_on_state_key(self):
        """Snapshot affinity: the solve lands where its state key
        hashes, so the first ``delta`` finds the snapshot."""
        key = self.router.routing_key(
            {**self.request, "algorithm": "incremental"}
        )
        assert key == state_key(self.table, 2, "incremental", "python")

    def test_delta_routes_on_the_request_state_key(self):
        key = "ab" * 16
        assert self.router.routing_key(
            {"op": "delta", "state_key": key, "csv": "x\n1\n"}
        ) == key

    @pytest.mark.parametrize("request_", [
        {"op": "anonymize", "csv": 7, "k": 2},
        {"op": "anonymize", "k": 2},
        {"op": "anonymize", "csv": "a,b\n1,2\n", "k": "two"},
        {"op": "anonymize", "csv": "a,b\n1,2\n", "k": 2,
         "algorithm": "nope"},
        {"op": "delta", "state_key": "not hex!", "csv": "x\n1\n"},
        {"op": "frobnicate"},
    ])
    def test_unkeyable_requests_return_none(self, request_):
        assert self.router.routing_key(request_) is None


class TestAddresses:
    def test_parse_and_format(self):
        assert parse_address("h:1") == ("h", 1)
        assert parse_address(("h", 1)) == ("h", 1)
        assert format_address(("h", 1)) == "h:1"

    @pytest.mark.parametrize("bad", ["nohost", ":7683", "h:seven"])
    def test_bad_addresses_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)

    def test_router_rejects_empty_and_duplicate_fleets(self):
        with pytest.raises(ValueError):
            ShardRouter([])
        with pytest.raises(ValueError):
            ShardRouter(["a:1", "a:1"])


class TestMergeShardStats:
    def test_counters_sum_and_hit_rate_recomputes(self):
        merged = merge_shard_stats({
            "a:1": {"backend": "python", "jobs": 1, "uptime_seconds": 5.0,
                    "requests": {"anonymize": 4, "stats": 1},
                    "rejected": 1, "coalesced": 2, "planned": 1,
                    "solved_instances": 3,
                    "cache": {"hits": 2, "misses": 3, "entries": 3,
                              "max_entries": 256},
                    "batches": {"count": 2, "max_size": 2,
                                "mean_size": 1.5}},
            "b:2": {"backend": "python", "jobs": 2, "uptime_seconds": 9.0,
                    "requests": {"anonymize": 2},
                    "rejected": 0, "coalesced": 0, "planned": 0,
                    "solved_instances": 2,
                    "cache": {"hits": 0, "misses": 2, "entries": 2,
                              "max_entries": 256},
                    "batches": {"count": 4, "max_size": 3,
                                "mean_size": 1.0}},
        })
        assert merged["backend"] == "python"
        assert merged["jobs"] == 3
        assert merged["uptime_seconds"] == 9.0
        assert merged["requests"] == {"anonymize": 6, "stats": 1}
        assert merged["solved_instances"] == 5
        assert merged["cache"]["hits"] == 2
        assert merged["cache"]["misses"] == 5
        assert merged["cache"]["hit_rate"] == pytest.approx(2 / 7)
        assert merged["cache"]["entries"] == 5
        batches = merged["batches"]
        assert batches["count"] == 6 and batches["max_size"] == 3
        # size-weighted: (2*1.5 + 4*1.0) / 6
        assert batches["mean_size"] == pytest.approx(7 / 6)

    def test_mixed_backends_are_reported_not_hidden(self):
        merged = merge_shard_stats({
            "a:1": {"backend": "python"},
            "b:2": {"backend": "numpy"},
        })
        assert merged["backend"] == "numpy,python"

    def test_empty_fleet_merges_to_zeroes(self):
        merged = merge_shard_stats({})
        assert merged["solved_instances"] == 0
        assert merged["cache"]["hit_rate"] == 0.0


# ----------------------------------------------------------------------
# The live fleet
# ----------------------------------------------------------------------


class TestFleet:
    def test_disjoint_ownership_no_duplicate_solves(self, fleet):
        _, addresses, router, front = fleet
        workload = tables(6)
        with ServiceClient(*front.address) as client:
            owners = {}
            for table in workload:
                response = client.anonymize(table, 2)
                assert response["cache"] == "miss"
                assert response["shard"] in addresses
                owners[table] = response["shard"]
            for table in workload:  # warm pass: same owner, cache hit
                response = client.anonymize(table, 2)
                assert response["cache"] == "hit"
                assert response["shard"] == owners[table]
            stats = client.stats()
        assert stats["solved_instances"] == len(workload)
        per_shard = [
            shard.get("solved_instances", 0)
            for shard in stats["shards"].values()
        ]
        assert sum(per_shard) == len(workload)  # nothing solved twice
        assert stats["cache"]["misses"] == len(workload)
        assert stats["cache"]["hits"] == len(workload)
        assert stats["router"]["shards_alive"] == 3

    def test_release_matches_direct_single_shard_answer(self, fleet):
        shards, _, _, front = fleet
        table = quasi_identifiers(census_table(24, seed=9))
        with ServiceClient(*front.address) as routed_client:
            routed = routed_client.anonymize(table, 3)
        with ServiceServer(port=0) as single:
            with ServiceClient(*single.address) as direct_client:
                direct = direct_client.anonymize(table, 3)
        assert routed["csv"] == direct["csv"]
        assert routed["stars"] == direct["stars"]

    def test_failover_reroutes_and_evicts(self, fleet):
        shards, addresses, router, front = fleet
        workload = tables(4)
        with ServiceClient(*front.address) as client:
            owners = {
                table: client.anonymize(table, 2)["shard"]
                for table in workload
            }
            victim = owners[workload[0]]
            for shard, address in zip(shards, addresses):
                if address == victim:
                    shard.stop()
            response = client.anonymize(workload[0], 2)
            assert response["rerouted"] is True
            assert response["shard"] != victim
            assert response["shard"] in addresses
            # the instance was re-solved on the new owner (the dead
            # shard's cache slice died with it) — still a valid release
            assert response["cache"] == "miss"
            stats = client.stats()
        assert stats["router"]["shards_alive"] == 2
        assert stats["router"]["counters"]["evicted"] >= 1
        assert stats["router"]["shards"][victim]["alive"] is False
        assert "error" in stats["shards"][victim]

    def test_health_sweep_evicts_and_rejoins(self):
        shard = ServiceServer(port=0)
        address = format_address(shard.start())
        router = ShardRouter([address], health_interval=0.05,
                             ping_timeout=0.5)
        front = RouterServer(router)
        front.start()
        try:
            with ServiceClient(*front.address, retries=0) as client:
                assert client.ping()["router"]["shards_alive"] == 1
                port = parse_address(address)[1]
                shard.stop()
                deadline = 50
                while router.shards[address].alive and deadline:
                    asyncio.run(asyncio.sleep(0.05))
                    deadline -= 1
                assert not router.shards[address].alive
                assert client.ping()["router"]["shards_alive"] == 0
                with pytest.raises(ServiceError) as excinfo:
                    client.anonymize(tables(1)[0], 2)
                assert excinfo.value.code == "unavailable"
                # the shard comes back on the SAME port: the sweep must
                # rejoin it without a router restart
                shard = ServiceServer(port=port)
                shard.start()
                deadline = 100
                while not router.shards[address].alive and deadline:
                    asyncio.run(asyncio.sleep(0.05))
                    deadline -= 1
                assert router.shards[address].alive
                assert router.counters["rejoined"] >= 1
                assert client.anonymize(tables(1)[0], 2)["ok"]
        finally:
            front.stop()
            shard.stop()

    def test_shutdown_fans_out_to_every_shard(self, fleet):
        """Regression (PR 9 satellite): ``shutdown`` through the router
        must stop the whole fleet, not one ring owner."""
        shards, addresses, router, front = fleet
        with ServiceClient(*front.address) as client:
            report = client.shutdown()
        assert report["shards"] == {addr: "ok" for addr in addresses}
        for shard in shards:  # every shard thread actually exited
            assert shard._thread is not None
            shard._thread.join(10.0)
            assert not shard._thread.is_alive()
            shard._thread = None  # joined here; make teardown a no-op
        # ... and the router stopped itself after answering
        assert front._thread is not None
        front._thread.join(10.0)
        assert not front._thread.is_alive()
        front._thread = None

    def test_delta_affinity_and_honest_unknown_state(self, fleet):
        shards, addresses, router, front = fleet
        base = quasi_identifiers(census_table(18, seed=3))
        grown = quasi_identifiers(census_table(24, seed=3))
        delta_rows = Table(grown.rows[18:], attributes=grown.attributes)
        with ServiceClient(*front.address) as client:
            first = client.anonymize(base, 2, algorithm="incremental")
            key = first["state_key"]
            assert key
            # the snapshot's shard is the ring owner of its key, so the
            # delta lands exactly where the state lives
            assert router.ring.owner(key) == first["shard"]
            second = client.delta(key, delta_rows, k=2)
            assert second["shard"] == first["shard"]
            assert "rerouted" not in second
            # kill the owner: the delta reroutes to a shard that never
            # saw the snapshot and must say so, not silently re-solve
            for shard, address in zip(shards, addresses):
                if address == first["shard"]:
                    shard.stop()
            with pytest.raises(ServiceError) as excinfo:
                client.delta(key, delta_rows, k=2)
            assert excinfo.value.code == "unknown-state"

    def test_unroutable_request_gets_the_shards_error(self, fleet):
        _, addresses, _, front = fleet
        with ServiceClient(*front.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.anonymize(tables(1)[0], 2, algorithm="nope")
            assert excinfo.value.code == "unknown-algorithm"

    def test_ping_reports_fleet_size(self, fleet):
        _, _, _, front = fleet
        with ServiceClient(*front.address) as client:
            response = client.ping()
        assert response["router"] == {"shards_alive": 3,
                                      "shards_total": 3}


class TestClientFallbacks:
    def test_client_fails_over_to_fallback_address(self, fleet):
        _, _, _, front = fleet
        host, port = front.address
        dead = ServiceServer(port=0)
        dead_address = format_address(dead.start())
        dead.stop()  # now guaranteed closed
        client = ServiceClient(
            *parse_address(dead_address),
            fallbacks=[f"{host}:{port}"], retries=2,
        )
        with client:
            response = client.anonymize(tables(1)[0], 2)
        assert response["ok"]
        assert client.counters["failovers"] >= 1
        assert (client.host, client.port) == (host, port)  # sticky

    def test_bad_fallback_address_rejected(self):
        with pytest.raises(ValueError):
            ServiceClient(fallbacks=["nonsense"])


# ----------------------------------------------------------------------
# CLI: kanon route / kanon submit against a router
# ----------------------------------------------------------------------


class TestRouteCli:
    def test_submit_stats_ping_shutdown_render_the_fleet(
        self, fleet, tmp_path, capsys
    ):
        shards, addresses, _, front = fleet
        host, port = front.address
        flags = ["--host", host, "--port", str(port)]
        path = tmp_path / "in.csv"
        write_csv(tables(1)[0], path)

        assert main(["submit", "--ping"] + flags) == 0
        assert "router 3/3 shards alive" in capsys.readouterr().out

        assert main(["submit", str(path), "-k", "2"] + flags) == 0
        err = capsys.readouterr().err
        assert "shard: " in err and "cache: miss" in err

        assert main(["submit", "--stats"] + flags) == 0
        out = capsys.readouterr().out
        assert "router: 3/3 shards alive" in out
        shard_lines = [line for line in out.splitlines()
                       if line.startswith("shard ")]
        assert len(shard_lines) == 3
        assert sum("1 solved instances" in line
                   for line in shard_lines) == 1

        assert main(["submit", "--shutdown"] + flags) == 0
        err = capsys.readouterr().err
        assert "server stopped" in err
        assert all(f"shard {addr}: ok" in err for addr in addresses)
        for shard in shards:
            assert shard._thread is not None
            shard._thread.join(10.0)
            shard._thread = None
        assert front._thread is not None
        front._thread.join(10.0)
        front._thread = None

    def test_route_rejects_a_bad_shard_list(self, capsys):
        assert main(["route", "--shard", "nonsense"]) == 2
        assert "host:port" in capsys.readouterr().err
