"""Tests for repro.core.metrics utility measures."""

import pytest

from repro.core.alphabet import STAR
from repro.core.metrics import (
    average_class_size_ratio,
    discernibility,
    metric_report,
    precision,
    suppression_ratio,
)
from repro.core.table import Table


@pytest.fixture
def half_starred():
    return Table([(1, STAR), (1, STAR)])


class TestSuppressionRatio:
    def test_half(self, half_starred):
        assert suppression_ratio(half_starred) == 0.5

    def test_empty_table(self):
        assert suppression_ratio(Table([])) == 0.0

    def test_clean_table(self):
        assert suppression_ratio(Table([(1, 2)])) == 0.0

    def test_fully_starred(self):
        assert suppression_ratio(Table([(STAR, STAR)])) == 1.0


class TestPrecision:
    def test_complements_suppression(self, half_starred):
        assert precision(half_starred) == 0.5

    def test_clean_table(self):
        assert precision(Table([(1,)])) == 1.0


class TestDiscernibility:
    def test_sum_of_squared_class_sizes(self):
        t = Table([(1,), (1,), (2,)])
        assert discernibility(t) == 4 + 1

    def test_single_class(self):
        assert discernibility(Table([(1,)] * 5)) == 25

    def test_all_distinct(self):
        assert discernibility(Table([(i,) for i in range(4)])) == 4


class TestAverageClassSize:
    def test_ideal_is_one(self):
        t = Table([(1,), (1,), (2,), (2,)])
        assert average_class_size_ratio(t, 2) == 1.0

    def test_oversized_classes(self):
        t = Table([(1,)] * 6)
        assert average_class_size_ratio(t, 2) == 3.0

    def test_empty(self):
        assert average_class_size_ratio(Table([]), 2) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            average_class_size_ratio(Table([(1,)]), 0)


class TestReport:
    def test_keys_and_consistency(self, half_starred):
        report = metric_report(half_starred, 2)
        assert report["stars"] == 2
        assert report["suppression_ratio"] == 0.5
        assert report["precision"] == 0.5
        assert report["classes"] == 1
        assert report["discernibility"] == 4
        assert report["avg_class_size_ratio"] == 1.0
