"""Tests for interval count queries and the attribute BnB solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import CenterCoverAnonymizer
from repro.algorithms.exact import (
    optimal_attribute_suppression,
    optimal_attribute_suppression_branch_bound,
)
from repro.analysis import (
    IntervalCount,
    count_query,
    query_error_experiment,
)
from repro.core.alphabet import STAR
from repro.core.table import Table

from .conftest import random_table


class TestIntervalCount:
    def test_width_and_midpoint(self):
        c = IntervalCount(certain=2, possible=6)
        assert c.width == 4
        assert c.midpoint == 4.0
        assert c.contains(3)
        assert not c.contains(7)

    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalCount(certain=3, possible=2)
        with pytest.raises(ValueError):
            IntervalCount(certain=-1, possible=2)


class TestCountQuery:
    @pytest.fixture
    def released(self):
        return Table(
            [(1, STAR), (1, 2), (0, 2), (STAR, STAR)], attributes=["a", "b"]
        )

    def test_exact_on_star_free(self):
        t = Table([(1, 2), (1, 2), (0, 2)], attributes=["a", "b"])
        answer = count_query(t, {"a": 1, "b": 2})
        assert (answer.certain, answer.possible) == (2, 2)

    def test_stars_widen(self, released):
        answer = count_query(released, {"a": 1, "b": 2})
        assert answer.certain == 1  # only row (1, 2)
        assert answer.possible == 3  # plus (1, *) and (*, *)

    def test_retained_mismatch_excludes(self, released):
        answer = count_query(released, {"a": 0})
        assert answer.possible == 2  # (0, 2) and (*, *)
        assert answer.certain == 1

    def test_index_keys(self, released):
        by_name = count_query(released, {"b": 2})
        by_index = count_query(released, {1: 2})
        assert by_name == by_index

    def test_empty_predicate_counts_everything(self, released):
        answer = count_query(released, {})
        assert answer == IntervalCount(4, 4)

    def test_bad_attribute(self, released):
        with pytest.raises(KeyError):
            count_query(released, {"zzz": 1})
        with pytest.raises(ValueError):
            count_query(released, {9: 1})

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_soundness_property(self, seed, k):
        """The fundamental guarantee: true count in [certain, possible]
        for every query, on every anonymized release."""
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 16))
        original = random_table(rng, n, 3, 3)
        released = CenterCoverAnonymizer().anonymize(original, k).anonymized
        source = original.rows[int(rng.integers(0, n))]
        predicate = {0: source[0], 2: source[2]}
        truth = count_query(original, predicate).certain
        answer = count_query(released, predicate)
        assert answer.contains(truth)


class TestQueryErrorExperiment:
    def test_all_sound_and_reasonable_width(self):
        import numpy as np

        original = random_table(np.random.default_rng(0), 30, 4, 3)
        released = CenterCoverAnonymizer().anonymize(original, 3).anonymized
        report = query_error_experiment(original, released, n_queries=40,
                                        seed=1)
        assert report.all_sound
        assert 0 <= report.mean_relative_width <= 1

    def test_identity_release_zero_width(self):
        import numpy as np

        original = random_table(np.random.default_rng(1), 20, 3, 3)
        report = query_error_experiment(original, original, n_queries=20)
        assert report.mean_width == 0.0

    def test_more_suppression_wider_intervals(self):
        import numpy as np

        from repro.algorithms import SuppressEverythingAnonymizer

        original = random_table(np.random.default_rng(2), 20, 3, 3)
        some = CenterCoverAnonymizer().anonymize(original, 2).anonymized
        everything = SuppressEverythingAnonymizer().anonymize(
            original, 2
        ).anonymized
        a = query_error_experiment(original, some, n_queries=30, seed=0)
        b = query_error_experiment(original, everything, n_queries=30, seed=0)
        assert a.mean_width <= b.mean_width

    def test_validation(self):
        t = Table([(1, 2)] * 3)
        with pytest.raises(ValueError):
            query_error_experiment(t, Table([(1,)]))
        with pytest.raises(ValueError):
            query_error_experiment(t, t, arity=5)
        with pytest.raises(ValueError):
            query_error_experiment(t, t, n_queries=0)


class TestAttributeBranchBound:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_matches_brute_force(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 12))
        m = int(rng.integers(1, 6))
        t = random_table(rng, n, m, 2)
        brute_count, _ = optimal_attribute_suppression(t, k)
        bb_count, bb_set = optimal_attribute_suppression_branch_bound(t, k)
        assert bb_count == brute_count
        # the returned set really works
        from repro.core.anonymity import is_k_anonymous

        kept = [j for j in range(m) if j not in bb_set]
        if kept:
            assert is_k_anonymous(t.project(kept), k)

    def test_scales_past_brute_force(self):
        """m = 18 (262144 subsets for brute force) stays fast with
        pruning on a feasibility-friendly table."""
        import numpy as np

        rng = np.random.default_rng(0)
        base = rng.integers(0, 2, size=18)
        rows = []
        for _ in range(24):
            row = base.copy()
            flips = rng.random(18) < 0.15
            row[flips] = 1 - row[flips]
            rows.append(tuple(int(v) for v in row))
        t = Table(rows)
        count, suppressed = optimal_attribute_suppression_branch_bound(t, 3)
        kept = [j for j in range(18) if j not in suppressed]
        from repro.core.anonymity import is_k_anonymous

        if kept:
            assert is_k_anonymous(t.project(kept), 3)
        assert 0 <= count <= 18

    def test_edge_cases(self):
        assert optimal_attribute_suppression_branch_bound(Table([]), 2) == (
            0, frozenset()
        )
        with pytest.raises(ValueError):
            optimal_attribute_suppression_branch_bound(Table([(1,)]), 2)
        with pytest.raises(ValueError):
            optimal_attribute_suppression_branch_bound(Table([(1,)]), 0)
