"""Tests for the exact solvers (DP, brute force, attribute version)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.exact import (
    ExactAnonymizer,
    brute_force_optimal,
    optimal_anonymization,
    optimal_attribute_suppression,
)
from repro.core.anonymity import is_k_anonymous
from repro.core.partition import anonymize_partition
from repro.core.table import Table

from .conftest import random_table


class TestOptimalAnonymization:
    def test_identical_rows_zero(self):
        t = Table([(1, 2)] * 4)
        opt, partition = optimal_anonymization(t, 2)
        assert opt == 0
        assert partition.is_partition()

    def test_forced_suppression(self):
        t = Table([(0, 0), (0, 1)])
        opt, _ = optimal_anonymization(t, 2)
        assert opt == 2  # star the second coordinate in both rows

    def test_grouping_matters(self):
        # Pairing near rows beats pairing far rows.
        t = Table([(0, 0, 0), (0, 0, 1), (5, 5, 5), (5, 5, 6)])
        opt, partition = optimal_anonymization(t, 2)
        assert opt == 4
        assert frozenset({0, 1}) in partition.groups

    def test_partition_reproduces_cost(self):
        import numpy as np

        t = random_table(np.random.default_rng(1), 9, 4, 3)
        opt, partition = optimal_anonymization(t, 3)
        _, suppressor = anonymize_partition(t, partition)
        assert suppressor.total_stars() == opt

    def test_group_sizes_in_range(self):
        import numpy as np

        t = random_table(np.random.default_rng(2), 10, 3, 3)
        _, partition = optimal_anonymization(t, 3)
        assert all(3 <= len(g) <= 5 for g in partition.groups)

    def test_empty_table(self):
        opt, partition = optimal_anonymization(Table([]), 4)
        assert opt == 0
        assert len(partition) == 0

    def test_infeasible(self):
        with pytest.raises(ValueError):
            optimal_anonymization(Table([(1,)]), 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            optimal_anonymization(Table([(1,)]), 0)

    def test_group_max_override_cannot_improve(self):
        """Allowing groups beyond 2k-1 never helps (Section 4.1 WLOG)."""
        import numpy as np

        for seed in range(5):
            t = random_table(np.random.default_rng(seed), 8, 3, 3)
            restricted, _ = optimal_anonymization(t, 2)
            relaxed, _ = optimal_anonymization(t, 2, group_max=8)
            assert restricted == relaxed

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_matches_brute_force(self, seed, k):
        """DP vs full partition enumeration — independent implementations."""
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 8))
        t = random_table(rng, n, 3, 3)
        dp, _ = optimal_anonymization(t, k)
        assert dp == brute_force_optimal(t, k)

    def test_anonymized_output_k_anonymous(self):
        import numpy as np

        t = random_table(np.random.default_rng(9), 8, 4, 2)
        _, partition = optimal_anonymization(t, 2)
        anonymized, _ = anonymize_partition(t, partition)
        assert is_k_anonymous(anonymized, 2)


class TestBruteForce:
    def test_small_instance(self):
        t = Table([(0,), (0,), (1,), (1,)])
        assert brute_force_optimal(t, 2) == 0

    def test_single_group_forced(self):
        t = Table([(0, 0), (1, 1), (2, 2)])
        assert brute_force_optimal(t, 3) == 6

    def test_empty(self):
        assert brute_force_optimal(Table([]), 2) == 0

    def test_errors(self):
        with pytest.raises(ValueError):
            brute_force_optimal(Table([(1,)]), 2)
        with pytest.raises(ValueError):
            brute_force_optimal(Table([(1,)]), 0)


class TestExactAnonymizer:
    def test_result_matches_opt(self):
        import numpy as np

        t = random_table(np.random.default_rng(4), 8, 3, 3)
        result = ExactAnonymizer().anonymize(t, 2)
        opt, _ = optimal_anonymization(t, 2)
        assert result.stars == opt == result.extras["opt"]
        assert result.is_valid(t)

    def test_lower_bounds_every_other_algorithm(self):
        import numpy as np

        from repro.algorithms import (
            CenterCoverAnonymizer,
            GreedyCoverAnonymizer,
            KMemberAnonymizer,
            MondrianAnonymizer,
            MSTForestAnonymizer,
        )

        t = random_table(np.random.default_rng(6), 10, 4, 3)
        opt = ExactAnonymizer().anonymize(t, 2).stars
        for algorithm in [
            GreedyCoverAnonymizer(),
            CenterCoverAnonymizer(),
            MondrianAnonymizer(),
            KMemberAnonymizer(),
            MSTForestAnonymizer(),
        ]:
            assert algorithm.anonymize(t, 2).stars >= opt


class TestAttributeSuppression:
    def test_already_anonymous_needs_nothing(self):
        t = Table([(1, 2)] * 3)
        count, suppressed = optimal_attribute_suppression(t, 3)
        assert count == 0
        assert suppressed == frozenset()

    def test_one_column_enough(self):
        t = Table([(1, 0), (1, 1), (1, 2)])
        count, suppressed = optimal_attribute_suppression(t, 3)
        assert count == 1
        assert suppressed == frozenset({1})

    def test_kept_projection_is_k_anonymous(self):
        import numpy as np

        t = random_table(np.random.default_rng(3), 9, 4, 2)
        count, suppressed = optimal_attribute_suppression(t, 3)
        kept = [j for j in range(t.degree) if j not in suppressed]
        projected = t.project(kept) if kept else t.with_rows(
            [() for _ in range(t.n_rows)]
        )
        if kept:
            assert is_k_anonymous(projected, 3)

    def test_minimality(self):
        """No smaller suppression set achieves k-anonymity."""
        from itertools import combinations

        import numpy as np

        t = random_table(np.random.default_rng(8), 8, 4, 2)
        count, _ = optimal_attribute_suppression(t, 3)
        for smaller in range(count):
            for subset in combinations(range(t.degree), smaller):
                kept = [j for j in range(t.degree) if j not in subset]
                assert not is_k_anonymous(t.project(kept), 3)

    def test_empty_table(self):
        assert optimal_attribute_suppression(Table([]), 2) == (0, frozenset())

    def test_infeasible(self):
        with pytest.raises(ValueError):
            optimal_attribute_suppression(Table([(1,)]), 2)
        with pytest.raises(ValueError):
            optimal_attribute_suppression(Table([(1,)]), 0)
