"""Deadline behavior: tiny budgets degrade gracefully, never invalidly.

The acceptance contract: with a ~50 ms budget on a 200-row table, the
metaheuristics and the branch-and-bound solver each return quickly, the
release still passes ``result.is_valid(table)``, the cost is never
worse than the seed algorithm's, and ``extras["deadline_hit"]`` is set.
The exact solvers, which hold no feasible incumbent mid-flight, raise
:class:`~repro.instrument.BudgetExceededError` instead.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.algorithms import (
    BranchBoundAnonymizer,
    CenterCoverAnonymizer,
    ExactAnonymizer,
    LocalSearchAnonymizer,
    SimulatedAnnealingAnonymizer,
)
from repro.algorithms.exact import optimal_anonymization
from repro.algorithms.local_search import improve_partition
from repro.core.table import Table
from repro.instrument import BudgetExceededError, TimeBudget

from .conftest import random_table


@pytest.fixture(scope="module")
def big_table() -> Table:
    rng = np.random.default_rng(7)
    return random_table(rng, 200, 6, 4)


@pytest.fixture(scope="module")
def seed_stars(big_table) -> int:
    # warm the shared backend's distance matrix so the timed runs below
    # measure search work, not one-off cache construction
    return CenterCoverAnonymizer().anonymize(big_table, 5).stars


@pytest.mark.parametrize(
    "factory",
    [
        lambda: LocalSearchAnonymizer(max_rounds=10_000),
        lambda: SimulatedAnnealingAnonymizer(steps=10_000_000, seed=3),
    ],
    ids=["local_search", "annealing"],
)
def test_metaheuristics_degrade_gracefully(factory, big_table, seed_stars):
    algorithm = factory()
    t0 = time.monotonic()
    result = algorithm.anonymize(big_table, 5, timeout=TimeBudget(0.05))
    elapsed = time.monotonic() - t0
    assert elapsed < 0.5
    assert result.is_valid(big_table)
    assert result.extras["deadline_hit"] is True
    assert result.stars <= seed_stars


def test_branch_bound_returns_incumbent_on_deadline(big_table, seed_stars):
    t0 = time.monotonic()
    result = BranchBoundAnonymizer().anonymize(
        big_table, 5, timeout=TimeBudget(0.05)
    )
    elapsed = time.monotonic() - t0
    assert elapsed < 0.5
    assert result.is_valid(big_table)
    assert result.extras["deadline_hit"] is True
    assert result.extras["proven_optimal"] is False
    assert "incumbent" in result.extras and "opt" not in result.extras
    assert result.stars <= seed_stars


def test_branch_bound_without_deadline_still_proves(rng):
    table = random_table(rng, 9, 3, 2)
    result = BranchBoundAnonymizer().anonymize(table, 3)
    assert result.extras["proven_optimal"] is True
    assert result.stars == result.extras["opt"]
    assert "deadline_hit" not in result.extras


def test_exact_solver_raises_on_tiny_budget(rng):
    table = random_table(rng, 14, 4, 3)
    with pytest.raises(BudgetExceededError):
        ExactAnonymizer().anonymize(table, 3, timeout=1e-9)
    # the function-level API raises too
    with pytest.raises(BudgetExceededError):
        optimal_anonymization(table, 3, budget=1e-9)


def test_exact_solver_unaffected_by_generous_budget(rng):
    table = random_table(rng, 8, 3, 2)
    free = ExactAnonymizer().anonymize(table, 2)
    timed = ExactAnonymizer().anonymize(table, 2, timeout=60.0)
    assert timed.stars == free.stars == timed.extras["opt"]
    assert "deadline_hit" not in timed.extras


def test_small_m_exact_raises_on_tiny_budget():
    from repro.algorithms import SmallMExactAnonymizer

    table = Table([(i % 3, (i * 7) % 3, i % 2) for i in range(30)])
    with pytest.raises(BudgetExceededError):
        SmallMExactAnonymizer().anonymize(table, 3, timeout=1e-9)
    # and succeeds untimed on the same instance
    result = SmallMExactAnonymizer().anonymize(table, 3)
    assert result.is_valid(table)


def test_improve_partition_budget_stops_but_returns_valid(big_table):
    base = CenterCoverAnonymizer().anonymize(big_table, 5)
    improved, rounds = improve_partition(
        big_table, base.partition, max_rounds=10_000, budget=0.02
    )
    assert improved.n_rows == big_table.n_rows
    assert rounds >= 1
    cost = sum(
        len(g) for g in improved.groups
    )  # structural sanity: all rows grouped
    assert cost == big_table.n_rows


def test_no_deadline_key_without_timeout(big_table):
    result = LocalSearchAnonymizer(max_rounds=2).anonymize(big_table, 5)
    assert "deadline_hit" not in result.extras


def test_budget_is_not_reused_across_calls(rng):
    """A numeric budget arms a fresh clock per call (no state leak)."""
    table = random_table(rng, 30, 4, 3)
    algorithm = LocalSearchAnonymizer(max_rounds=5, budget=0.5)
    first = algorithm.anonymize(table, 2)
    assert "deadline_hit" not in first.extras
    # were the armed clock shared, it would now be spent
    time.sleep(0.55)
    second = algorithm.anonymize(table, 2)
    assert "deadline_hit" not in second.extras


def test_shared_budget_instance_shares_deadline(big_table):
    """Passing a TimeBudget instance deliberately shares one deadline."""
    shared = TimeBudget(0.05).start()
    time.sleep(0.06)
    result = SimulatedAnnealingAnonymizer(steps=10_000, seed=0).anonymize(
        big_table, 5, timeout=shared
    )
    assert result.extras["deadline_hit"] is True
    assert result.is_valid(big_table)
