"""Tests for the Section 3 reductions — the heart of the hardness results.

The crucial properties (verified with exact solvers on small instances):

* Theorem 3.1: OPT over entry suppression == n(m-1)  <=>  perfect matching;
  OPT > n(m-1) when no perfect matching exists.
* Theorem 3.2: min whole-attribute suppression == m - n/k  <=>  perfect
  matching.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.exact import (
    optimal_anonymization,
    optimal_attribute_suppression,
)
from repro.core.anonymity import is_k_anonymous, suppressed_cell_count
from repro.hardness.generators import (
    matchless_hypergraph,
    planted_matching_hypergraph,
)
from repro.hardness.hypergraph import Hypergraph
from repro.hardness.matching import find_perfect_matching
from repro.hardness.reductions import (
    AttributeSuppressionReduction,
    EntrySuppressionReduction,
)


@pytest.fixture
def planted():
    graph, _ = planted_matching_hypergraph(2, 3, extra_edges=2, seed=7)
    return graph


class TestEntryReductionConstruction:
    def test_table_shape_and_alphabet(self, planted):
        red = EntrySuppressionReduction(planted, 3)
        assert red.table.n_rows == planted.n_vertices
        assert red.table.degree == planted.n_edges
        # v_i[j] = 0 iff u_i in e_j, else the row-unique value i+1
        for i, row in enumerate(red.table.rows):
            for j, value in enumerate(row):
                if i in planted.edge(j):
                    assert value == 0
                else:
                    assert value == i + 1

    def test_threshold(self, planted):
        red = EntrySuppressionReduction(planted, 3)
        n, m = planted.n_vertices, planted.n_edges
        assert red.threshold == n * (m - 1)

    def test_rejects_small_k(self, planted):
        with pytest.raises(ValueError, match="k >= 3"):
            EntrySuppressionReduction(planted, 2)

    def test_rejects_non_uniform(self):
        h = Hypergraph(4, [{0, 1}, {1, 2, 3}])
        with pytest.raises(ValueError, match="uniform"):
            EntrySuppressionReduction(h, 3)

    def test_rejects_non_simple(self):
        h = Hypergraph(3, [{0, 1, 2}, {2, 1, 0}], require_simple=False)
        with pytest.raises(ValueError, match="simple"):
            EntrySuppressionReduction(h, 3)


class TestEntryReductionCertificates:
    def test_forward_certificate(self, planted):
        red = EntrySuppressionReduction(planted, 3)
        matching = find_perfect_matching(planted)
        assert matching is not None
        anonymized = red.anonymize_from_matching(matching)
        assert is_k_anonymous(anonymized, 3)
        assert suppressed_cell_count(anonymized) == red.threshold

    def test_backward_certificate_roundtrip(self, planted):
        red = EntrySuppressionReduction(planted, 3)
        matching = find_perfect_matching(planted)
        anonymized = red.anonymize_from_matching(matching)
        assert sorted(red.matching_from_anonymized(anonymized)) == sorted(matching)

    def test_forward_rejects_non_matching(self, planted):
        red = EntrySuppressionReduction(planted, 3)
        with pytest.raises(ValueError, match="perfect matching"):
            red.suppressor_from_matching([0])

    def test_backward_rejects_wrong_shape(self, planted):
        from repro.core.table import Table

        red = EntrySuppressionReduction(planted, 3)
        with pytest.raises(ValueError, match="row count"):
            red.matching_from_anonymized(Table([(0,)]))

    def test_backward_rejects_unstructured_table(self, planted):
        red = EntrySuppressionReduction(planted, 3)
        with pytest.raises(ValueError):
            red.matching_from_anonymized(red.table)  # nothing suppressed


class TestTheorem31Equivalence:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_opt_hits_threshold_iff_matching(self, seed):
        graph, _ = planted_matching_hypergraph(2, 3, extra_edges=1, seed=seed)
        red = EntrySuppressionReduction(graph, 3)
        opt, _ = optimal_anonymization(red.table, 3)
        assert opt == red.threshold

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_opt_exceeds_threshold_without_matching(self, seed):
        graph = matchless_hypergraph(2, 3, n_edges=4, seed=seed)
        red = EntrySuppressionReduction(graph, 3)
        opt, _ = optimal_anonymization(red.table, 3)
        assert opt > red.threshold

    def test_optimal_partition_encodes_matching(self):
        graph, _ = planted_matching_hypergraph(2, 3, extra_edges=2, seed=3)
        red = EntrySuppressionReduction(graph, 3)
        opt, partition = optimal_anonymization(red.table, 3)
        from repro.core.partition import anonymize_partition

        anonymized, _ = anonymize_partition(red.table, partition)
        matching = red.matching_from_anonymized(anonymized)
        from repro.hardness.matching import is_perfect_matching

        assert is_perfect_matching(graph, matching)


class TestAttributeReductionConstruction:
    def test_binary_table(self, planted):
        red = AttributeSuppressionReduction(planted, 3)
        values = {v for row in red.table.rows for v in row}
        assert values <= {0, 1}

    def test_custom_symbols(self, planted):
        red = AttributeSuppressionReduction(planted, 3, b0="no", b1="yes")
        values = {v for row in red.table.rows for v in row}
        assert values <= {"no", "yes"}

    def test_each_column_has_exactly_k_ones(self, planted):
        red = AttributeSuppressionReduction(planted, 3)
        for j in range(red.table.degree):
            assert sum(1 for row in red.table.rows if row[j] == 1) == 3

    def test_threshold(self, planted):
        red = AttributeSuppressionReduction(planted, 3)
        assert red.threshold == planted.n_edges - planted.n_vertices // 3

    def test_rejects_equal_symbols(self, planted):
        with pytest.raises(ValueError, match="differ"):
            AttributeSuppressionReduction(planted, 3, b0=1, b1=1)

    def test_rejects_small_k(self, planted):
        with pytest.raises(ValueError, match="k > 2"):
            AttributeSuppressionReduction(planted, 2)

    def test_rejects_indivisible_n(self):
        h = Hypergraph(4, [{0, 1, 2}, {1, 2, 3}])
        with pytest.raises(ValueError, match="k | n"):
            AttributeSuppressionReduction(h, 3)


class TestAttributeReductionCertificates:
    def test_forward_certificate(self, planted):
        red = AttributeSuppressionReduction(planted, 3)
        matching = find_perfect_matching(planted)
        suppressor = red.suppressor_from_matching(matching)
        anonymized = suppressor.apply(red.table)
        assert is_k_anonymous(anonymized, 3)
        assert len(suppressor.suppressed_attributes()) == red.threshold

    def test_backward_roundtrip(self, planted):
        red = AttributeSuppressionReduction(planted, 3)
        matching = find_perfect_matching(planted)
        anonymized = red.suppressor_from_matching(matching).apply(red.table)
        assert sorted(red.matching_from_anonymized(anonymized)) == sorted(matching)

    def test_kept_attributes_validation(self, planted):
        red = AttributeSuppressionReduction(planted, 3)
        with pytest.raises(ValueError, match="expected"):
            red.matching_from_kept_attributes([0])

    def test_rejects_cell_level_suppression(self, planted):
        from repro.core.suppressor import Suppressor

        red = AttributeSuppressionReduction(planted, 3)
        partial = Suppressor({0: [0]}, red.table.n_rows, red.table.degree)
        with pytest.raises(ValueError, match="attribute"):
            red.matching_from_anonymized(partial.apply(red.table))


class TestTheorem32Equivalence:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_min_attributes_hits_threshold_iff_matching(self, seed):
        graph, _ = planted_matching_hypergraph(2, 3, extra_edges=2, seed=seed)
        red = AttributeSuppressionReduction(graph, 3)
        count, suppressed = optimal_attribute_suppression(red.table, 3)
        assert count == red.threshold
        kept = [j for j in range(graph.n_edges) if j not in suppressed]
        assert sorted(red.matching_from_kept_attributes(kept))

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_min_attributes_exceeds_threshold_without_matching(self, seed):
        graph = matchless_hypergraph(2, 3, n_edges=4, seed=seed)
        red = AttributeSuppressionReduction(graph, 3)
        count, _ = optimal_attribute_suppression(red.table, 3)
        assert count > red.threshold
