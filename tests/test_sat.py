"""Tests for the CNF representation and the DPLL solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardness.sat import (
    Cnf,
    is_satisfiable,
    planted_satisfiable_cnf,
    random_three_cnf,
    solve_sat,
    unsatisfiable_cnf,
)


class TestCnf:
    def test_basic(self):
        f = Cnf(2, [(1, 2), (-1, 2)])
        assert f.n_vars == 2
        assert f.n_clauses == 2
        assert f.is_three_cnf()

    def test_rejects_empty_clause(self):
        with pytest.raises(ValueError, match="empty"):
            Cnf(2, [()])

    def test_rejects_bad_literals(self):
        with pytest.raises(ValueError):
            Cnf(2, [(0,)])
        with pytest.raises(ValueError):
            Cnf(2, [(3,)])
        with pytest.raises(ValueError):
            Cnf(-1, [])

    def test_evaluate(self):
        f = Cnf(2, [(1, 2), (-1,)])
        assert f.evaluate([False, True])
        assert not f.evaluate([True, True])
        with pytest.raises(ValueError):
            f.evaluate([True])

    def test_is_three_cnf_false(self):
        assert not Cnf(4, [(1, 2, 3, 4)]).is_three_cnf()

    def test_repr(self):
        assert "n_vars=2" in repr(Cnf(2, [(1,)]))


class TestSolver:
    def test_trivially_sat(self):
        assert solve_sat(Cnf(1, [(1,)])) == [True]
        assert solve_sat(Cnf(1, [(-1,)])) == [False]

    def test_trivially_unsat(self):
        assert solve_sat(Cnf(1, [(1,), (-1,)])) is None

    def test_unit_propagation_chain(self):
        f = Cnf(3, [(1,), (-1, 2), (-2, 3)])
        assert solve_sat(f) == [True, True, True]

    def test_canonical_unsat(self):
        assert not is_satisfiable(unsatisfiable_cnf())

    def test_requires_branching(self):
        # no units, no pure literals at the top level
        f = Cnf(3, [(1, 2), (-1, -2), (2, 3), (-2, -3), (1, 3), (-1, -3)])
        result = solve_sat(f)
        # exactly one of each pair true: impossible for an odd cycle
        assert result is None or f.evaluate(result)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(3, 5), st.integers(1, 12))
    def test_agrees_with_brute_force(self, seed, n_vars, n_clauses):
        f = random_three_cnf(n_vars, n_clauses, seed=seed)
        brute = any(
            f.evaluate(list(bits))
            for bits in itertools.product([False, True], repeat=n_vars)
        )
        result = solve_sat(f)
        assert (result is not None) == brute
        if result is not None:
            assert f.evaluate(result)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_planted_formulas_always_sat(self, seed):
        f, hidden = planted_satisfiable_cnf(5, 10, seed=seed)
        assert f.evaluate(hidden)
        result = solve_sat(f)
        assert result is not None
        assert f.evaluate(result)


class TestGenerators:
    def test_random_shape(self):
        f = random_three_cnf(6, 9, seed=0)
        assert f.n_vars == 6
        assert f.n_clauses == 9
        assert all(len(c) == 3 for c in f.clauses)
        assert all(len({abs(l) for l in c}) == 3 for c in f.clauses)

    def test_deterministic(self):
        a = random_three_cnf(5, 7, seed=3)
        b = random_three_cnf(5, 7, seed=3)
        assert a.clauses == b.clauses

    def test_too_few_vars(self):
        with pytest.raises(ValueError):
            random_three_cnf(2, 3)
        with pytest.raises(ValueError):
            planted_satisfiable_cnf(2, 3)

    def test_unsatisfiable_cnf_structure(self):
        f = unsatisfiable_cnf()
        assert f.n_vars == 3
        assert f.n_clauses == 8
        assert len(set(f.clauses)) == 8
