"""Tests for the small-m exact solver (the Sweeney [8] simulation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.exact import optimal_anonymization
from repro.algorithms.small_m import SmallMExactAnonymizer
from repro.core.table import Table
from repro.workloads import duplicate_heavy_table


class TestCorrectness:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_matches_dp_on_duplicate_tables(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 12))
        t = duplicate_heavy_table(n, 3, n_distinct=4, seed=rng)
        result = SmallMExactAnonymizer().anonymize(t, k)
        opt, _ = optimal_anonymization(t, k)
        assert result.stars == opt
        assert result.is_valid(t)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_matches_dp_on_distinct_tables(self, seed, k):
        from .conftest import random_table
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 8))
        t = random_table(rng, n, 2, 2)  # few distinct patterns
        result = SmallMExactAnonymizer().anonymize(t, k)
        opt, _ = optimal_anonymization(t, k)
        assert result.stars == opt

    def test_duplicates_may_split_across_groups(self):
        """Forcing all copies of a record into the same group is NOT
        optimality-preserving, so the solver must allow splitting.

        Instance (k=3): (0,1) x2 and (0,0) x4.  Splitting the (0,0)
        copies 3/1 gives {(0,0) x3} free + {(0,1) x2, (0,0)} costing 3;
        co-grouping all four (0,0)s strands the two (0,1)s (< k), forcing
        one 6-row group costing 6.
        """
        t = Table([(0, 1), (0, 1), (0, 0), (0, 0), (0, 0), (0, 0)])
        result = SmallMExactAnonymizer().anonymize(t, 3)
        assert result.stars == 3
        opt, _ = optimal_anonymization(t, 3)
        assert opt == 3

    def test_extras(self):
        t = duplicate_heavy_table(30, 3, n_distinct=4, seed=0)
        result = SmallMExactAnonymizer().anonymize(t, 3)
        assert result.extras["distinct_records"] <= 4
        assert result.extras["dp_states"] >= 1
        assert result.extras["opt"] == result.stars

    def test_scales_with_many_duplicates(self):
        """n = 90 with 3 distinct records is far beyond the subset DP's
        ~16-row wall but cheap for the multiplicity DP."""
        t = duplicate_heavy_table(90, 4, n_distinct=3, seed=1)
        result = SmallMExactAnonymizer().anonymize(t, 3)
        assert result.is_valid(t)

    def test_state_space_guard(self):
        t = duplicate_heavy_table(200, 4, n_distinct=6, seed=1)
        with pytest.raises(ValueError, match="state bound"):
            SmallMExactAnonymizer(max_states=1000).anonymize(t, 5)


class TestGuards:
    def test_distinct_guard(self):
        t = Table([(i,) for i in range(40)])
        with pytest.raises(ValueError, match="distinct"):
            SmallMExactAnonymizer(max_distinct=10).anonymize(t, 2)

    def test_empty_and_infeasible(self):
        from repro.algorithms.base import InfeasibleAnonymizationError

        assert SmallMExactAnonymizer().anonymize(Table([]), 3).stars == 0
        with pytest.raises(InfeasibleAnonymizationError):
            SmallMExactAnonymizer().anonymize(Table([(1,)]), 2)

    def test_partition_groups_within_bounds(self):
        t = duplicate_heavy_table(25, 3, n_distinct=3, seed=3)
        result = SmallMExactAnonymizer().anonymize(t, 4)
        assert result.partition is not None
        assert all(4 <= len(g) <= 7 for g in result.partition.groups)
