"""The anonymization service: core, wire protocol, client, CLI verbs."""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import pytest

from repro.cli import main
from repro.core.anonymity import is_k_anonymous
from repro.core.table import Table
from repro.io import read_csv, write_csv
from repro.service import (
    AnonymizationService,
    ServiceClient,
    ServiceError,
    ServiceServer,
)
from repro.workloads import census_table, quasi_identifiers


def small_table() -> Table:
    return quasi_identifiers(census_table(24, seed=0))


def run(coro):
    return asyncio.run(coro)


async def _served(service: AnonymizationService, *requests):
    try:
        return [await service.handle(r) for r in requests]
    finally:
        await service.stop()


# ----------------------------------------------------------------------
# The transport-free core
# ----------------------------------------------------------------------


class TestServiceCore:
    def test_anonymize_roundtrip_is_valid(self):
        table = small_table()
        request = {"op": "anonymize", "csv": table.to_csv(), "k": 3}
        (response,) = run(_served(AnonymizationService(), request))
        assert response["ok"]
        assert response["cache"] == "miss"
        assert response["algorithm"] == "center_cover"
        released = Table.from_csv(response["csv"])
        assert is_k_anonymous(released, 3)
        assert response["stars"] > 0
        assert response["solve_seconds"] > 0

    def test_second_identical_request_hits_cache(self):
        table = small_table()
        request = {"op": "anonymize", "csv": table.to_csv(), "k": 3}
        first, second = run(
            _served(AnonymizationService(), request, dict(request))
        )
        assert (first["cache"], second["cache"]) == ("miss", "hit")
        assert first["csv"] == second["csv"]
        assert first["stars"] == second["stars"]

    def test_use_cache_false_bypasses_both_directions(self):
        table = small_table()
        cached = {"op": "anonymize", "csv": table.to_csv(), "k": 3}
        bypass = dict(cached, use_cache=False)
        service = AnonymizationService()
        first, second, third = run(
            _served(service, cached, bypass, dict(cached))
        )
        assert first["cache"] == "miss"
        assert second["cache"] == "bypass"
        assert third["cache"] == "hit"

    def test_solved_instances_counts_distinct_keys_only(self):
        """The fleet-audit counter: hits, bypass replays, and repeats
        of one instance never inflate ``solved_instances`` — summing it
        over shards equals the number of unique instances solved."""
        table = small_table()
        cached = {"op": "anonymize", "csv": table.to_csv(), "k": 3}
        other = dict(cached, k=2)
        service = AnonymizationService()
        responses = run(_served(
            service, cached, dict(cached),
            dict(cached, use_cache=False), other,
        ))
        assert [r["cache"] for r in responses] == [
            "miss", "hit", "bypass", "miss",
        ]
        assert service.stats()["solved_instances"] == 2

    def test_aliases_resolve_to_canonical_cache_entries(self):
        table = small_table()
        service = AnonymizationService()
        by_alias = {"op": "anonymize", "csv": table.to_csv(), "k": 3,
                    "algorithm": "center"}
        by_name = dict(by_alias, algorithm="center_cover")
        first, second = run(_served(service, by_alias, by_name))
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"  # alias and name share the key
        assert first["algorithm"] == "center_cover"

    def test_concurrent_identical_requests_coalesce(self):
        table = small_table()
        request = {"op": "anonymize", "csv": table.to_csv(), "k": 4}

        async def scenario():
            service = AnonymizationService(batch_window=0.02)
            try:
                return await asyncio.gather(
                    service.handle(dict(request)),
                    service.handle(dict(request)),
                    service.handle(dict(request)),
                ), service
            finally:
                await service.stop()

        responses, service = run(scenario())
        kinds = sorted(r["cache"] for r in responses)
        assert kinds == ["coalesced", "coalesced", "miss"]
        assert len({r["csv"] for r in responses}) == 1
        assert service.coalesced == 2
        # coalesced requests never reached the solver
        assert sum(service.batches) == 1

    def test_concurrent_distinct_requests_form_one_batch(self):
        async def scenario():
            service = AnonymizationService(batch_window=0.1, max_batch=8)
            tables = [
                quasi_identifiers(census_table(16, seed=s))
                for s in range(4)
            ]
            try:
                responses = await asyncio.gather(*(
                    service.handle({
                        "op": "anonymize", "csv": t.to_csv(), "k": 2,
                    })
                    for t in tables
                ))
            finally:
                await service.stop()
            return responses, service.batches

        responses, batches = run(scenario())
        assert all(r["ok"] for r in responses)
        assert len(batches) == 1 and batches[0] == 4

    def test_stats_counts_everything(self):
        table = small_table()
        request = {"op": "anonymize", "csv": table.to_csv(), "k": 3}
        service = AnonymizationService()
        _, _, stats = run(
            _served(service, request, dict(request), {"op": "stats"})
        )
        assert stats["ok"]
        assert stats["requests"] == {"anonymize": 2, "stats": 1}
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["batches"]["count"] == 1

    def test_traces_surface_in_stats(self):
        table = small_table()
        request = {"op": "anonymize", "csv": table.to_csv(), "k": 3,
                   "trace": True}
        service = AnonymizationService()
        solved, stats = run(_served(service, request, {"op": "stats"}))
        assert solved["trace"]["algorithm"] == "center_cover"
        assert stats["traces"]["runs"] == 1
        assert stats["traces"]["total_seconds"] > 0
        assert "phases" in stats["traces"]


class TestAdmissionControl:
    @pytest.mark.parametrize("request_patch,code", [
        ({"csv": ""}, "bad-request"),
        ({"csv": 42}, "bad-request"),
        ({"k": 0}, "bad-request"),
        ({"k": "three"}, "bad-request"),
        ({"k": True}, "bad-request"),
        ({"algorithm": "no-such-solver"}, "unknown-algorithm"),
        ({"timeout": "soon"}, "bad-request"),
        ({"timeout": -1}, "bad-request"),
    ])
    def test_bad_requests_rejected_without_solving(self, request_patch,
                                                   code):
        request = {"op": "anonymize", "csv": small_table().to_csv(),
                   "k": 3, **request_patch}
        service = AnonymizationService()
        (response,) = run(_served(service, request))
        assert not response["ok"]
        assert response["code"] == code
        assert not service.batches  # nothing was dispatched

    def test_non_object_and_unknown_op(self):
        service = AnonymizationService()
        bad, unknown = run(_served(service, ["not", "an", "object"],
                                   {"op": "dance"}))
        assert not bad["ok"] and bad["code"] == "bad-request"
        assert not unknown["ok"] and unknown["code"] == "bad-request"

    def test_timeout_above_server_cap_is_rejected(self):
        service = AnonymizationService(max_timeout=1.0)
        request = {"op": "anonymize", "csv": small_table().to_csv(),
                   "k": 3, "timeout": 5.0}
        (response,) = run(_served(service, request))
        assert not response["ok"]
        assert response["code"] == "bad-request"
        assert "cap" in response["error"]

    def test_zero_budget_rejected_at_dispatch_not_solved(self):
        # the budget is armed at admission, so a request that spends its
        # whole allowance queued is dropped by the dispatcher
        service = AnonymizationService(batch_window=0.0)
        request = {"op": "anonymize", "csv": small_table().to_csv(),
                   "k": 3, "timeout": 0.0}
        (response,) = run(_served(service, request))
        assert not response["ok"]
        assert response["code"] == "budget-exceeded"
        assert "queued" in response["error"]

    def test_infeasible_instance_reports_cleanly(self):
        tiny = Table([(1, 2), (3, 4)], attributes=("x", "y"))
        request = {"op": "anonymize", "csv": tiny.to_csv(), "k": 5}
        (response,) = run(_served(AnonymizationService(), request))
        assert not response["ok"]
        assert response["code"] == "infeasible"

    def test_deadline_degraded_results_are_not_cached(self):
        # white-box: a deadline_hit outcome passed through _finish must
        # not enter the cache, so the next identical request re-solves
        service = AnonymizationService()
        table = small_table()
        request = {"op": "anonymize", "csv": table.to_csv(), "k": 3}

        async def scenario():
            job = service._admit(request)
            outcome = {
                "csv": table.to_csv(), "stars": 0,
                "algorithm": "center_cover", "k": 3,
                "backend": service.backend, "deadline_hit": True,
                "solve_seconds": 0.01, "trace": None,
            }
            response = service._finish(job, outcome, cache="miss")
            return response, job.key

        response, key = run(scenario())
        assert response["ok"] and response["deadline_hit"]
        assert service.cache.get(key) is None


# ----------------------------------------------------------------------
# TCP server + client
# ----------------------------------------------------------------------


@pytest.fixture(scope="class")
def server():
    with ServiceServer(
        AnonymizationService(max_entries=64, batch_window=0.002)
    ) as running:
        yield running


@pytest.mark.usefixtures("server")
class TestWireProtocol:
    def test_ping(self, server):
        with ServiceClient(*server.address) as client:
            response = client.ping()
        assert response["ok"] and response["protocol"] == 2

    def test_anonymize_then_hit_over_the_wire(self, server):
        table = quasi_identifiers(census_table(30, seed=7))
        with ServiceClient(*server.address) as client:
            first = client.anonymize(table, 3)
            second = client.anonymize(table, 3)
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert is_k_anonymous(first["table"], 3)
        assert first["table"] == second["table"]

    def test_connection_is_reused_and_stats_visible(self, server):
        with ServiceClient(*server.address) as client:
            client.ping()
            stats = client.stats()
        assert stats["cache"]["max_entries"] == 64
        assert stats["requests"]["ping"] >= 1

    def test_service_error_raises_on_client(self, server):
        with ServiceClient(*server.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.anonymize(small_table(), 3,
                                 algorithm="no-such-solver")
        assert excinfo.value.code == "unknown-algorithm"

    def test_bad_json_line_yields_error_not_disconnect(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"this is not json\n")
            handle.flush()
            error = json.loads(handle.readline())
            assert not error["ok"] and error["code"] == "bad-request"
            # the connection survives for the next request
            handle.write(json.dumps({"op": "ping"}).encode() + b"\n")
            handle.flush()
            assert json.loads(handle.readline())["ok"]

    def test_parallel_clients_share_the_cache(self, server):
        table = quasi_identifiers(census_table(26, seed=9))
        results: list[str] = []

        def one_request():
            with ServiceClient(*server.address) as client:
                results.append(client.anonymize(table, 2)["cache"])

        threads = [threading.Thread(target=one_request) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 4
        assert sorted(results).count("miss") == 1  # one solve total


def test_shutdown_over_the_wire_stops_the_server():
    server = ServiceServer()
    host, port = server.start()
    ServiceClient(host, port).shutdown()
    server._thread.join(10)
    assert not server._thread.is_alive()
    with pytest.raises(OSError):
        socket.create_connection((host, port), timeout=0.5).close()
    server._thread = None  # already joined; make stop() a no-op
    server.stop()


def test_disk_cache_survives_server_restart(tmp_path):
    table = quasi_identifiers(census_table(20, seed=3))
    first_service = AnonymizationService(cache_dir=tmp_path)
    with ServiceServer(first_service) as server:
        with ServiceClient(*server.address) as client:
            assert client.anonymize(table, 2)["cache"] == "miss"
    second_service = AnonymizationService(cache_dir=tmp_path)
    with ServiceServer(second_service) as server:
        with ServiceClient(*server.address) as client:
            assert client.anonymize(table, 2)["cache"] == "hit"
            assert client.stats()["cache"]["disk_hits"] == 1


# ----------------------------------------------------------------------
# CLI verbs: kanon serve / kanon submit
# ----------------------------------------------------------------------


@pytest.fixture
def input_csv(tmp_path):
    path = tmp_path / "in.csv"
    write_csv(quasi_identifiers(census_table(20, seed=1)), path)
    return path


class TestSubmitCli:
    def test_submit_roundtrip_and_cache_line(self, server, input_csv,
                                             tmp_path, capsys):
        host, port = server.address
        out = tmp_path / "released.csv"
        base = ["submit", str(input_csv), "-k", "2",
                "--host", host, "--port", str(port)]
        assert main(base + ["-o", str(out)]) == 0
        assert "cache: miss" in capsys.readouterr().err
        assert is_k_anonymous(read_csv(out), 2)

        assert main(base) == 0
        captured = capsys.readouterr()
        assert "cache: hit" in captured.err
        assert captured.out == read_csv(out).to_csv()

    def test_submit_stats_and_ping(self, server, capsys):
        host, port = server.address
        flags = ["--host", host, "--port", str(port)]
        assert main(["submit", "--ping"] + flags) == 0
        assert "ok" in capsys.readouterr().out
        assert main(["submit", "--stats"] + flags) == 0
        out = capsys.readouterr().out
        assert "cache:" in out and "batches:" in out

    def test_submit_unknown_algorithm_fails(self, server, input_csv,
                                            capsys):
        host, port = server.address
        code = main(["submit", str(input_csv), "-k", "2",
                     "--algorithm", "nope",
                     "--host", host, "--port", str(port)])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_submit_without_input_or_action_errors(self, capsys):
        assert main(["submit"]) == 2
        assert "needs an input CSV" in capsys.readouterr().err

    def test_submit_against_dead_server_exits_2(self, input_csv, capsys):
        # grab a port that is definitely closed
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = main(["submit", str(input_csv), "-k", "2",
                     "--port", str(port)])
        assert code == 2
        assert "kanon serve" in capsys.readouterr().err


def test_serve_cli_runs_until_shutdown(input_csv):
    """`kanon serve --port 0` + `kanon submit` against it, end to end."""
    import contextlib
    import re

    ready = threading.Event()
    codes: list[int] = []

    class _Log:
        """Collects stderr; redirect_stderr is process-global, so every
        stderr line (server banner and submit status) lands here."""

        def __init__(self):
            self.chunks: list[str] = []

        def write(self, text):
            self.chunks.append(text)
            match = re.search(r"listening on ([\d.]+):(\d+)", text)
            if match:
                self.address = (match.group(1), int(match.group(2)))
                ready.set()
            return len(text)

        def flush(self):
            pass

        @property
        def text(self) -> str:
            return "".join(self.chunks)

    log = _Log()

    def run_server():
        codes.append(main(["serve", "--port", "0", "--cache-size", "8"]))

    with contextlib.redirect_stderr(log):
        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        assert ready.wait(10)
        host, port = log.address
        flags = ["--host", host, "--port", str(port)]
        assert main(["submit", str(input_csv), "-k", "2"] + flags) == 0
        assert "cache: miss" in log.text
        assert main(["submit", str(input_csv), "-k", "2"] + flags) == 0
        assert "cache: hit" in log.text
        assert main(["submit", "--shutdown"] + flags) == 0
        thread.join(10)
    assert not thread.is_alive()
    assert codes == [0]
    assert "kanon service stopped" in log.text
