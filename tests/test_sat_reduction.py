"""Tests for the Garey-Johnson 3SAT -> 3DM reduction and the full
3SAT -> 3DM -> k-ANONYMITY chain."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardness.matching import (
    find_perfect_matching,
    has_perfect_matching,
    is_perfect_matching,
)
from repro.hardness.reductions import EntrySuppressionReduction
from repro.hardness.sat import Cnf, planted_satisfiable_cnf, solve_sat
from repro.hardness.sat_reduction import ThreeSatToMatchingReduction


class TestConstruction:
    def test_element_count_is_6nm(self):
        f = Cnf(2, [(1, 2), (-1, -2), (1, -2)])
        red = ThreeSatToMatchingReduction(f)
        assert red.n_elements == 6 * 2 * 3

    def test_hypergraph_is_simple_and_3_uniform(self):
        f, _ = planted_satisfiable_cnf(3, 3, seed=0)
        red = ThreeSatToMatchingReduction(f)
        assert red.hypergraph.is_simple()
        assert red.hypergraph.is_uniform(3)

    def test_element_naming_roundtrip(self):
        f = Cnf(1, [(1,)])
        red = ThreeSatToMatchingReduction(f)
        e = red.element_id("tip_t", 1, 0)
        assert red.element_name(e) == ("tip_t", 1, 0)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            ThreeSatToMatchingReduction(Cnf(0, []))


class TestEquivalence:
    def test_tiny_unsat_has_no_matching(self):
        red = ThreeSatToMatchingReduction(Cnf(1, [(1,), (-1,)]))
        assert not has_perfect_matching(red.hypergraph)

    def test_tiny_sat_has_matching(self):
        red = ThreeSatToMatchingReduction(Cnf(1, [(1,), (1,)]))
        assert has_perfect_matching(red.hypergraph)

    def test_two_var_unsat(self):
        # (x1)(x2)(-x1 or -x2): UNSAT
        red = ThreeSatToMatchingReduction(
            Cnf(2, [(1,), (2,), (-1, -2)])
        )
        assert not has_perfect_matching(red.hypergraph)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_planted_sat_always_matches(self, seed):
        f, hidden = planted_satisfiable_cnf(3, 3, seed=seed)
        red = ThreeSatToMatchingReduction(f)
        matching = red.matching_from_assignment(hidden)
        assert is_perfect_matching(red.hypergraph, matching)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_solver_agrees_with_sat(self, seed):
        """has_perfect_matching(gadget) == is_satisfiable(formula), on
        formulas small enough for the matching search."""
        from repro.hardness.sat import random_three_cnf

        f = random_three_cnf(3, 2, seed=seed)
        red = ThreeSatToMatchingReduction(f)
        assert has_perfect_matching(red.hypergraph) == (solve_sat(f) is not None)


class TestCertificates:
    @pytest.fixture
    def sat_instance(self):
        f, hidden = planted_satisfiable_cnf(3, 3, seed=5)
        return f, hidden, ThreeSatToMatchingReduction(f)

    def test_forward_rejects_falsifying_assignment(self, sat_instance):
        f, hidden, red = sat_instance
        wrong = [not value for value in hidden]
        if not f.evaluate(wrong):
            with pytest.raises(ValueError, match="satisfy"):
                red.matching_from_assignment(wrong)

    def test_forward_validates_length(self, sat_instance):
        _, __, red = sat_instance
        with pytest.raises(ValueError, match="truth value"):
            red.matching_from_assignment([True])

    def test_roundtrip(self, sat_instance):
        f, hidden, red = sat_instance
        matching = red.matching_from_assignment(hidden)
        decoded = red.assignment_from_matching(matching)
        assert f.evaluate(decoded)

    def test_backward_from_solver_matching(self, sat_instance):
        f, _, red = sat_instance
        matching = find_perfect_matching(red.hypergraph)
        assert matching is not None
        decoded = red.assignment_from_matching(matching)
        assert f.evaluate(decoded)

    def test_backward_rejects_non_matching(self, sat_instance):
        _, __, red = sat_instance
        with pytest.raises(ValueError, match="perfect matching"):
            red.assignment_from_matching([0])


class TestFullChain:
    """3SAT -> 3DM -> k-ANONYMITY, certificates flowing end to end."""

    def test_sat_formula_reaches_anonymity_threshold(self):
        formula, hidden = planted_satisfiable_cnf(3, 3, seed=1)
        gadget = ThreeSatToMatchingReduction(formula)
        anonymity = EntrySuppressionReduction(gadget.hypergraph, 3)

        # assignment -> matching -> anonymization at the threshold
        matching = gadget.matching_from_assignment(hidden)
        anonymized = anonymity.anonymize_from_matching(matching)
        from repro.core.anonymity import is_k_anonymous, suppressed_cell_count

        assert is_k_anonymous(anonymized, 3)
        assert suppressed_cell_count(anonymized) == anonymity.threshold

        # ...and back: anonymization -> matching -> assignment
        recovered_matching = anonymity.matching_from_anonymized(anonymized)
        assignment = gadget.assignment_from_matching(recovered_matching)
        assert formula.evaluate(assignment)

    def test_unsat_formula_cannot_reach_threshold(self):
        """For UNSAT formulas no perfect matching exists, so no
        anonymization of the chain table can exhibit the threshold
        structure (every row keeping exactly one 0-cell)."""
        gadget = ThreeSatToMatchingReduction(Cnf(1, [(1,), (-1,)]))
        anonymity = EntrySuppressionReduction(gadget.hypergraph, 3)
        assert not has_perfect_matching(gadget.hypergraph)
        # the forward certificate is impossible to build
        with pytest.raises(ValueError):
            anonymity.suppressor_from_matching([0, 1])
