"""Tests for the programmatic experiment runners."""

import pytest

from repro.algorithms import CenterCoverAnonymizer, GreedyCoverAnonymizer
from repro.experiments import (
    RatioRow,
    comparison,
    k_sweep,
    privacy_experiment,
    ratio_experiment,
    threshold_experiment,
)
from repro.workloads import uniform_table


class TestRatioExperiment:
    def test_greedy_within_bound(self):
        exp = ratio_experiment(GreedyCoverAnonymizer(), k=2, n=8, trials=6)
        assert exp.within_bound
        assert exp.algorithm == "greedy_cover"
        assert len(exp.rows) == 6
        assert 1.0 <= exp.mean_ratio <= exp.max_ratio

    def test_center_within_bound(self):
        exp = ratio_experiment(CenterCoverAnonymizer(), k=2, n=8, trials=6)
        assert exp.within_bound
        assert exp.bound > 1

    def test_ratio_row_semantics(self):
        assert RatioRow(0, 4, 6).ratio == 1.5
        assert RatioRow(0, 0, 0).ratio == 1.0
        assert RatioRow(0, 0, 3).ratio == float("inf")

    def test_deterministic(self):
        a = ratio_experiment(CenterCoverAnonymizer(), k=2, n=7, trials=4)
        b = ratio_experiment(CenterCoverAnonymizer(), k=2, n=7, trials=4)
        assert a.rows == b.rows

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError, match="trials"):
            ratio_experiment(CenterCoverAnonymizer(), k=2, trials=0)

    def test_empty_rows_raise_clearly(self):
        from repro.experiments import RatioExperiment

        empty = RatioExperiment(algorithm="x", k=2, m=3, bound=5.0)
        with pytest.raises(ValueError, match="no rows"):
            empty.mean_ratio
        with pytest.raises(ValueError, match="no rows"):
            empty.max_ratio

    def test_trace_collection(self):
        exp = ratio_experiment(
            CenterCoverAnonymizer(), k=2, n=6, trials=2, trace=True
        )
        assert len(exp.traces) == 2
        assert all(t["algorithm"] == "center_cover" for t in exp.traces)

    def test_bounds_come_from_registry(self):
        """Regression: the bound used to fall through to Theorem 4.2 for
        every non-greedy algorithm, crediting heuristics with a
        guarantee they don't have."""
        from repro.algorithms import ExactAnonymizer, MondrianAnonymizer
        from repro.theory import theorem_4_1_ratio, theorem_4_2_ratio

        greedy = ratio_experiment(GreedyCoverAnonymizer(), k=2, n=6,
                                  trials=1)
        assert greedy.bound == theorem_4_1_ratio(2)
        center = ratio_experiment(CenterCoverAnonymizer(), k=2, n=6,
                                  trials=1)
        assert center.bound == theorem_4_2_ratio(2, center.m)
        exact = ratio_experiment(ExactAnonymizer(), k=2, n=6, trials=1)
        assert exact.bound == 1.0 and exact.within_bound

        heuristic = ratio_experiment(MondrianAnonymizer(), k=2, n=6,
                                     trials=1)
        assert heuristic.bound is None
        assert not heuristic.has_bound
        with pytest.raises(ValueError, match="no proven"):
            heuristic.within_bound


class TestThresholdExperiment:
    @pytest.mark.parametrize("kind", ["entries", "attributes"])
    @pytest.mark.parametrize("with_matching", [True, False])
    def test_theorem_consistency(self, kind, with_matching):
        result = threshold_experiment(
            kind=kind, with_matching=with_matching, seed=3
        )
        assert result.has_matching == with_matching
        assert result.consistent_with_theorem

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            threshold_experiment(kind="nonsense")


class TestSweepAndComparison:
    def test_k_sweep_monotone_cost(self):
        table = uniform_table(40, 4, alphabet_size=3, seed=0)
        points = k_sweep(table, ks=(2, 4, 8))
        assert [p.k for p in points] == [2, 4, 8]
        assert points[0].stars <= points[-1].stars * 1.25
        assert all(0 <= p.precision <= 1 for p in points)

    def test_comparison_default_algorithms(self):
        table = uniform_table(24, 4, alphabet_size=3, seed=1)
        costs = comparison(table, 3)
        assert set(costs) >= {"center_cover", "mondrian", "random_partition"}
        assert all(cost >= 0 for cost in costs.values())
        assert costs["center_cover"] <= costs["random_partition"]

    def test_comparison_custom_algorithms(self):
        table = uniform_table(12, 3, alphabet_size=3, seed=2)
        costs = comparison(
            table, 2, {"only_center": CenterCoverAnonymizer}
        )
        assert list(costs) == ["only_center"]

    def test_comparison_collects_traces(self):
        table = uniform_table(12, 3, alphabet_size=3, seed=2)
        traces: dict = {}
        comparison(
            table, 2, {"only_center": CenterCoverAnonymizer},
            trace=True, traces_out=traces,
        )
        assert set(traces) == {"only_center"}
        assert traces["only_center"]["n_rows"] == 12


class TestPrivacyExperiment:
    def test_anonymity_defeats_the_adversary(self):
        exp = privacy_experiment(n=60, ks=(1, 3))
        baseline, protected = exp.point(1), exp.point(3)
        assert baseline.stars == 0  # k=1 is the no-op baseline
        assert baseline.fraction_unique > protected.fraction_unique
        assert protected.fraction_unique <= 1 / 3
        assert exp.reidentification_drop > 1.0

    def test_deterministic(self):
        def signature(exp):
            return [
                (p.k, p.stars, p.fraction_unique, p.min_match,
                 p.mean_match, p.inference_accuracy, p.classes)
                for p in exp.points
            ]

        first = privacy_experiment(n=40, ks=(2,))
        second = privacy_experiment(n=40, ks=(2,))
        assert signature(first) == signature(second)

    def test_resume_reuses_recorded_cells(self, tmp_path):
        from repro.artifacts import RunStore

        config = {"n": 40, "epsilon": 1.0}
        store = RunStore(tmp_path, experiment="privacy", config=config)
        first = privacy_experiment(n=40, ks=(1, 2), store=store)
        resumed = RunStore(tmp_path, experiment="privacy", config=config,
                           resume=True)
        second = privacy_experiment(n=40, ks=(1, 2), store=resumed)
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError):
            privacy_experiment(ks=())
        with pytest.raises(ValueError):
            privacy_experiment(epsilon=0.0)


class TestRunnersNeverMutateAlgorithms:
    """Regression: ``backend=`` used to be written onto the caller's
    anonymizer instance, silently reconfiguring it for later calls."""

    def test_ratio_experiment_leaves_backend_alone(self):
        algorithm = CenterCoverAnonymizer()
        assert algorithm.backend is None
        ratio_experiment(algorithm, k=2, n=6, trials=2, backend="python")
        assert algorithm.backend is None

    def test_k_sweep_leaves_backend_alone(self):
        table = uniform_table(20, 3, alphabet_size=3, seed=4)
        algorithm = CenterCoverAnonymizer(backend="python")
        k_sweep(table, ks=(2, 3), algorithm=algorithm, backend="numpy")
        assert algorithm.backend == "python"

    def test_comparison_leaves_factories_products_alone(self):
        table = uniform_table(12, 3, alphabet_size=3, seed=5)
        built = []

        def factory():
            algorithm = CenterCoverAnonymizer()
            built.append(algorithm)
            return algorithm

        comparison(table, 2, {"center": factory}, backend="python")
        assert built and all(a.backend is None for a in built)
