"""Tests for the programmatic experiment runners."""

import pytest

from repro.algorithms import CenterCoverAnonymizer, GreedyCoverAnonymizer
from repro.experiments import (
    RatioRow,
    comparison,
    k_sweep,
    ratio_experiment,
    threshold_experiment,
)
from repro.workloads import uniform_table


class TestRatioExperiment:
    def test_greedy_within_bound(self):
        exp = ratio_experiment(GreedyCoverAnonymizer(), k=2, n=8, trials=6)
        assert exp.within_bound
        assert exp.algorithm == "greedy_cover"
        assert len(exp.rows) == 6
        assert 1.0 <= exp.mean_ratio <= exp.max_ratio

    def test_center_within_bound(self):
        exp = ratio_experiment(CenterCoverAnonymizer(), k=2, n=8, trials=6)
        assert exp.within_bound
        assert exp.bound > 1

    def test_ratio_row_semantics(self):
        assert RatioRow(0, 4, 6).ratio == 1.5
        assert RatioRow(0, 0, 0).ratio == 1.0
        assert RatioRow(0, 0, 3).ratio == float("inf")

    def test_deterministic(self):
        a = ratio_experiment(CenterCoverAnonymizer(), k=2, n=7, trials=4)
        b = ratio_experiment(CenterCoverAnonymizer(), k=2, n=7, trials=4)
        assert a.rows == b.rows


class TestThresholdExperiment:
    @pytest.mark.parametrize("kind", ["entries", "attributes"])
    @pytest.mark.parametrize("with_matching", [True, False])
    def test_theorem_consistency(self, kind, with_matching):
        result = threshold_experiment(
            kind=kind, with_matching=with_matching, seed=3
        )
        assert result.has_matching == with_matching
        assert result.consistent_with_theorem

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            threshold_experiment(kind="nonsense")


class TestSweepAndComparison:
    def test_k_sweep_monotone_cost(self):
        table = uniform_table(40, 4, alphabet_size=3, seed=0)
        points = k_sweep(table, ks=(2, 4, 8))
        assert [p.k for p in points] == [2, 4, 8]
        assert points[0].stars <= points[-1].stars * 1.25
        assert all(0 <= p.precision <= 1 for p in points)

    def test_comparison_default_algorithms(self):
        table = uniform_table(24, 4, alphabet_size=3, seed=1)
        costs = comparison(table, 3)
        assert set(costs) >= {"center_cover", "mondrian", "random"}
        assert all(cost >= 0 for cost in costs.values())
        assert costs["center_cover"] <= costs["random"]

    def test_comparison_custom_algorithms(self):
        table = uniform_table(12, 3, alphabet_size=3, seed=2)
        costs = comparison(
            table, 2, {"only_center": CenterCoverAnonymizer}
        )
        assert list(costs) == ["only_center"]
