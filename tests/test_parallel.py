"""Tests for the process-parallel trial executor.

The contract under test: ``jobs=N`` is an execution detail, never an
observable one — results are bit-identical to a serial run, traces come
back from worker processes, and a worker raising
:class:`BudgetExceededError` surfaces in the caller without orphaning
the pool.
"""

import pytest

from repro.algorithms import (
    CenterCoverAnonymizer,
    ExactAnonymizer,
    SimulatedAnnealingAnonymizer,
)
from repro.experiments import (
    comparison,
    k_sweep,
    ratio_experiment,
    ratio_table,
    threshold_sweep,
    trial_seed_sequence,
)
from repro.instrument import BudgetExceededError
from repro.workloads import uniform_table


class TestSeedDerivation:
    def test_trial_seeds_are_prefix_stable(self):
        """Trial t's seed depends only on (base_seed, t) — resuming or
        extending a sweep never reshuffles earlier trials."""
        a = trial_seed_sequence(7, 3).generate_state(4)
        b = trial_seed_sequence(7, 3).generate_state(4)
        assert list(a) == list(b)
        assert list(a) != list(trial_seed_sequence(7, 4).generate_state(4))
        assert list(a) != list(trial_seed_sequence(8, 3).generate_state(4))

    def test_ratio_table_deterministic(self):
        a = ratio_table(0, 5, 8, 4, 3)
        b = ratio_table(0, 5, 8, 4, 3)
        assert a.rows == b.rows


class TestSerialParallelParity:
    def test_ratio_experiment_bit_identical(self):
        serial = ratio_experiment(
            CenterCoverAnonymizer(), k=2, n=7, trials=4, jobs=1
        )
        parallel = ratio_experiment(
            CenterCoverAnonymizer(), k=2, n=7, trials=4, jobs=4
        )
        assert serial == parallel

    def test_stateful_algorithm_bit_identical(self):
        """Annealing advances its RNG across calls; both paths must run
        every trial on a fresh copy or scheduling order would leak into
        the results."""
        serial = ratio_experiment(
            SimulatedAnnealingAnonymizer(seed=7), k=2, n=6, trials=3,
            jobs=1,
        )
        parallel = ratio_experiment(
            SimulatedAnnealingAnonymizer(seed=7), k=2, n=6, trials=3,
            jobs=2,
        )
        assert serial == parallel

    def test_k_sweep_bit_identical(self):
        table = uniform_table(20, 3, alphabet_size=3, seed=1)
        assert k_sweep(table, ks=(2, 3, 4), jobs=1) == k_sweep(
            table, ks=(2, 3, 4), jobs=2
        )

    def test_comparison_bit_identical_and_ordered(self):
        table = uniform_table(16, 3, alphabet_size=3, seed=1)
        serial = comparison(table, 2, jobs=1)
        parallel = comparison(table, 2, jobs=2)
        assert serial == parallel
        assert list(serial) == list(parallel)

    def test_threshold_sweep_bit_identical(self):
        cases = ((True, 0), (False, 0))
        assert threshold_sweep(
            kind="entries", cases=cases, jobs=1
        ) == threshold_sweep(kind="entries", cases=cases, jobs=2)


class TestWorkerBehaviour:
    def test_traces_collected_from_workers(self):
        exp = ratio_experiment(
            CenterCoverAnonymizer(), k=2, n=6, trials=2, trace=True,
            jobs=2,
        )
        assert len(exp.traces) == 2
        assert all(t["algorithm"] == "center_cover" for t in exp.traces)

    def test_budget_error_surfaces_cleanly(self):
        """An exact solver blowing its budget inside a worker raises the
        same BudgetExceededError the serial path would, and the pool
        shuts down (the call returns promptly instead of hanging)."""
        with pytest.raises(BudgetExceededError):
            ratio_experiment(
                ExactAnonymizer(), k=3, n=12, m=6, sigma=2, trials=4,
                timeout=0.001, jobs=2,
            )

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            ratio_experiment(CenterCoverAnonymizer(), k=2, n=6, trials=2,
                             jobs=0)

    def test_caller_instance_not_mutated_by_parallel_run(self):
        algorithm = CenterCoverAnonymizer()
        ratio_experiment(algorithm, k=2, n=6, trials=2, jobs=2,
                         backend="python")
        assert algorithm.backend is None
