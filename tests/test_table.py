"""Tests for repro.core.table.Table."""

import numpy as np
import pytest

from repro.core.alphabet import STAR
from repro.core.table import Table, rows_as_int_array


class TestConstruction:
    def test_basic(self):
        t = Table([(1, 2), (3, 4)])
        assert t.n_rows == 2
        assert t.degree == 2
        assert t.attributes == ("a0", "a1")

    def test_rows_coerced_to_tuples(self):
        t = Table([[1, 2], [3, 4]])
        assert t[0] == (1, 2)

    def test_named_attributes(self):
        t = Table([(1,)], attributes=["age"])
        assert t.attributes == ("age",)

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="degree"):
            Table([(1, 2), (3,)])

    def test_attribute_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Table([(1, 2)], attributes=["only_one"])

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            Table([(1, 2)], attributes=["x", "x"])

    def test_empty_table_with_attributes(self):
        t = Table([], attributes=["a", "b"])
        assert t.n_rows == 0
        assert t.degree == 2

    def test_empty_table_no_attributes(self):
        t = Table([])
        assert t.n_rows == 0
        assert t.degree == 0

    def test_duplicates_preserved(self):
        t = Table([(1,), (1,), (1,)])
        assert t.n_rows == 3

    def test_from_dicts(self):
        t = Table.from_dicts(
            [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        )
        assert t.attributes == ("a", "b")
        assert t.rows == ((1, 2), (3, 4))

    def test_from_dicts_explicit_order(self):
        t = Table.from_dicts([{"a": 1, "b": 2}], attributes=["b", "a"])
        assert t.rows == ((2, 1),)

    def test_from_dicts_empty_needs_attributes(self):
        with pytest.raises(ValueError):
            Table.from_dicts([])
        assert Table.from_dicts([], attributes=["a"]).degree == 1


class TestCsv:
    def test_roundtrip(self):
        t = Table([("x", "1"), ("y", "2")], attributes=["name", "val"])
        again = Table.from_csv(t.to_csv())
        assert again == t

    def test_star_roundtrip(self):
        t = Table([("x", STAR)], attributes=["name", "val"])
        again = Table.from_csv(t.to_csv())
        assert again[0][1] is STAR

    def test_custom_star_token(self):
        t = Table([(STAR,)], attributes=["v"])
        text = t.to_csv(star_token="<hidden>")
        assert "<hidden>" in text
        again = Table.from_csv(text, star_token="<hidden>")
        assert again[0][0] is STAR

    def test_headerless(self):
        t = Table([("a", "b")])
        text = t.to_csv(header=False)
        again = Table.from_csv(text, header=False)
        assert again.rows == t.rows

    def test_empty_csv_rejected(self):
        with pytest.raises(ValueError):
            Table.from_csv("")

    def test_literal_star_string_becomes_suppressed(self):
        # A CSV cannot distinguish a data value "*" from suppression;
        # by convention the token parses as suppression.
        t = Table.from_csv("v\n*\n")
        assert t[0][0] is STAR


class TestAccessors:
    def test_iteration_and_indexing(self):
        t = Table([(1,), (2,)])
        assert list(t) == [(1,), (2,)]
        assert t[1] == (2,)
        assert len(t) == 2

    def test_column_by_name_and_index(self):
        t = Table([(1, "a"), (2, "b")], attributes=["num", "sym"])
        assert t.column("sym") == ("a", "b")
        assert t.column(0) == (1, 2)

    def test_attribute_index_unknown(self):
        with pytest.raises(KeyError):
            Table([(1,)], attributes=["x"]).attribute_index("nope")

    def test_total_cells(self):
        assert Table([(1, 2, 3)] * 4).total_cells() == 12


class TestDerivedViews:
    def test_project_by_name(self):
        t = Table([(1, "a", True)], attributes=["n", "s", "b"])
        p = t.project(["b", "n"])
        assert p.attributes == ("b", "n")
        assert p.rows == ((True, 1),)

    def test_project_by_index(self):
        t = Table([(1, 2, 3)])
        assert t.project([2, 0]).rows == ((3, 1),)

    def test_select_rows(self):
        t = Table([(i,) for i in range(5)])
        assert t.select_rows([3, 1]).rows == ((3,), (1,))

    def test_with_rows_keeps_schema(self):
        t = Table([(1,)], attributes=["x"])
        t2 = t.with_rows([(9,), (8,)])
        assert t2.attributes == ("x",)
        assert t2.n_rows == 2

    def test_row_multiset(self):
        t = Table([(1,), (2,), (1,)])
        assert t.row_multiset() == {(1,): 2, (2,): 1}

    def test_distinct_rows_order(self):
        t = Table([(2,), (1,), (2,), (3,)])
        assert t.distinct_rows() == ((2,), (1,), (3,))

    def test_alphabets(self):
        t = Table([(1, "a"), (2, "a")])
        alphabets = t.alphabets()
        assert alphabets[0].values == (1, 2)
        assert alphabets[1].values == ("a",)


class TestDunder:
    def test_equality_includes_schema(self):
        assert Table([(1,)], attributes=["a"]) != Table([(1,)], attributes=["b"])
        assert Table([(1,)]) == Table([(1,)])

    def test_equality_other_type(self):
        assert Table([(1,)]) != [(1,)]

    def test_hash_consistent(self):
        assert hash(Table([(1,)])) == hash(Table([(1,)]))

    def test_repr(self):
        assert repr(Table([(1, 2)])) == "Table(n_rows=1, degree=2)"

    def test_pretty_contains_values_and_stars(self):
        text = Table([(1, STAR)], attributes=["a", "b"]).pretty()
        assert "1" in text and "*" in text and "a" in text

    def test_pretty_truncates(self):
        text = Table([(i,) for i in range(50)]).pretty(max_rows=3)
        assert "more rows" in text


class TestIntArray:
    def test_encoding_shape_and_values(self):
        t = Table([("x", 10), ("y", 10), ("x", 20)])
        arr = rows_as_int_array(t)
        assert arr.shape == (3, 2)
        assert arr[0, 0] == arr[2, 0] == 0
        assert arr[1, 0] == 1
        assert arr[2, 1] == 1

    def test_rejects_stars(self):
        with pytest.raises(ValueError, match="suppressed"):
            rows_as_int_array(Table([(STAR,)]))

    def test_distances_match_python(self):
        from repro.core.distance import distance

        rng = np.random.default_rng(0)
        data = rng.integers(0, 3, size=(6, 4))
        t = Table([tuple(int(v) for v in row) for row in data])
        arr = rows_as_int_array(t)
        for i in range(6):
            for j in range(6):
                assert int((arr[i] != arr[j]).sum()) == distance(t[i], t[j])
