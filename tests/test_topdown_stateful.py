"""Tests for the top-down greedy splitter, plus stateful (model-based)
testing of the incremental anonymizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.algorithms import TopDownGreedyAnonymizer
from repro.algorithms.incremental import IncrementalAnonymizer
from repro.core.alphabet import STAR
from repro.core.anonymity import is_k_anonymous
from repro.core.table import Table

from .conftest import random_table


class TestTopDownGreedy:
    def test_valid_output(self):
        t = random_table(np.random.default_rng(0), 22, 4, 3)
        result = TopDownGreedyAnonymizer().anonymize(t, 3)
        assert result.is_valid(t)

    def test_finds_planted_clusters(self):
        from repro.workloads import planted_groups_table

        t = planted_groups_table(6, 3, 5, noise=0.0, seed=1)
        result = TopDownGreedyAnonymizer().anonymize(t, 3)
        assert result.stars == 0

    def test_identical_rows_never_split(self):
        t = Table([(1, 1)] * 9)
        result = TopDownGreedyAnonymizer().anonymize(t, 3)
        assert result.extras["splits"] == 0
        assert result.stars == 0

    def test_splits_recorded(self):
        t = Table([(0, 0)] * 3 + [(9, 9)] * 3)
        result = TopDownGreedyAnonymizer().anonymize(t, 3)
        assert result.extras["splits"] == 1
        assert result.extras["groups"] == 2

    def test_empty_and_infeasible(self):
        from repro.algorithms.base import InfeasibleAnonymizationError

        assert TopDownGreedyAnonymizer().anonymize(Table([]), 2).stars == 0
        with pytest.raises(InfeasibleAnonymizationError):
            TopDownGreedyAnonymizer().anonymize(Table([(1,)]), 2)

    def test_never_beats_exact(self):
        from repro.algorithms.exact import optimal_anonymization

        for seed in range(5):
            t = random_table(np.random.default_rng(seed), 9, 3, 3)
            opt, _ = optimal_anonymization(t, 3)
            assert TopDownGreedyAnonymizer().anonymize(t, 3).stars >= opt

    def test_beats_single_group_when_structure_exists(self):
        from repro.core.distance import anon_cost

        t = Table([(0, 0, 0)] * 4 + [(7, 7, 7)] * 4)
        result = TopDownGreedyAnonymizer().anonymize(t, 4)
        assert result.stars < anon_cost(list(t.rows))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 4))
    def test_always_valid(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 28))
        t = random_table(rng, n, 3, 3)
        result = TopDownGreedyAnonymizer().anonymize(t, k)
        assert result.is_valid(t)


class IncrementalMachine(RuleBasedStateMachine):
    """Model-based test: arbitrary insert sequences never violate the
    snapshot invariants."""

    def __init__(self):
        super().__init__()
        self.k = 2
        self.inc = IncrementalAnonymizer(k=self.k, degree=2)
        self.previous_settled_rows: dict[int, tuple] = {}

    @initialize()
    def start(self):
        pass

    @rule(a=st.integers(0, 2), b=st.integers(0, 2))
    def insert_row(self, a, b):
        self.inc.insert([(a, b)])

    @rule(
        rows=st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2)),
            min_size=1, max_size=4,
        )
    )
    def insert_batch(self, rows):
        self.inc.insert(rows)

    @invariant()
    def snapshot_publishable(self):
        assert self.inc.is_publishable()

    @invariant()
    def settled_rows_k_anonymous(self):
        snapshot = self.inc.released()
        settled = [
            i for i in range(snapshot.n_rows) if i in self.inc._group_of
        ]
        if settled:
            assert is_k_anonymous(snapshot.select_rows(settled), self.k)

    @invariant()
    def disclosure_is_monotone(self):
        snapshot = self.inc.released()
        for i, old_row in self.previous_settled_rows.items():
            new_row = snapshot.rows[i]
            for old_value, new_value in zip(old_row, new_row):
                if old_value is STAR:
                    assert new_value is STAR
        self.previous_settled_rows = {
            i: snapshot.rows[i]
            for i in range(snapshot.n_rows)
            if i in self.inc._group_of
        }


TestIncrementalStateful = IncrementalMachine.TestCase
TestIncrementalStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
