"""Tests for Incognito lattice search and weighted suppression."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.table import Table
from repro.core.weights import (
    check_weights,
    optimal_weighted_anonymization,
    weighted_anon_cost,
    weighted_cluster_partition,
    weighted_star_cost,
)
from repro.generalization import (
    GeneralizationLattice,
    Hierarchy,
    best_incognito_node,
    incognito,
    samarati,
)

from .conftest import random_table


@pytest.fixture
def hierarchies():
    return [
        Hierarchy.suppression(["a", "b", "c"]),
        Hierarchy.from_nested({"*": {"x": ["1", "2"], "y": ["3", "4"]}}),
    ]


@pytest.fixture
def table():
    return Table(
        [("a", "1"), ("b", "2"), ("a", "3"), ("b", "4"), ("a", "1"),
         ("b", "2")]
    )


class TestIncognito:
    def test_minimal_nodes_satisfy(self, table, hierarchies):
        lattice = GeneralizationLattice(hierarchies)
        for node in incognito(table, hierarchies, 2):
            assert lattice.satisfies(table, node, 2)

    def test_minimality(self, table, hierarchies):
        lattice = GeneralizationLattice(hierarchies)
        minimal = incognito(table, hierarchies, 2)
        for node in minimal:
            for j in range(len(node)):
                if node[j] > 0:
                    below = node[:j] + (node[j] - 1,) + node[j + 1:]
                    assert not lattice.satisfies(table, below, 2), (
                        f"{node} not minimal: {below} also satisfies"
                    )

    def test_antichain(self, table, hierarchies):
        minimal = incognito(table, hierarchies, 2)
        for a in minimal:
            for b in minimal:
                if a != b:
                    assert not all(x <= y for x, y in zip(a, b))

    def test_completeness_against_exhaustive(self, table, hierarchies):
        """Incognito's frontier == brute-force minimal satisfying set."""
        lattice = GeneralizationLattice(hierarchies)
        from itertools import product

        all_nodes = list(
            product(*(range(h.height + 1) for h in hierarchies))
        )
        satisfying = {
            node for node in all_nodes if lattice.satisfies(table, node, 2)
        }
        exhaustive_minimal = {
            node for node in satisfying
            if not any(
                other != node and all(x <= y for x, y in zip(other, node))
                for other in satisfying
            )
        }
        assert set(incognito(table, hierarchies, 2)) == exhaustive_minimal

    def test_agrees_with_samarati_height(self, table, hierarchies):
        _, height = samarati(table, hierarchies, 2)
        minimal = incognito(table, hierarchies, 2)
        assert min(sum(node) for node in minimal) == height

    def test_best_node_satisfies(self, table, hierarchies):
        lattice = GeneralizationLattice(hierarchies)
        node = best_incognito_node(table, hierarchies, 2)
        assert lattice.satisfies(table, node, 2)

    def test_bottom_satisfying_short_circuit(self, hierarchies):
        t = Table([("a", "1")] * 4)
        assert incognito(t, hierarchies, 2) == [(0, 0)]

    def test_infeasible(self, hierarchies):
        t = Table([("a", "1")])
        with pytest.raises(ValueError, match="full generalization"):
            incognito(t, hierarchies, 2)

    def test_max_suppression_allowance(self, hierarchies):
        t = Table([("a", "1"), ("a", "1"), ("b", "4")])
        strict = incognito(t, hierarchies, 2)
        relaxed = incognito(t, hierarchies, 2, max_suppressed_rows=1)
        assert min(sum(n) for n in relaxed) <= min(sum(n) for n in strict)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_random_tables_frontier_correct(self, seed):
        import numpy as np

        hierarchies = [
            Hierarchy.suppression(["a", "b", "c"]),
            Hierarchy.from_nested({"*": {"x": ["1", "2"], "y": ["3", "4"]}}),
        ]
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 10))
        rows = [
            (["a", "b", "c"][int(rng.integers(0, 3))],
             str(int(rng.integers(1, 5))))
            for _ in range(n)
        ]
        t = Table(rows)
        lattice = GeneralizationLattice(hierarchies)
        minimal = incognito(t, hierarchies, 2)
        for node in minimal:
            assert lattice.satisfies(t, node, 2)


class TestWeights:
    def test_check_weights(self):
        assert check_weights([1, 2.5], 2) == (1.0, 2.5)
        with pytest.raises(ValueError, match="weights for degree"):
            check_weights([1], 2)
        with pytest.raises(ValueError, match="positive"):
            check_weights([1, 0], 2)

    def test_weighted_anon_cost(self):
        rows = [(0, 0), (0, 1)]
        assert weighted_anon_cost(rows, [1, 10]) == 20.0
        assert weighted_anon_cost(rows, [1, 1]) == 2.0
        assert weighted_anon_cost([], [1, 1]) == 0.0

    def test_weighted_star_cost(self):
        from repro.core.alphabet import STAR

        t = Table([(STAR, 1), (2, STAR)])
        assert weighted_star_cost(t, [3, 5]) == 8.0

    def test_unit_weights_match_unweighted_exact(self):
        import numpy as np

        from repro.algorithms.exact import optimal_anonymization

        for seed in range(5):
            t = random_table(np.random.default_rng(seed), 8, 3, 3)
            unweighted, _ = optimal_anonymization(t, 2)
            weighted, _ = optimal_weighted_anonymization(t, 2, [1, 1, 1])
            assert weighted == pytest.approx(unweighted)

    def test_weights_change_the_optimal_grouping(self):
        # pairing that stars the cheap column wins under skewed weights
        t = Table([(0, 0), (0, 1), (1, 0), (1, 1)])
        _, cheap_second = optimal_weighted_anonymization(t, 2, [100, 1])
        # groups must agree on coordinate 0 (expensive): {0,1} and {2,3}
        assert {frozenset({0, 1}), frozenset({2, 3})} == set(
            cheap_second.groups
        )
        _, cheap_first = optimal_weighted_anonymization(t, 2, [1, 100])
        assert {frozenset({0, 2}), frozenset({1, 3})} == set(
            cheap_first.groups
        )

    def test_weighted_optimal_cost_reproduced_by_partition(self):
        import numpy as np

        t = random_table(np.random.default_rng(3), 8, 3, 3)
        weights = [1.0, 2.0, 4.0]
        opt, partition = optimal_weighted_anonymization(t, 2, weights)
        from repro.core.partition import anonymize_partition

        anonymized, _ = anonymize_partition(t, partition)
        assert weighted_star_cost(anonymized, weights) == pytest.approx(opt)

    def test_weighted_cluster_valid_and_no_better_than_exact(self):
        import numpy as np

        t = random_table(np.random.default_rng(4), 9, 3, 3)
        weights = [5.0, 1.0, 1.0]
        partition = weighted_cluster_partition(t, 3, weights)
        partition.validate()
        opt, _ = optimal_weighted_anonymization(t, 3, weights)
        from repro.core.partition import anonymize_partition

        anonymized, _ = anonymize_partition(t, partition)
        assert weighted_star_cost(anonymized, weights) >= opt - 1e-9

    def test_weighted_edge_cases(self):
        assert optimal_weighted_anonymization(Table([]), 2, [])[0] == 0.0
        with pytest.raises(ValueError):
            optimal_weighted_anonymization(Table([(1,)]), 2, [1.0])
        with pytest.raises(ValueError):
            optimal_weighted_anonymization(Table([(1,)]), 0, [1.0])
        with pytest.raises(ValueError):
            weighted_cluster_partition(Table([(1,)]), 2, [1.0])
        assert len(weighted_cluster_partition(Table([]), 2, [])) == 0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_scaling_weights_scales_cost(self, seed):
        """WOPT(c * w) == c * WOPT(w): the objective is homogeneous."""
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 8))
        t = random_table(rng, n, 3, 3)
        base, _ = optimal_weighted_anonymization(t, 2, [1, 2, 3])
        scaled, _ = optimal_weighted_anonymization(t, 2, [2, 4, 6])
        assert scaled == pytest.approx(2 * base)
