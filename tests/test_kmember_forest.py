"""Tests for the k-member clustering and MST-forest anonymizers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import InfeasibleAnonymizationError
from repro.algorithms.forest import (
    MSTForestAnonymizer,
    _decompose,
    _minimum_spanning_tree,
)
from repro.algorithms.kmember import KMemberAnonymizer
from repro.core.table import Table

from .conftest import random_table


class TestKMember:
    def test_valid_output(self):
        import numpy as np

        t = random_table(np.random.default_rng(0), 17, 4, 3)
        result = KMemberAnonymizer().anonymize(t, 4)
        assert result.is_valid(t)

    def test_finds_natural_pairs(self):
        t = Table([(0, 0), (0, 1), (5, 5), (5, 6)])
        result = KMemberAnonymizer().anonymize(t, 2)
        assert result.stars == 4

    def test_cluster_count(self):
        import numpy as np

        t = random_table(np.random.default_rng(1), 13, 3, 3)
        result = KMemberAnonymizer().anonymize(t, 4)
        assert result.extras["clusters"] == 3

    def test_leftovers_absorbed(self):
        import numpy as np

        t = random_table(np.random.default_rng(2), 11, 3, 3)
        result = KMemberAnonymizer().anonymize(t, 3)
        assert result.partition is not None
        assert all(len(g) >= 3 for g in result.partition.groups)
        assert sum(len(g) for g in result.partition.groups) == 11

    def test_empty_and_infeasible(self):
        assert KMemberAnonymizer().anonymize(Table([]), 2).stars == 0
        with pytest.raises(InfeasibleAnonymizationError):
            KMemberAnonymizer().anonymize(Table([(1,)]), 2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 4))
    def test_always_valid(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 20))
        t = random_table(rng, n, 3, 3)
        assert KMemberAnonymizer().anonymize(t, k).is_valid(t)


class TestMSTInternals:
    def test_mst_of_path(self):
        dist = [
            [0, 1, 9],
            [1, 0, 1],
            [9, 1, 0],
        ]
        adjacency = _minimum_spanning_tree(dist)
        assert sorted(adjacency[1]) == [0, 2]
        assert adjacency[0] == [1]

    def test_mst_edge_count(self):
        import numpy as np

        from repro.core.distance import pairwise_distance_matrix

        t = random_table(np.random.default_rng(0), 10, 4, 3)
        adjacency = _minimum_spanning_tree(pairwise_distance_matrix(t))
        assert sum(len(a) for a in adjacency) == 2 * (10 - 1)

    def test_mst_trivial_sizes(self):
        assert _minimum_spanning_tree([]) == []
        assert _minimum_spanning_tree([[0]]) == [[]]

    def test_decompose_star_graph(self):
        # vertex 0 adjacent to 1..5
        adjacency = [[1, 2, 3, 4, 5], [0], [0], [0], [0], [0]]
        components = _decompose(adjacency, 2)
        sizes = sorted(len(c) for c in components)
        assert sum(sizes) == 6
        assert all(size >= 2 for size in sizes)

    def test_decompose_path(self):
        adjacency = [[1], [0, 2], [1, 3], [2, 4], [3]]
        components = _decompose(adjacency, 2)
        assert sum(len(c) for c in components) == 5
        assert all(len(c) >= 2 for c in components)

    def test_decompose_empty(self):
        assert _decompose([], 2) == []

    def test_decompose_small_tree_single_component(self):
        adjacency = [[1], [0]]
        components = _decompose(adjacency, 3)
        assert components == [[1, 0]] or components == [[0, 1]]


class TestMSTForest:
    def test_valid_output(self):
        import numpy as np

        t = random_table(np.random.default_rng(0), 21, 4, 3)
        result = MSTForestAnonymizer().anonymize(t, 4)
        assert result.is_valid(t)

    def test_cluster_structure_found(self):
        t = Table([(0, 0), (0, 1), (9, 9), (9, 8)])
        assert MSTForestAnonymizer().anonymize(t, 2).stars == 4

    def test_groups_in_range(self):
        import numpy as np

        t = random_table(np.random.default_rng(1), 23, 3, 3)
        result = MSTForestAnonymizer().anonymize(t, 3)
        assert result.partition is not None
        assert all(3 <= len(g) <= 5 for g in result.partition.groups)

    def test_empty_and_infeasible(self):
        assert MSTForestAnonymizer().anonymize(Table([]), 2).stars == 0
        with pytest.raises(InfeasibleAnonymizationError):
            MSTForestAnonymizer().anonymize(Table([(1,)]), 2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 4))
    def test_always_valid(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 25))
        t = random_table(rng, n, 3, 3)
        assert MSTForestAnonymizer().anonymize(t, k).is_valid(t)

    def test_competitive_with_random_on_clustered_data(self):
        from repro.algorithms.baselines import RandomPartitionAnonymizer
        from repro.workloads import planted_groups_table

        t = planted_groups_table(8, 3, 6, noise=0.05, seed=0)
        forest = MSTForestAnonymizer().anonymize(t, 3).stars
        random_cost = RandomPartitionAnonymizer(seed=0).anonymize(t, 3).stars
        assert forest <= random_cost
