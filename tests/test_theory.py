"""Tests for repro.theory: bound formulas and certified inequalities."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.exact import optimal_anonymization
from repro.core.partition import Partition
from repro.core.table import Table
from repro.theory import (
    check_figure_1,
    check_lemma_4_1,
    diameter_lower_bound,
    greedy_cover_ratio,
    harmonic,
    theorem_4_1_ratio,
    theorem_4_2_ratio,
)

from .conftest import random_table


class TestFormulas:
    def test_harmonic_values(self):
        assert harmonic(1) == 1.0
        assert harmonic(2) == 1.5
        assert harmonic(0) == 0.0

    def test_harmonic_close_to_log(self):
        assert abs(harmonic(1000) - (math.log(1000) + 0.5772)) < 0.01

    def test_greedy_cover_ratio(self):
        assert greedy_cover_ratio(1) == 1.0
        assert greedy_cover_ratio(math.e.__ceil__()) > 2.0
        with pytest.raises(ValueError):
            greedy_cover_ratio(0)

    def test_theorem_4_1_values(self):
        # 3k(1 + ln 2k): for k=3, 9 * (1 + ln 6)
        assert theorem_4_1_ratio(3) == pytest.approx(9 * (1 + math.log(6)))
        with pytest.raises(ValueError):
            theorem_4_1_ratio(0)

    def test_theorem_4_2_values(self):
        assert theorem_4_2_ratio(3, 8) == pytest.approx(18 * (1 + math.log(8)))
        with pytest.raises(ValueError):
            theorem_4_2_ratio(3, 0)

    def test_ratios_grow_with_k(self):
        assert theorem_4_1_ratio(5) > theorem_4_1_ratio(2)
        assert theorem_4_2_ratio(5, 4) > theorem_4_2_ratio(2, 4)


class TestLemma41:
    def test_hand_instance(self):
        t = Table([(0, 0), (0, 1), (5, 5), (5, 5)])
        p = Partition([{0, 1}, {2, 3}], n_rows=4, k=2)
        opt, _ = optimal_anonymization(t, 2)
        report = check_lemma_4_1(t, p, opt)
        assert report.holds
        assert report.diameter_sum == 1
        assert report.opt == opt == 2

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_sandwich_on_random_instances(self, seed, k):
        """Lemma 4.1 verified against the DP optimum and the partition
        the DP itself produces (which is diameter-reasonable)."""
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 9))
        t = random_table(rng, n, 3, 3)
        opt, partition = optimal_anonymization(t, k)
        report = check_lemma_4_1(t, partition, opt)
        # The lower bound uses the *minimum* diameter-sum partition; the
        # DP partition's diameter sum is only an upper bound on that
        # minimum, so we check the universally valid directions:
        assert report.partition_cost >= opt
        assert report.upper_ok

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_lower_bound_via_min_diameter_partition(self, seed, k):
        """k * min-diameter-sum <= OPT, with the true minimizer found by
        brute force over partitions (small n)."""
        import numpy as np
        from itertools import combinations

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 7))
        t = random_table(rng, n, 3, 3)
        opt, _ = optimal_anonymization(t, k)

        best = math.inf

        def partitions(items):
            if not items:
                yield []
                return
            first, rest = items[0], items[1:]
            for size in range(k - 1, min(2 * k - 1, len(items))):
                if 0 < len(rest) - size < k:
                    continue
                for mates in combinations(rest, size):
                    group = frozenset((first, *mates))
                    remaining = [i for i in rest if i not in group]
                    for tail in partitions(remaining):
                        yield [group] + tail

        from repro.core.distance import diameter_of

        for p in partitions(list(range(n))):
            best = min(best, sum(diameter_of(t, g) for g in p))
        assert k * best <= opt

    def test_diameter_lower_bound_helper(self):
        t = Table([(0, 0), (1, 1), (0, 0), (1, 1)])
        p = Partition([{0, 2}, {1, 3}], n_rows=4, k=2)
        assert diameter_lower_bound(t, p) == 0


class TestFigure1:
    def test_triangle_on_overlapping_groups(self):
        t = Table([(0, 0, 0), (1, 1, 0), (1, 1, 1)])
        assert check_figure_1(t, frozenset({0, 1}), frozenset({1, 2}))

    def test_requires_overlap(self):
        t = Table([(0,), (1,), (2,)])
        with pytest.raises(ValueError, match="overlap"):
            check_figure_1(t, frozenset({0}), frozenset({1}))

    @settings(max_examples=50)
    @given(st.integers(0, 10 ** 6))
    def test_random_overlapping_groups(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 10))
        t = random_table(rng, n, 4, 3)
        shared = int(rng.integers(0, n))
        a = frozenset({shared} | {int(i) for i in rng.choice(n, size=2)})
        b = frozenset({shared} | {int(i) for i in rng.choice(n, size=2)})
        assert check_figure_1(t, a, b)
