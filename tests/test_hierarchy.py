"""Tests for value generalization hierarchies."""

import pytest

from repro.generalization.hierarchy import Hierarchy


@pytest.fixture
def race() -> Hierarchy:
    return Hierarchy.from_nested({"*": {"person": ["Afr-Am", "Cauc", "Hisp"]}})


@pytest.fixture
def geo() -> Hierarchy:
    return Hierarchy.from_nested(
        {
            "World": {
                "Europe": {"France": ["Paris", "Lyon"], "Italy": ["Rome", "Milan"]},
                "America": {"USA": ["NYC", "LA"], "Brazil": ["Rio", "SP"]},
            }
        }
    )


class TestConstruction:
    def test_height(self, race, geo):
        assert race.height == 2
        assert geo.height == 3

    def test_leaves(self, geo):
        assert set(geo.leaves) == {"Paris", "Lyon", "Rome", "Milan",
                                   "NYC", "LA", "Rio", "SP"}

    def test_suppression_factory(self):
        h = Hierarchy.suppression(["a", "b", "c"])
        assert h.height == 1
        assert h.generalize("b", 1) == "*"

    def test_mixed_depths_rejected(self):
        with pytest.raises(ValueError, match="mixed depths"):
            Hierarchy.from_nested({"*": {"deep": {"deeper": ["x"]}, "shallow": ["y"]}})

    def test_nested_needs_single_root(self):
        with pytest.raises(ValueError, match="one root"):
            Hierarchy.from_nested({"a": ["x"], "b": ["y"]})

    def test_root_with_parent_rejected(self):
        with pytest.raises(ValueError, match="root"):
            Hierarchy({"root": "x", "leaf": "root"}, "root")

    def test_disconnected_node_rejected(self):
        with pytest.raises(ValueError):
            Hierarchy({"a": "orphan_parent", "b": "*"}, "*")

    def test_no_leaves_rejected(self):
        with pytest.raises(ValueError):
            Hierarchy({}, "*")


class TestQueries:
    def test_level_of(self, geo):
        assert geo.level_of("Paris") == 0
        assert geo.level_of("France") == 1
        assert geo.level_of("Europe") == 2
        assert geo.level_of("World") == 3

    def test_level_of_unknown(self, geo):
        with pytest.raises(KeyError):
            geo.level_of("Atlantis")

    def test_generalize_chain(self, geo):
        assert geo.generalize("Paris", 0) == "Paris"
        assert geo.generalize("Paris", 1) == "France"
        assert geo.generalize("Paris", 2) == "Europe"
        assert geo.generalize("Paris", 3) == "World"

    def test_generalize_from_inner_node(self, geo):
        assert geo.generalize("Italy", 2) == "Europe"

    def test_generalize_below_own_level_rejected(self, geo):
        with pytest.raises(ValueError):
            geo.generalize("Europe", 0)

    def test_generalize_beyond_height_rejected(self, geo):
        with pytest.raises(ValueError):
            geo.generalize("Paris", 4)

    def test_lca_level(self, geo):
        assert geo.lca_level(["Paris", "Lyon"]) == 1
        assert geo.lca_level(["Paris", "Rome"]) == 2
        assert geo.lca_level(["Paris", "NYC"]) == 3
        assert geo.lca_level(["Paris"]) == 0

    def test_lca_level_mixed_levels(self, geo):
        assert geo.lca_level(["France", "Rome"]) == 2

    def test_lca_empty_rejected(self, geo):
        with pytest.raises(ValueError):
            geo.lca_level([])

    def test_contains(self, race):
        assert "Cauc" in race
        assert "person" in race
        assert "Klingon" not in race
        assert [1, 2] not in race

    def test_repr(self, race):
        assert "height=2" in repr(race)

    def test_root_property(self, geo):
        assert geo.root == "World"
