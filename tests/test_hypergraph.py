"""Tests for repro.hardness.hypergraph."""

import pytest

from repro.hardness.hypergraph import Hypergraph


class TestConstruction:
    def test_basic(self):
        h = Hypergraph(4, [{0, 1, 2}, {1, 2, 3}])
        assert h.n_vertices == 4
        assert h.n_edges == 2
        assert h.edge(1) == frozenset({1, 2, 3})

    def test_edge_order_preserved(self):
        h = Hypergraph(3, [{2, 1, 0}, {0, 1, 2}], require_simple=False)
        assert h.edges[0] == h.edges[1]

    def test_empty_edge_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Hypergraph(3, [set()])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out-of-range"):
            Hypergraph(3, [{0, 5}])

    def test_negative_vertices_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(-1, [])

    def test_duplicate_edges_rejected_by_default(self):
        with pytest.raises(ValueError, match="repeated"):
            Hypergraph(3, [{0, 1}, {1, 0}])

    def test_duplicate_edges_allowed_when_not_simple(self):
        h = Hypergraph(3, [{0, 1}, {1, 0}], require_simple=False)
        assert not h.is_simple()


class TestQueries:
    @pytest.fixture
    def graph(self):
        return Hypergraph(6, [{0, 1, 2}, {3, 4, 5}, {0, 3, 4}])

    def test_uniformity(self, graph):
        assert graph.is_uniform(3)
        assert not graph.is_uniform(2)

    def test_incidence(self, graph):
        assert graph.incident_edges(0) == (0, 2)
        assert graph.incident_edges(5) == (1,)

    def test_degree(self, graph):
        assert graph.degree(3) == 2
        assert graph.degree(1) == 1

    def test_isolated_vertices(self):
        h = Hypergraph(4, [{0, 1}])
        assert h.isolated_vertices() == [2, 3]

    def test_no_isolated(self, graph):
        assert graph.isolated_vertices() == []

    def test_equality_and_hash(self):
        a = Hypergraph(3, [{0, 1}])
        b = Hypergraph(3, [{1, 0}])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Hypergraph(4, [{0, 1}])
        assert a != "graph"

    def test_repr(self, graph):
        assert "n_vertices=6" in repr(graph)
