"""Run every docstring example in the library as a test.

Doc examples rot silently unless executed; this harness collects the
doctests of every public module so ``pytest`` keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, __ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
)


def test_module_list_is_nontrivial():
    assert len(MODULES) > 25
    assert "repro.core.table" in MODULES
    assert "repro.algorithms.greedy_cover" in MODULES


@pytest.mark.parametrize("module_name", MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
