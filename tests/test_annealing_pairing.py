"""Tests for simulated annealing and the k=2 pair-matching algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    CenterCoverAnonymizer,
    PairMatchingAnonymizer,
    RandomPartitionAnonymizer,
    SimulatedAnnealingAnonymizer,
    minimum_weight_pairing,
)
from repro.algorithms.exact import optimal_anonymization
from repro.core.table import Table

from .conftest import random_table


class TestSimulatedAnnealing:
    def test_never_worse_than_base(self):
        import numpy as np

        for seed in range(5):
            t = random_table(np.random.default_rng(seed), 14, 4, 3)
            base = CenterCoverAnonymizer().anonymize(t, 3).stars
            annealed = SimulatedAnnealingAnonymizer(
                steps=400, seed=seed
            ).anonymize(t, 3)
            assert annealed.stars <= base
            assert annealed.is_valid(t)

    def test_escapes_bad_random_start(self):
        t = Table([(0, 0), (9, 9), (0, 0), (9, 9)])
        result = SimulatedAnnealingAnonymizer(
            inner=RandomPartitionAnonymizer(seed=1), steps=300, seed=0
        ).anonymize(t, 2)
        assert result.stars == 0

    def test_seed_determinism(self):
        import numpy as np

        t = random_table(np.random.default_rng(3), 12, 3, 3)
        a = SimulatedAnnealingAnonymizer(steps=200, seed=7).anonymize(t, 2)
        b = SimulatedAnnealingAnonymizer(steps=200, seed=7).anonymize(t, 2)
        assert a.anonymized == b.anonymized

    def test_zero_steps_returns_base(self):
        import numpy as np

        t = random_table(np.random.default_rng(4), 10, 3, 3)
        base = CenterCoverAnonymizer().anonymize(t, 2).stars
        result = SimulatedAnnealingAnonymizer(steps=0, seed=0).anonymize(t, 2)
        assert result.stars == base

    def test_single_group_passthrough(self):
        t = Table([(0,), (1,), (2,)])
        result = SimulatedAnnealingAnonymizer(seed=0).anonymize(t, 3)
        assert result.stars == 3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingAnonymizer(steps=-1)
        with pytest.raises(ValueError):
            SimulatedAnnealingAnonymizer(start_temperature=0)
        with pytest.raises(ValueError):
            SimulatedAnnealingAnonymizer(cooling=1.0)

    def test_extras(self):
        import numpy as np

        t = random_table(np.random.default_rng(5), 10, 3, 3)
        result = SimulatedAnnealingAnonymizer(steps=100, seed=0).anonymize(t, 2)
        assert result.extras["steps"] == 100
        assert "accepted_moves" in result.extras

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_property_valid(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 16))
        t = random_table(rng, n, 3, 3)
        result = SimulatedAnnealingAnonymizer(steps=150, seed=seed).anonymize(
            t, k
        )
        assert result.is_valid(t)


class TestMinimumWeightPairing:
    def test_obvious_pairs(self):
        t = Table([(0, 0), (9, 9), (0, 1), (9, 8)])
        assert minimum_weight_pairing(t) == [(0, 2), (1, 3)]

    def test_odd_rejected(self):
        with pytest.raises(ValueError, match="even"):
            minimum_weight_pairing(Table([(1,), (2,), (3,)]))

    def test_empty(self):
        assert minimum_weight_pairing(Table([])) == []

    def test_optimality_against_brute_force(self):
        """Blossom matching equals exhaustive pairing on small n."""
        import numpy as np
        from itertools import permutations

        from repro.core.distance import distance

        for seed in range(5):
            t = random_table(np.random.default_rng(seed), 6, 3, 3)
            pairs = minimum_weight_pairing(t)
            cost = sum(distance(t[a], t[b]) for a, b in pairs)

            best = min(
                sum(
                    distance(t[p[i]], t[p[i + 1]])
                    for i in range(0, 6, 2)
                )
                for p in permutations(range(6))
            )
            assert cost == best


class TestPairMatchingAnonymizer:
    def test_even_case_valid(self):
        import numpy as np

        t = random_table(np.random.default_rng(0), 12, 4, 3)
        result = PairMatchingAnonymizer().anonymize(t, 2)
        assert result.is_valid(t)
        assert all(len(g) == 2 for g in result.partition.groups)

    def test_odd_case_one_triple(self):
        import numpy as np

        t = random_table(np.random.default_rng(1), 11, 4, 3)
        result = PairMatchingAnonymizer().anonymize(t, 2)
        assert result.is_valid(t)
        sizes = sorted(len(g) for g in result.partition.groups)
        assert sizes == [2] * 4 + [3]
        assert result.extras["tripled"] is not None

    def test_rejects_other_k(self):
        with pytest.raises(ValueError, match="k = 2"):
            PairMatchingAnonymizer().anonymize(Table([(1,)] * 6), 3)

    def test_exact_on_pairs_only_instances(self):
        """When the unrestricted optimum uses only pairs, pair matching
        achieves it exactly."""
        import numpy as np

        hits = 0
        for seed in range(8):
            t = random_table(np.random.default_rng(seed), 8, 3, 3)
            opt, partition = optimal_anonymization(t, 2)
            result = PairMatchingAnonymizer().anonymize(t, 2)
            assert result.stars >= opt
            if all(len(g) == 2 for g in partition.groups):
                assert result.stars == opt
                hits += 1
        assert hits >= 1  # pairs-only optima do occur

    def test_never_beats_exact(self):
        import numpy as np

        for seed in range(6):
            t = random_table(np.random.default_rng(100 + seed), 9, 3, 3)
            opt, _ = optimal_anonymization(t, 2)
            assert PairMatchingAnonymizer().anonymize(t, 2).stars >= opt

    def test_competitive_with_center_cover(self):
        import numpy as np

        wins = 0
        for seed in range(6):
            t = random_table(np.random.default_rng(seed), 14, 4, 3)
            pair = PairMatchingAnonymizer().anonymize(t, 2).stars
            center = CenterCoverAnonymizer().anonymize(t, 2).stars
            if pair <= center:
                wins += 1
        assert wins >= 3

    def test_empty_and_infeasible(self):
        from repro.algorithms.base import InfeasibleAnonymizationError

        assert PairMatchingAnonymizer().anonymize(Table([]), 2).stars == 0
        with pytest.raises(InfeasibleAnonymizationError):
            PairMatchingAnonymizer().anonymize(Table([(1,)]), 2)
