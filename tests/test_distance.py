"""Tests for repro.core.distance: the metric, diameters, and ANON."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import STAR
from repro.core.distance import (
    anon_cost,
    anon_cost_of,
    diameter,
    diameter_of,
    differing_coordinates,
    disagreeing_coordinates,
    distance,
    group_image,
    group_image_of,
    group_rows,
    is_consistent_suppression,
    pairwise_distance_matrix,
    radius_from,
)
from repro.core.table import Table

vectors = st.lists(st.integers(0, 3), min_size=4, max_size=4).map(tuple)
small_groups = st.lists(vectors, min_size=1, max_size=6)


class TestDistance:
    def test_paper_example(self):
        # Section 4's example: 1010 and 0110 differ in two coordinates.
        assert distance((1, 0, 1, 0), (0, 1, 1, 0)) == 2

    def test_identical(self):
        assert distance((1, 2), (1, 2)) == 0

    def test_mismatched_degrees_rejected(self):
        with pytest.raises(ValueError):
            distance((1,), (1, 2))
        with pytest.raises(ValueError):
            differing_coordinates((1,), (1, 2))

    def test_star_is_a_value(self):
        # STAR equals only itself: suppressed coordinates match each other.
        assert distance((STAR, 1), (STAR, 1)) == 0
        assert distance((STAR, 1), (1, 1)) == 1

    @given(vectors, vectors)
    def test_symmetry(self, u, v):
        assert distance(u, v) == distance(v, u)

    @given(vectors, vectors)
    def test_identity_of_indiscernibles(self, u, v):
        assert (distance(u, v) == 0) == (u == v)

    @given(vectors, vectors, vectors)
    def test_triangle_inequality(self, u, v, w):
        assert distance(u, w) <= distance(u, v) + distance(v, w)

    @given(vectors, vectors)
    def test_range(self, u, v):
        assert 0 <= distance(u, v) <= len(u)

    def test_differing_coordinates(self):
        assert differing_coordinates((1, 2, 3), (1, 0, 0)) == [1, 2]


class TestDiameter:
    def test_empty_and_singleton(self):
        assert diameter([]) == 0
        assert diameter([(1, 2)]) == 0

    def test_paper_example_group(self):
        # V = {1010, 1110, 0110}; the 3-group has diameter 2.
        group = [(1, 0, 1, 0), (1, 1, 1, 0), (0, 1, 1, 0)]
        assert diameter(group) == 2

    @given(small_groups)
    def test_diameter_is_max_pairwise(self, rows):
        expected = max(
            (distance(u, v) for i, u in enumerate(rows) for v in rows[i + 1:]),
            default=0,
        )
        assert diameter(rows) == expected

    @given(small_groups, vectors)
    def test_monotone_under_insertion(self, rows, extra):
        assert diameter(rows) <= diameter(rows + [extra])

    def test_radius_from(self):
        assert radius_from((0, 0), [(0, 1), (1, 1)]) == 2
        assert radius_from((0, 0), []) == 0


class TestDisagreementsAndImage:
    def test_disagreeing_coordinates(self):
        rows = [(1, 0, 1, 0), (1, 1, 1, 0), (0, 1, 1, 0)]
        assert disagreeing_coordinates(rows) == [0, 1]

    def test_empty_group(self):
        assert disagreeing_coordinates([]) == []

    def test_group_image_paper_example(self):
        # t(b1 b2 b3 b4) = **b3 b4 on {1010, 1110, 0110} -> **10
        rows = [(1, 0, 1, 0), (1, 1, 1, 0), (0, 1, 1, 0)]
        assert group_image(rows) == (STAR, STAR, 1, 0)

    def test_group_image_single(self):
        assert group_image([(5, 6)]) == (5, 6)

    def test_group_image_empty_rejected(self):
        with pytest.raises(ValueError):
            group_image([])

    @given(small_groups)
    def test_image_consistent_with_every_member(self, rows):
        image = group_image(rows)
        for row in rows:
            assert is_consistent_suppression(row, image)

    @given(small_groups)
    def test_anon_cost_is_size_times_disagreements(self, rows):
        assert anon_cost(rows) == len(rows) * len(disagreeing_coordinates(rows))

    @given(small_groups)
    def test_diameter_sandwich_on_disagreements(self, rows):
        """d(S) <= |D(S)| <= (|S|-1) d(S): the inequalities behind
        Lemma 4.1's two directions."""
        d = diameter(rows)
        disagreements = len(disagreeing_coordinates(rows))
        assert d <= disagreements
        if len(rows) > 1:
            assert disagreements <= (len(rows) - 1) * d

    @given(small_groups)
    def test_anon_cost_at_least_size_times_diameter(self, rows):
        assert anon_cost(rows) >= len(rows) * diameter(rows)


class TestIndexSetVariants:
    def test_group_rows(self):
        t = Table([(1,), (2,), (3,)])
        assert group_rows(t, [2, 0]) == [(3,), (1,)]

    def test_diameter_anon_image_of(self):
        t = Table([(0, 0), (0, 1), (1, 1)])
        assert diameter_of(t, {0, 2}) == 2
        assert anon_cost_of(t, {0, 1}) == 2
        assert group_image_of(t, {1, 2}) == (STAR, 1)

    def test_pairwise_matrix(self):
        t = Table([(0, 0), (0, 1), (1, 1)])
        matrix = pairwise_distance_matrix(t)
        assert matrix == [[0, 1, 2], [1, 0, 1], [2, 1, 0]]

    @settings(max_examples=25)
    @given(st.lists(vectors, min_size=1, max_size=6))
    def test_matrix_symmetric_zero_diagonal(self, rows):
        matrix = pairwise_distance_matrix(Table(rows))
        n = len(rows)
        for i in range(n):
            assert matrix[i][i] == 0
            for j in range(n):
                assert matrix[i][j] == matrix[j][i]


class TestConsistency:
    def test_consistent_cases(self):
        assert is_consistent_suppression((1, 2), (1, STAR))
        assert is_consistent_suppression((1, 2), (1, 2))
        assert not is_consistent_suppression((1, 2), (1, 3))
        assert not is_consistent_suppression((1, 2), (1,))
