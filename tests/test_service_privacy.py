"""The service's privacy tier: request validation, privacy-aware cache
keys, the DP budget ledger, and routed-fleet keying.

The invariants that matter operationally:

* a ``privacy`` block changes the instance key — cached plain releases
  and privacy releases never cross;
* a cache hit re-serves byte-identical DP noise (the seed derives from
  the instance key) and charges no additional ε;
* the accountant rejects over-budget requests with the
  ``privacy-budget-exhausted`` code and refunds failed solves;
* the shard router keys privacy requests exactly like the server does.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.artifacts import instance_key, table_hash
from repro.core.table import Table
from repro.service import AnonymizationService, ServiceError
from repro.service.router import ShardRouter, merge_shard_stats
from repro.service.server import normalize_privacy
from repro.workloads import census_table


def run(coro):
    return asyncio.run(coro)


async def _served(service: AnonymizationService, *requests):
    try:
        return [await service.handle(r) for r in requests]
    finally:
        await service.stop()


def small_table() -> Table:
    return census_table(24, seed=0)


def privacy_request(table: Table, **privacy) -> dict:
    return {
        "op": "anonymize", "csv": table.to_csv(), "k": 2,
        "privacy": privacy,
    }


class TestNormalizePrivacy:
    def test_canonical_form(self):
        out = normalize_privacy({"l": 2, "epsilon": 1}, degree=3)
        assert out == {"l": 2, "epsilon": 1.0, "sensitive": 2}

    def test_epsilon_only_has_no_default_sensitive(self):
        assert normalize_privacy({"epsilon": 0.5}, degree=3) == {
            "epsilon": 0.5
        }

    def test_negative_sensitive_resolves(self):
        out = normalize_privacy({"t": 0.4, "sensitive": -1}, degree=4)
        assert out["sensitive"] == 3

    @pytest.mark.parametrize("block", [
        "not a dict",
        {},
        {"l": 1},
        {"l": True},
        {"t": 1.5},
        {"t": -0.1},
        {"epsilon": 0},
        {"epsilon": -1.0},
        {"l": 2, "t": 0.3},
        {"l": 2, "sensitive": 7},
        {"l": 2, "sensitive": "diagnosis"},
        {"frequency": 3},
    ])
    def test_malformed_blocks_rejected(self, block):
        with pytest.raises(ServiceError) as excinfo:
            normalize_privacy(block, degree=3)
        assert excinfo.value.code == "bad-request"

    def test_split_needs_two_columns(self):
        with pytest.raises(ServiceError):
            normalize_privacy({"l": 2}, degree=1)


class TestPrivacyKeying:
    def test_privacy_block_changes_the_key(self):
        table = small_table()
        plain = instance_key(table, 2, "center_cover", "python")
        private = instance_key(
            table, 2, "center_cover", "python",
            privacy={"l": 2, "sensitive": 6},
        )
        assert plain != private

    def test_distinct_privacy_configs_key_apart(self):
        table = small_table()
        keys = {
            instance_key(table, 2, "center_cover", "python",
                         privacy=privacy)
            for privacy in (
                {"l": 2, "sensitive": 6},
                {"l": 3, "sensitive": 6},
                {"t": 0.5, "sensitive": 6},
                {"epsilon": 1.0},
                {"epsilon": 2.0},
            )
        }
        assert len(keys) == 5


class TestServicePrivacyFlow:
    def test_ldiverse_round_trip_and_cache_hit(self):
        table = small_table()
        request = privacy_request(table, l=2, epsilon=1.0)
        first, second = run(
            _served(AnonymizationService(), request, dict(request))
        )
        assert first["ok"] and second["ok"]
        assert (first["cache"], second["cache"]) == ("miss", "hit")
        released = Table.from_csv(first["csv"])
        assert released.degree == table.degree
        assert first["privacy"] == {
            "l": 2, "epsilon": 1.0, "sensitive": table.degree - 1,
        }
        # the hit re-serves byte-identical DP noise
        assert first["dp"] == second["dp"]
        assert first["dp"]["epsilon"] == 1.0

    def test_privacy_and_plain_requests_cache_apart(self):
        table = small_table()
        private = privacy_request(table, epsilon=1.0)
        plain = {"op": "anonymize", "csv": table.to_csv(), "k": 2}
        first, second = run(
            _served(AnonymizationService(), private, plain)
        )
        assert second["cache"] == "miss"  # not a hit on the DP entry
        assert "dp" in first and "dp" not in second

    def test_budget_exhaustion_rejects_with_typed_code(self):
        table = small_table()
        service = AnonymizationService(privacy_budget=1.5)
        # distinct epsilons => distinct instance keys (no free hits)
        first, second, third = run(_served(
            service,
            privacy_request(table, epsilon=1.0),
            privacy_request(table, epsilon=0.5),
            privacy_request(table, epsilon=0.25),
        ))
        assert first["ok"] and second["ok"]
        assert not third["ok"]
        assert third["code"] == "privacy-budget-exhausted"

    def test_cache_hits_spend_nothing(self):
        table = small_table()
        service = AnonymizationService(privacy_budget=1.0)
        request = privacy_request(table, epsilon=1.0)
        responses = run(_served(
            service, request, dict(request), dict(request)
        ))
        assert [r["cache"] for r in responses] == ["miss", "hit", "hit"]
        assert all(r["ok"] for r in responses)

    def test_stats_report_the_ledger(self):
        table = small_table()
        service = AnonymizationService(privacy_budget=2.0)
        request = privacy_request(table, epsilon=0.75)
        response, stats = run(_served(
            service, request, {"op": "stats"}
        ))
        assert response["ok"]
        # the ledger keys by the hash of the table the service parsed
        # (CSV round-trip stringifies cells, so hash the parsed form)
        parsed = Table.from_csv(table.to_csv())
        assert stats["privacy"] == {
            "budget": 2.0, "datasets": {table_hash(parsed): 0.75},
        }

    def test_failed_solve_refunds_the_charge(self):
        # diagnosis is constant => 2-diversity is infeasible; the ε
        # charged at admission must come back so the budget isn't
        # burned by a request that released nothing
        rows = [(age, "x") for age in (1, 1, 2, 2)]
        table = Table(rows, attributes=["age", "diagnosis"])
        service = AnonymizationService(privacy_budget=1.0)
        failed, stats = run(_served(
            service,
            privacy_request(table, l=2, epsilon=1.0),
            {"op": "stats"},
        ))
        assert not failed["ok"]
        assert failed["code"] == "infeasible"
        assert stats["privacy"]["datasets"] == {}

    def test_privacy_with_incremental_is_rejected(self):
        table = small_table()
        request = privacy_request(table, epsilon=1.0)
        request["algorithm"] = "incremental"
        (response,) = run(_served(AnonymizationService(), request))
        assert not response["ok"]
        assert response["code"] == "bad-request"

    def test_epsilon_only_noises_whole_table_classes(self):
        table = Table([(1, "a"), (1, "a"), (2, "b"), (2, "b")])
        (response,) = run(_served(
            AnonymizationService(), privacy_request(table, epsilon=2.0)
        ))
        assert response["ok"]
        assert response["dp"]["mechanism"] == "laplace"
        assert len(response["dp"]["classes"]) >= 1


class TestRouterPrivacyKeying:
    def test_routing_key_matches_server_key(self):
        table = small_table()
        router = ShardRouter.__new__(ShardRouter)
        router.backend = "python"
        request = privacy_request(table, l=2)
        key = router.routing_key(request)
        # the router keys the table it parses off the wire
        parsed = Table.from_csv(table.to_csv())
        privacy = normalize_privacy({"l": 2}, parsed.degree)
        assert key == instance_key(
            parsed, 2, "center_cover", "python", privacy=privacy
        )

    def test_privacy_incremental_is_unroutable(self):
        table = small_table()
        router = ShardRouter.__new__(ShardRouter)
        router.backend = "python"
        request = privacy_request(table, epsilon=1.0)
        request["algorithm"] = "incremental"
        assert router.routing_key(request) is None

    def test_merge_shard_stats_sums_ledgers(self):
        shard = {
            "cache": {"entries": 0, "max_entries": 1, "hits": 0,
                      "misses": 0, "evictions": 0},
            "requests": 0, "solved_instances": 0, "batches": 0,
        }
        a = dict(shard, privacy={"budget": 2.0,
                                 "datasets": {"d1": 0.5, "d2": 1.0}})
        b = dict(shard, privacy={"budget": 2.0, "datasets": {"d1": 0.25}})
        merged = merge_shard_stats({"s1": a, "s2": b})
        assert merged["privacy"]["budget"] == 2.0
        assert merged["privacy"]["datasets"] == {"d1": 0.75, "d2": 1.0}

    def test_merge_shard_stats_mixed_budgets_report_none(self):
        shard = {
            "cache": {"entries": 0, "max_entries": 1, "hits": 0,
                      "misses": 0, "evictions": 0},
            "requests": 0, "solved_instances": 0, "batches": 0,
        }
        a = dict(shard, privacy={"budget": 2.0, "datasets": {}})
        b = dict(shard, privacy={"budget": None, "datasets": {}})
        merged = merge_shard_stats({"s1": a, "s2": b})
        assert merged["privacy"]["budget"] is None
