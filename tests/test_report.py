"""Tests for the release dossier and its CLI command."""

import pytest

from repro import CenterCoverAnonymizer, STAR, Table
from repro.cli import main
from repro.io import write_csv
from repro.report import release_dossier

from .conftest import random_table


@pytest.fixture
def pair():
    import numpy as np

    rng = np.random.default_rng(0)
    original = random_table(rng, 16, 3, 3)
    released = CenterCoverAnonymizer().anonymize(original, 4).anonymized
    sensitive = [str(int(v)) for v in rng.integers(0, 3, size=16)]
    return original, released, sensitive


class TestReleaseDossier:
    def test_approved_release(self, pair):
        original, released, _ = pair
        text = release_dossier(original, released, 4)
        assert text.startswith("RELEASE DOSSIER — verdict: APPROVED (k=4)")
        assert "[1] validation" in text
        assert "[2] anonymity & utility metrics" in text
        assert "[3] re-identification risk" in text
        assert "[4] analytic utility" in text
        assert "all intervals sound: True" in text

    def test_rejected_release(self, pair):
        original, _, __ = pair
        text = release_dossier(original, original, 4)
        assert "verdict: REJECTED" in text
        assert "PROBLEM" in text

    def test_sensitive_section(self, pair):
        original, released, sensitive = pair
        text = release_dossier(original, released, 4, sensitive=sensitive)
        assert "[4] attribute disclosure" in text
        assert "distinct l-diversity" in text
        assert "t-closeness" in text
        assert "[5] analytic utility" in text

    def test_no_queries(self, pair):
        original, released, _ = pair
        text = release_dossier(original, released, 4, n_queries=0)
        assert "analytic utility" not in text

    def test_validation_errors(self, pair):
        original, released, _ = pair
        with pytest.raises(ValueError):
            release_dossier(original, released, 0)
        with pytest.raises(ValueError):
            release_dossier(original, released, 4, sensitive=["x"])

    def test_empty_tables(self):
        empty = Table([], attributes=["a"])
        text = release_dossier(empty, empty, 3, sensitive=[])
        assert "APPROVED" in text


class TestCliDossier:
    def test_end_to_end(self, tmp_path, capsys):
        rows = ["age,sex,diag"]
        for i in range(8):
            rows.append(f"{30 + 10 * (i // 4)},{'F' if i % 2 else 'M'},d{i % 2}")
        original_path = tmp_path / "orig.csv"
        original_path.write_text("\n".join(rows) + "\n")

        released_path = tmp_path / "rel.csv"
        code = main(["anonymize", str(original_path), "-k", "2",
                     "-o", str(released_path)])
        assert code == 0
        capsys.readouterr()

        code = main(["dossier", str(original_path), str(released_path),
                     "-k", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "APPROVED" in out

    def test_with_sensitive_column(self, tmp_path, capsys):
        rows = ["age,diag"] + [f"{30 + (i // 3) * 10},d{i % 3}"
                               for i in range(9)]
        original_path = tmp_path / "orig.csv"
        original_path.write_text("\n".join(rows) + "\n")
        released_path = tmp_path / "rel.csv"
        assert main(["anonymize", str(original_path), "-k", "3",
                     "--ldiv", "2", "-o", str(released_path)]) == 0
        capsys.readouterr()
        code = main(["dossier", str(original_path), str(released_path),
                     "-k", "3", "--sensitive", "diag"])
        out = capsys.readouterr().out
        assert code == 0
        assert "attribute disclosure" in out

    def test_rejected_exit_code(self, tmp_path, capsys):
        path = tmp_path / "raw.csv"
        path.write_text("a\n1\n2\n")
        assert main(["dossier", str(path), str(path), "-k", "2"]) == 1
