"""Tests for repro.core.suppressor.Suppressor (Definition 2.1)."""

import pytest

from repro.core.alphabet import STAR
from repro.core.suppressor import Suppressor
from repro.core.table import Table


@pytest.fixture
def table():
    return Table([(1, 2, 3), (4, 5, 6)], attributes=["a", "b", "c"])


class TestConstruction:
    def test_validates_row_range(self):
        with pytest.raises(ValueError, match="row index"):
            Suppressor({5: [0]}, n_rows=2, degree=3)

    def test_validates_coordinate_range(self):
        with pytest.raises(ValueError, match="coordinate"):
            Suppressor({0: [7]}, n_rows=2, degree=3)

    def test_negative_shape_rejected(self):
        with pytest.raises(ValueError):
            Suppressor({}, n_rows=-1, degree=2)

    def test_empty_coordinate_sets_dropped(self):
        s = Suppressor({0: [], 1: [2]}, n_rows=2, degree=3)
        assert s.starred_coordinates(0) == frozenset()
        assert s.total_stars() == 1

    def test_identity(self, table):
        s = Suppressor.identity(table)
        assert s.total_stars() == 0
        assert s.apply(table) == table


class TestApplication:
    def test_stars_selected_cells(self, table):
        s = Suppressor({0: [1], 1: [0, 2]}, n_rows=2, degree=3)
        out = s.apply(table)
        assert out.rows == ((1, STAR, 3), (STAR, 5, STAR))

    def test_shape_mismatch_rejected(self, table):
        s = Suppressor({}, n_rows=3, degree=3)
        with pytest.raises(ValueError, match="shape"):
            s.apply(table)

    def test_total_stars(self, table):
        s = Suppressor({0: [0, 1], 1: [2]}, n_rows=2, degree=3)
        assert s.total_stars() == 3

    def test_apply_preserves_schema(self, table):
        s = Suppressor({0: [0]}, n_rows=2, degree=3)
        assert s.apply(table).attributes == table.attributes


class TestFromTables:
    def test_roundtrip(self, table):
        s = Suppressor({0: [2], 1: [0]}, n_rows=2, degree=3)
        recovered = Suppressor.from_tables(table, s.apply(table))
        assert recovered == s

    def test_rejects_changed_values(self, table):
        bad = table.with_rows([(1, 2, 99), (4, 5, 6)])
        with pytest.raises(ValueError, match="changed value"):
            Suppressor.from_tables(table, bad)

    def test_rejects_shape_mismatch(self, table):
        with pytest.raises(ValueError, match="shapes"):
            Suppressor.from_tables(table, Table([(1, 2, 3)]))

    def test_identity_recovered(self, table):
        assert Suppressor.from_tables(table, table).total_stars() == 0


class TestAttributeSuppression:
    def test_suppress_attributes_by_index(self, table):
        s = Suppressor.suppress_attributes(table, [1])
        out = s.apply(table)
        assert out.column(1) == (STAR, STAR)
        assert out.column(0) == (1, 4)

    def test_suppress_attributes_by_name(self, table):
        s = Suppressor.suppress_attributes(table, ["c"])
        assert s.suppressed_attributes() == frozenset([2])

    def test_suppressed_attributes_detection(self, table):
        s = Suppressor({0: [0, 1], 1: [1]}, n_rows=2, degree=3)
        assert s.suppressed_attributes() == frozenset([1])

    def test_no_common_attributes(self, table):
        s = Suppressor({0: [0], 1: [1]}, n_rows=2, degree=3)
        assert s.suppressed_attributes() == frozenset()

    def test_empty_table_suppressed_attributes(self):
        s = Suppressor({}, n_rows=0, degree=3)
        assert s.suppressed_attributes() == frozenset()

    def test_is_attribute_suppressor(self, table):
        assert Suppressor.suppress_attributes(table, [0, 2]).is_attribute_suppressor()
        mixed = Suppressor({0: [0], 1: [0, 1]}, n_rows=2, degree=3)
        assert not mixed.is_attribute_suppressor()

    def test_identity_is_attribute_suppressor(self, table):
        assert Suppressor.identity(table).is_attribute_suppressor()


class TestDunder:
    def test_equality(self):
        a = Suppressor({0: [1]}, n_rows=2, degree=2)
        b = Suppressor({0: (1,)}, n_rows=2, degree=2)
        c = Suppressor({0: [0]}, n_rows=2, degree=2)
        assert a == b
        assert a != c
        assert a != "not a suppressor"

    def test_hash(self):
        a = Suppressor({0: [1]}, n_rows=2, degree=2)
        b = Suppressor({0: [1]}, n_rows=2, degree=2)
        assert hash(a) == hash(b)

    def test_repr(self):
        s = Suppressor({0: [1]}, n_rows=2, degree=2)
        assert "stars=1" in repr(s)
