"""Tests for the resumable run-artifact store."""

import json

import pytest

from repro.artifacts import ArtifactMismatchError, RunStore, table_hash
from repro.core.table import Table
from repro.experiments import k_sweep, ratio_experiment
from repro.algorithms import CenterCoverAnonymizer
from repro.io import append_jsonl, read_jsonl
from repro.workloads import uniform_table


class TestTableHash:
    def test_stable_and_content_sensitive(self):
        a = Table([(1, 2), (3, 4)], attributes=("x", "y"))
        b = Table([(1, 2), (3, 4)], attributes=("x", "y"))
        c = Table([(1, 2), (3, 5)], attributes=("x", "y"))
        assert table_hash(a) == table_hash(b)
        assert table_hash(a) != table_hash(c)

    def test_attributes_matter(self):
        a = Table([(1, 2)], attributes=("x", "y"))
        b = Table([(1, 2)], attributes=("u", "v"))
        assert table_hash(a) != table_hash(b)


class TestRunStore:
    def test_record_roundtrip(self, tmp_path):
        store = RunStore(tmp_path, experiment="demo", config={"k": 3})
        assert not store.done("trial-0")
        store.record("trial-0", cost=4, opt=2)
        assert store.done("trial-0")
        assert store.get("trial-0")["cost"] == 4
        assert len(store) == 1
        assert store.completed_keys == ("trial-0",)

    def test_records_survive_reopen(self, tmp_path):
        RunStore(tmp_path, experiment="demo", config={"k": 3}).record(
            "trial-0", cost=4
        )
        resumed = RunStore(tmp_path, experiment="demo", config={"k": 3},
                           resume=True)
        assert resumed.done("trial-0")
        assert resumed.get("trial-0")["cost"] == 4

    def test_populated_dir_requires_resume(self, tmp_path):
        RunStore(tmp_path, experiment="demo", config={"k": 3}).record(
            "trial-0", cost=4
        )
        with pytest.raises(ArtifactMismatchError, match="resume"):
            RunStore(tmp_path, experiment="demo", config={"k": 3})

    def test_manifest_mismatch_rejected(self, tmp_path):
        RunStore(tmp_path, experiment="demo", config={"k": 3})
        with pytest.raises(ArtifactMismatchError, match="refusing to mix"):
            RunStore(tmp_path, experiment="demo", config={"k": 4},
                     resume=True)
        with pytest.raises(ArtifactMismatchError, match="refusing to mix"):
            RunStore(tmp_path, experiment="other", config={"k": 3},
                     resume=True)

    def test_duplicate_record_rejected(self, tmp_path):
        store = RunStore(tmp_path, experiment="demo", config={})
        store.record("trial-0", cost=1)
        with pytest.raises(ArtifactMismatchError, match="already recorded"):
            store.record("trial-0", cost=2)

    def test_instance_hash_check(self, tmp_path):
        store = RunStore(tmp_path, experiment="demo", config={})
        store.record("trial-0", cost=1, instance_hash="abcd")
        store.check_instance("trial-0", "abcd")  # matching: fine
        store.check_instance("unknown-key", "whatever")  # unknown: no-op
        with pytest.raises(ArtifactMismatchError, match="hash"):
            store.check_instance("trial-0", "ffff")

    def test_torn_final_line_tolerated(self, tmp_path):
        """A crash mid-append must not poison the records before it."""
        path = tmp_path / "trials.jsonl"
        append_jsonl(path, {"key": "trial-0", "cost": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "trial-1", "cos')  # torn write
        records = list(read_jsonl(path))
        assert [r["key"] for r in records] == ["trial-0"]
        store = RunStore(tmp_path, experiment="demo", config={},
                         resume=True)
        assert store.completed_keys == ("trial-0",)


class TestResumedExperiments:
    def test_ratio_resume_skips_completed_trials(self, tmp_path,
                                                 monkeypatch):
        """Resuming re-solves only the missing trials and reproduces the
        uninterrupted run exactly."""
        config = {"algorithm": "center_cover", "k": 2}
        full = ratio_experiment(CenterCoverAnonymizer(), k=2, n=7,
                                trials=4)

        store = RunStore(tmp_path, experiment="ratio", config=config)
        ratio_experiment(CenterCoverAnonymizer(), k=2, n=7, trials=2,
                         store=store)

        import repro.experiments as experiments

        solved = []
        real_trial = experiments._ratio_trial

        def counting_trial(task):
            solved.append(task.trial)
            return real_trial(task)

        monkeypatch.setattr(experiments, "_ratio_trial", counting_trial)
        resumed_store = RunStore(tmp_path, experiment="ratio",
                                 config=config, resume=True)
        resumed = ratio_experiment(CenterCoverAnonymizer(), k=2, n=7,
                                   trials=4, store=resumed_store)
        assert solved == [2, 3]  # trials 0-1 came from the artifacts
        assert resumed == full

    def test_resume_verifies_instance_hash(self, tmp_path):
        """A record whose workload no longer regenerates identically is
        an error, not silently-stale data."""
        store = RunStore(tmp_path, experiment="ratio", config={})
        store.record("trial-0000", seed=0, opt=1, cost=1,
                     instance_hash="not-the-real-hash")
        resumed = RunStore(tmp_path, experiment="ratio", config={},
                           resume=True)
        with pytest.raises(ArtifactMismatchError, match="hash"):
            ratio_experiment(CenterCoverAnonymizer(), k=2, n=7, trials=1,
                             store=resumed)

    def test_k_sweep_resume(self, tmp_path):
        table = uniform_table(20, 3, alphabet_size=3, seed=1)
        full = k_sweep(table, ks=(2, 3, 4))

        store = RunStore(tmp_path, experiment="k_sweep", config={})
        k_sweep(table, ks=(2, 3), store=store)
        resumed_store = RunStore(tmp_path, experiment="k_sweep",
                                 config={}, resume=True)
        resumed = k_sweep(table, ks=(2, 3, 4), store=resumed_store)
        assert resumed == full
        assert set(resumed_store.completed_keys) == {"k-2", "k-3", "k-4"}

    def test_k_sweep_resume_rejects_different_table(self, tmp_path):
        table = uniform_table(20, 3, alphabet_size=3, seed=1)
        other = uniform_table(20, 3, alphabet_size=3, seed=2)
        store = RunStore(tmp_path, experiment="k_sweep", config={})
        k_sweep(table, ks=(2,), store=store)
        resumed = RunStore(tmp_path, experiment="k_sweep", config={},
                           resume=True)
        with pytest.raises(ArtifactMismatchError, match="hash"):
            k_sweep(other, ks=(2,), store=resumed)

    def test_records_carry_required_fields(self, tmp_path):
        store = RunStore(tmp_path, experiment="ratio", config={})
        ratio_experiment(CenterCoverAnonymizer(), k=2, n=6, trials=1,
                         store=store, trace=True)
        record = store.get("trial-0000")
        for field in ("seed", "algorithm", "k", "cost", "opt",
                      "elapsed_seconds", "instance_hash",
                      "trace_summary"):
            assert field in record
        assert record["trace_summary"]["runs"] == 1
        # the on-disk form is plain JSON lines
        raw = (tmp_path / "trials.jsonl").read_text().splitlines()
        assert json.loads(raw[0])["key"] == "trial-0000"
