"""Tests for the Theorem 4.1 greedy-cover algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import InfeasibleAnonymizationError
from repro.algorithms.exact import optimal_anonymization
from repro.algorithms.greedy_cover import GreedyCoverAnonymizer, build_greedy_cover
from repro.core.anonymity import is_k_anonymous
from repro.core.table import Table
from repro.theory import theorem_4_1_ratio

from .conftest import random_table


class TestBuildGreedyCover:
    def test_cover_is_valid(self):
        t = Table([(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)])
        cover = build_greedy_cover(t, 2)
        cover.validate()
        assert all(2 <= len(g) <= 3 for g in cover.groups)

    def test_prefers_zero_diameter_groups(self):
        t = Table([(7, 7), (7, 7), (0, 1), (1, 0)])
        cover = build_greedy_cover(t, 2)
        assert frozenset({0, 1}) in cover.groups

    def test_single_group_table(self):
        t = Table([(1,), (2,), (3,)])
        cover = build_greedy_cover(t, 3)
        assert cover.groups == (frozenset({0, 1, 2}),)

    def test_deterministic(self):
        import numpy as np

        t = random_table(np.random.default_rng(7), 8, 3, 3)
        assert build_greedy_cover(t, 2).groups == build_greedy_cover(t, 2).groups

    def test_empty_table(self):
        assert len(build_greedy_cover(Table([]), 3)) == 0

    def test_too_few_rows_rejected(self):
        with pytest.raises(ValueError):
            build_greedy_cover(Table([(1,)]), 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            build_greedy_cover(Table([(1,)]), 0)

    def test_k_max_override(self):
        t = Table([(i,) for i in range(6)])
        cover = build_greedy_cover(t, 2, k_max=2)
        assert all(len(g) == 2 for g in cover.groups)


class TestGreedyAnonymizer:
    def test_output_valid(self):
        t = Table([(0, 0), (0, 1), (1, 0), (1, 1)])
        result = GreedyCoverAnonymizer().anonymize(t, 2)
        assert result.is_valid(t)
        assert result.algorithm == "greedy_cover"

    def test_k1_is_free(self):
        t = Table([(0, 5), (1, 6), (2, 7)])
        result = GreedyCoverAnonymizer().anonymize(t, 1)
        assert result.stars == 0

    def test_identical_rows_cost_zero(self):
        t = Table([(3, 1, 4)] * 6)
        assert GreedyCoverAnonymizer().anonymize(t, 3).stars == 0

    def test_planted_pairs_found(self):
        t = Table([(0, 0), (9, 9), (0, 0), (9, 9)])
        result = GreedyCoverAnonymizer().anonymize(t, 2)
        assert result.stars == 0

    def test_infeasible(self):
        with pytest.raises(InfeasibleAnonymizationError):
            GreedyCoverAnonymizer().anonymize(Table([(1,)]), 2)

    def test_empty_table(self):
        result = GreedyCoverAnonymizer().anonymize(Table([]), 3)
        assert result.anonymized.n_rows == 0

    def test_extras_recorded(self):
        t = Table([(0, 0), (0, 1), (1, 0), (1, 1)])
        result = GreedyCoverAnonymizer().anonymize(t, 2)
        assert "cover_sets" in result.extras
        assert (
            result.extras["partition_diameter_sum"]
            <= result.extras["cover_diameter_sum"]
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_always_k_anonymous(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 10))
        t = random_table(rng, n, 3, 4)
        result = GreedyCoverAnonymizer().anonymize(t, k)
        assert is_k_anonymous(result.anonymized, k)
        assert result.is_valid(t)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_within_theorem_4_1_bound(self, seed, k):
        """Measured ratio never exceeds 3k(1 + ln 2k) — Theorem 4.1."""
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 9))
        t = random_table(rng, n, 3, 3)
        result = GreedyCoverAnonymizer().anonymize(t, k)
        opt, _ = optimal_anonymization(t, k)
        if opt == 0:
            assert result.stars == 0
        else:
            assert result.stars <= theorem_4_1_ratio(k) * opt

    def test_never_worse_than_suppress_everything(self):
        import numpy as np

        t = random_table(np.random.default_rng(3), 9, 4, 5)
        result = GreedyCoverAnonymizer().anonymize(t, 3)
        assert result.stars <= t.total_cells()
