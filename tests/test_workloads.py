"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.algorithms.exact import optimal_anonymization
from repro.workloads import (
    attribute_reduction_instance,
    census_table,
    duplicate_heavy_table,
    entry_reduction_instance,
    planted_groups_table,
    quasi_identifiers,
    uniform_table,
    zipf_table,
)
from repro.workloads.census import ATTRIBUTES, QUASI_IDENTIFIERS


class TestUniform:
    def test_shape(self):
        t = uniform_table(10, 5, alphabet_size=3, seed=0)
        assert (t.n_rows, t.degree) == (10, 5)

    def test_values_in_alphabet(self):
        t = uniform_table(20, 4, alphabet_size=3, seed=1)
        assert all(0 <= v < 3 for row in t.rows for v in row)

    def test_deterministic(self):
        assert uniform_table(8, 3, seed=5) == uniform_table(8, 3, seed=5)

    def test_different_seeds_differ(self):
        assert uniform_table(8, 3, seed=5) != uniform_table(8, 3, seed=6)

    def test_zero_rows(self):
        assert uniform_table(0, 3, seed=0).n_rows == 0

    def test_errors(self):
        with pytest.raises(ValueError):
            uniform_table(-1, 3)
        with pytest.raises(ValueError):
            uniform_table(3, 3, alphabet_size=0)


class TestZipf:
    def test_skew(self):
        t = zipf_table(500, 2, alphabet_size=10, exponent=2.0, seed=0)
        from collections import Counter

        counts = Counter(v for row in t.rows for v in row)
        assert counts[0] > counts.get(9, 0)

    def test_errors(self):
        with pytest.raises(ValueError):
            zipf_table(5, 2, alphabet_size=0)
        with pytest.raises(ValueError):
            zipf_table(5, 2, exponent=0)


class TestPlantedGroups:
    def test_shape(self):
        t = planted_groups_table(4, 3, 5, seed=0)
        assert t.n_rows == 12
        assert t.degree == 5

    def test_zero_noise_has_zero_opt(self):
        t = planted_groups_table(3, 3, 4, noise=0.0, seed=1)
        opt, _ = optimal_anonymization(t, 3)
        assert opt == 0

    def test_noise_increases_cost(self):
        clean = planted_groups_table(3, 2, 6, noise=0.0, seed=2)
        noisy = planted_groups_table(3, 2, 6, noise=0.5, seed=2)
        opt_clean, _ = optimal_anonymization(clean, 2)
        opt_noisy, _ = optimal_anonymization(noisy, 2)
        assert opt_clean == 0
        assert opt_noisy >= opt_clean

    def test_shuffle_off_keeps_blocks(self):
        t = planted_groups_table(2, 3, 4, noise=0.0, seed=3, shuffle=False)
        assert t.rows[0] == t.rows[1] == t.rows[2]
        assert t.rows[3] == t.rows[4] == t.rows[5]

    def test_errors(self):
        with pytest.raises(ValueError):
            planted_groups_table(0, 3, 4)
        with pytest.raises(ValueError):
            planted_groups_table(2, 3, 4, noise=1.5)


class TestDuplicateHeavy:
    def test_distinct_bound(self):
        t = duplicate_heavy_table(50, 4, n_distinct=6, seed=0)
        assert len(set(t.rows)) <= 6

    def test_errors(self):
        with pytest.raises(ValueError):
            duplicate_heavy_table(5, 3, n_distinct=0)


class TestCensus:
    def test_schema(self):
        t = census_table(25, seed=0)
        assert t.attributes == ATTRIBUTES
        assert t.n_rows == 25

    def test_ages_bucketed(self):
        t = census_table(100, seed=1, age_bucket=5)
        assert all(age % 5 == 0 for age in t.column("age"))

    def test_zip_regions(self):
        t = census_table(200, seed=2, n_zip_regions=3)
        prefixes = {z[:3] for z in t.column("zipcode")}
        assert len(prefixes) == 3

    def test_quasi_identifiers_projection(self):
        t = census_table(10, seed=3)
        qi = quasi_identifiers(t)
        assert qi.attributes == QUASI_IDENTIFIERS
        assert "diagnosis" not in qi.attributes

    def test_deterministic(self):
        assert census_table(10, seed=4) == census_table(10, seed=4)

    def test_errors(self):
        with pytest.raises(ValueError):
            census_table(-1)
        with pytest.raises(ValueError):
            census_table(5, n_zip_regions=0)


class TestAdversarial:
    def test_entry_instance_with_matching(self):
        red = entry_reduction_instance(2, k=3, with_matching=True, seed=0)
        opt, _ = optimal_anonymization(red.table, 3)
        assert opt == red.threshold

    def test_entry_instance_without_matching(self):
        red = entry_reduction_instance(2, k=3, extra_edges=2,
                                       with_matching=False, seed=0)
        opt, _ = optimal_anonymization(red.table, 3)
        assert opt > red.threshold

    def test_attribute_instances(self):
        from repro.algorithms.exact import optimal_attribute_suppression

        good = attribute_reduction_instance(2, k=3, with_matching=True, seed=1)
        count, _ = optimal_attribute_suppression(good.table, 3)
        assert count == good.threshold

        bad = attribute_reduction_instance(2, k=3, extra_edges=2,
                                           with_matching=False, seed=1)
        count, _ = optimal_attribute_suppression(bad.table, 3)
        assert count > bad.threshold
