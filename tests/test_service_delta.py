"""The ``delta`` verb: incremental delta-solves over the service.

Covers the full chain — an ``anonymize`` with algorithm
``incremental`` returns a ``state_key``; a ``delta`` against it grows
the release without re-solving the prefix; untouched groups keep their
frozen images byte-identical; the result is replay-equivalent to a
cold solve of the full table (and shares its cache entry); the state
snapshot round-trips through the disk tier across a server restart.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.algorithms.incremental import IncrementalState
from repro.artifacts import instance_key, state_key
from repro.cli import main
from repro.core.anonymity import is_k_anonymous
from repro.core.table import Table
from repro.io import write_csv
from repro.service import (
    AnonymizationService,
    ServiceClient,
    ServiceError,
    ServiceServer,
)
from repro.workloads import census_table, quasi_identifiers


def grown_pair(n: int = 30, extra: int = 6, seed: int = 1):
    """A base table and its delta such that base + delta == grown.

    Both cuts come from ONE generated table, so the grown table's rows
    are exactly the base rows followed by the delta rows — the
    prerequisite for delta/cold equivalence.  The table is round-
    tripped through CSV first so test-side keys are computed on the
    same (all-string) relation the server parses off the wire.
    """
    grown = quasi_identifiers(census_table(n + extra, seed=seed))
    grown = Table.from_csv(grown.to_csv())
    base = Table(grown.rows[:n], attributes=grown.attributes)
    delta = Table(grown.rows[n:], attributes=grown.attributes)
    return base, delta, grown


def run(coro):
    return asyncio.run(coro)


async def _served(service: AnonymizationService, *requests):
    try:
        return [await service.handle(r) for r in requests]
    finally:
        await service.stop()


def _solve_request(table: Table, k: int = 3) -> dict:
    return {"op": "anonymize", "csv": table.to_csv(), "k": k,
            "algorithm": "incremental"}


# ----------------------------------------------------------------------
# The transport-free core
# ----------------------------------------------------------------------


class TestDeltaCore:
    def test_incremental_solve_returns_state_key(self):
        base, _, _ = grown_pair()
        (response,) = run(
            _served(AnonymizationService(), _solve_request(base))
        )
        assert response["ok"]
        expected = state_key(base, 3, "incremental",
                             response["backend"])
        assert response["state_key"] == expected

    def test_non_incremental_solve_has_no_state_key(self):
        base, _, _ = grown_pair()
        request = {"op": "anonymize", "csv": base.to_csv(), "k": 3}
        (response,) = run(_served(AnonymizationService(), request))
        assert response["ok"]
        assert "state_key" not in response

    def test_delta_grows_the_release(self):
        base, delta, grown = grown_pair()
        service = AnonymizationService()
        solve, growth = run(_served(
            service,
            _solve_request(base),
            {"op": "delta", "state_key": state_key(
                base, 3, "incremental", service.backend
            ), "csv": delta.to_csv()},
        ))
        assert growth["ok"] and growth["op"] == "delta"
        assert growth["cache"] == "miss"
        released = Table.from_csv(growth["csv"])
        assert released.n_rows == grown.n_rows
        assert is_k_anonymous(released, 3)
        assert growth["delta"]["rows_added"] == delta.n_rows
        assert growth["delta"]["rows_total"] == grown.n_rows
        # the next chain link is keyed by the grown table
        assert growth["state_key"] == state_key(
            grown, 3, "incremental", service.backend
        )

    def test_untouched_groups_keep_images_byte_identical(self):
        base, delta, _ = grown_pair()
        service = AnonymizationService()
        solve, growth = run(_served(
            service,
            _solve_request(base),
            {"op": "delta", "state_key": state_key(
                base, 3, "incremental", service.backend
            ), "csv": delta.to_csv()},
        ))
        before = Table.from_csv(solve["csv"]).rows
        after = Table.from_csv(growth["csv"]).rows
        identical = sum(
            1 for i in range(len(before)) if before[i] == after[i]
        )
        # the disposition counts whole untouched groups; the released
        # rows of the base prefix agree with it
        assert growth["delta"]["untouched_groups"] >= 1
        assert identical >= growth["delta"]["untouched_groups"]

    def test_delta_equals_cold_solve_of_full_table(self):
        base, delta, grown = grown_pair()
        service = AnonymizationService()
        _, growth, cold = run(_served(
            service,
            _solve_request(base),
            {"op": "delta", "state_key": state_key(
                base, 3, "incremental", service.backend
            ), "csv": delta.to_csv()},
            dict(_solve_request(grown), use_cache=False),
        ))
        assert growth["csv"] == cold["csv"]
        assert growth["stars"] == cold["stars"]

    def test_delta_result_is_cached_under_full_instance_key(self):
        base, delta, grown = grown_pair()
        service = AnonymizationService()
        _, growth, repeat, cold = run(_served(
            service,
            _solve_request(base),
            {"op": "delta", "state_key": state_key(
                base, 3, "incremental", service.backend
            ), "csv": delta.to_csv()},
            {"op": "delta", "state_key": state_key(
                base, 3, "incremental", service.backend
            ), "csv": delta.to_csv()},
            _solve_request(grown),
        ))
        assert growth["cache"] == "miss"
        # an identical delta, and a cold anonymize of the grown table,
        # both hit the same entry
        assert repeat["cache"] == "hit"
        assert cold["cache"] == "hit"
        assert repeat["state_key"] == growth["state_key"]
        assert instance_key(
            grown, 3, "incremental", service.backend
        ) in service.cache

    def test_chained_deltas_compose(self):
        base, delta1, mid = grown_pair(24, 6)
        grown = quasi_identifiers(census_table(36, seed=1))
        grown = Table.from_csv(grown.to_csv())
        delta2 = Table(grown.rows[30:], attributes=grown.attributes)
        assert grown.rows[:30] == mid.rows
        service = AnonymizationService()
        solve, first, second = run(_served(
            service,
            _solve_request(base),
            {"op": "delta", "state_key": state_key(
                base, 3, "incremental", service.backend
            ), "csv": delta1.to_csv()},
            {"op": "delta", "state_key": state_key(
                mid, 3, "incremental", service.backend
            ), "csv": delta2.to_csv()},
        ))
        assert first["state_key"] == state_key(
            mid, 3, "incremental", service.backend
        )
        assert second["ok"]
        released = Table.from_csv(second["csv"])
        assert released.n_rows == 36
        assert is_k_anonymous(released, 3)

    def test_identical_inflight_deltas_coalesce(self):
        base, delta, _ = grown_pair()

        async def scenario():
            service = AnonymizationService(batch_window=0.02)
            try:
                await service.handle(_solve_request(base))
                request = {"op": "delta", "state_key": state_key(
                    base, 3, "incremental", service.backend
                ), "csv": delta.to_csv()}
                return await asyncio.gather(
                    service.handle(dict(request)),
                    service.handle(dict(request)),
                )
            finally:
                await service.stop()

        responses = run(scenario())
        kinds = sorted(r["cache"] for r in responses)
        assert kinds == ["coalesced", "miss"]
        assert len({r["csv"] for r in responses}) == 1
        assert len({r["state_key"] for r in responses}) == 1


class TestDeltaRejections:
    def test_unknown_state_key(self):
        _, delta, _ = grown_pair()
        (response,) = run(_served(
            AnonymizationService(),
            {"op": "delta", "state_key": "0" * 32,
             "csv": delta.to_csv()},
        ))
        assert not response["ok"]
        assert response["code"] == "unknown-state"

    def test_malformed_state_key(self):
        _, delta, _ = grown_pair()
        (response,) = run(_served(
            AnonymizationService(),
            {"op": "delta", "state_key": "../not-a-key",
             "csv": delta.to_csv()},
        ))
        assert not response["ok"]
        assert response["code"] == "bad-request"

    def test_missing_csv(self):
        (response,) = run(_served(
            AnonymizationService(),
            {"op": "delta", "state_key": "0" * 32},
        ))
        assert response["code"] == "bad-request"

    def test_k_mismatch_rejected(self):
        base, delta, _ = grown_pair()
        service = AnonymizationService()
        _, response = run(_served(
            service,
            _solve_request(base),
            {"op": "delta", "state_key": state_key(
                base, 3, "incremental", service.backend
            ), "csv": delta.to_csv(), "k": 4},
        ))
        assert not response["ok"]
        assert response["code"] == "bad-request"
        assert "k=4" in response["error"]

    def test_degree_mismatch_rejected(self):
        base, _, _ = grown_pair()
        service = AnonymizationService()
        narrow = Table([("x",)], attributes=("a",))
        _, response = run(_served(
            service,
            _solve_request(base),
            {"op": "delta", "state_key": state_key(
                base, 3, "incremental", service.backend
            ), "csv": narrow.to_csv()},
        ))
        assert response["code"] == "bad-request"
        assert "degree" in response["error"]

    def test_attribute_mismatch_rejected(self):
        base, delta, _ = grown_pair()
        renamed = Table(
            delta.rows,
            attributes=tuple(f"not_{a}" for a in delta.attributes),
        )
        service = AnonymizationService()
        _, response = run(_served(
            service,
            _solve_request(base),
            {"op": "delta", "state_key": state_key(
                base, 3, "incremental", service.backend
            ), "csv": renamed.to_csv()},
        ))
        assert response["code"] == "bad-request"
        assert "attributes" in response["error"]

    def test_header_only_delta_rejected(self):
        base, delta, _ = grown_pair()
        service = AnonymizationService()
        header_only = delta.to_csv().splitlines()[0] + "\n"
        _, response = run(_served(
            service,
            _solve_request(base),
            {"op": "delta", "state_key": state_key(
                base, 3, "incremental", service.backend
            ), "csv": header_only},
        ))
        assert response["code"] == "bad-request"
        assert "no rows" in response["error"]

    def test_unusable_stored_state_is_unknown_state(self):
        base, delta, _ = grown_pair()
        service = AnonymizationService()
        key = state_key(base, 3, "incremental", service.backend)
        (solve,) = run(_served(service, _solve_request(base)))
        # sabotage the stored entry the way a foreign writer could
        service.cache.put(key, {"not-a-state": True})
        (response,) = run(_served(
            service,
            {"op": "delta", "state_key": key, "csv": delta.to_csv()},
        ))
        assert response["code"] == "unknown-state"


# ----------------------------------------------------------------------
# Disk-tier state round trip (server restart survival)
# ----------------------------------------------------------------------


class TestStatePersistence:
    def test_state_survives_a_server_restart(self, tmp_path):
        base, delta, grown = grown_pair()
        first = AnonymizationService(cache_dir=str(tmp_path))
        (solve,) = run(_served(first, _solve_request(base)))
        key = solve["state_key"]
        # the stored entry is a valid, versioned snapshot on disk
        entry = first.cache.get(key)
        state = IncrementalState.from_dict(entry["state"])
        assert state.rows == base.rows
        # a brand-new service over the same cache dir continues it
        second = AnonymizationService(cache_dir=str(tmp_path))
        (growth,) = run(_served(
            second,
            {"op": "delta", "state_key": key, "csv": delta.to_csv()},
        ))
        assert growth["ok"]
        assert Table.from_csv(growth["csv"]).n_rows == grown.n_rows

    def test_memory_only_eviction_yields_unknown_state(self):
        base, delta, _ = grown_pair()
        service = AnonymizationService(max_entries=1)
        (solve,) = run(_served(service, _solve_request(base)))
        # max_entries=1: storing the solution evicted the state entry
        (response,) = run(_served(
            service,
            {"op": "delta", "state_key": solve["state_key"],
             "csv": delta.to_csv()},
        ))
        assert response["code"] == "unknown-state"


# ----------------------------------------------------------------------
# TCP wire + client + CLI
# ----------------------------------------------------------------------


@pytest.fixture(scope="class")
def server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("delta-cache")
    with ServiceServer(
        AnonymizationService(
            max_entries=64, batch_window=0.002, cache_dir=str(cache_dir)
        )
    ) as running:
        yield running


@pytest.mark.usefixtures("server")
class TestDeltaOverTheWire:
    def test_client_delta_round_trip(self, server):
        base, delta, grown = grown_pair(seed=7)
        with ServiceClient(*server.address) as client:
            solve = client.anonymize(base, 3, algorithm="incremental")
            assert solve["state_key"]
            growth = client.delta(solve["state_key"], delta)
            assert growth["table"].n_rows == grown.n_rows
            assert is_k_anonymous(growth["table"], 3)
            assert growth["state_key"] != solve["state_key"]
            assert growth["delta"]["rows_added"] == delta.n_rows

    def test_client_delta_unknown_state_raises(self, server):
        _, delta, _ = grown_pair(seed=7)
        with ServiceClient(*server.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.delta("f" * 32, delta)
        assert excinfo.value.code == "unknown-state"

    def test_cli_submit_delta(self, server, tmp_path, capsys):
        base, delta, grown = grown_pair(seed=11)
        host, port = server.address
        flags = ["--host", host, "--port", str(port)]
        base_csv = tmp_path / "base.csv"
        delta_csv = tmp_path / "delta.csv"
        write_csv(base, base_csv)
        write_csv(delta, delta_csv)

        assert main(["submit", str(base_csv), "-k", "3",
                     "--algorithm", "incremental"] + flags) == 0
        err = capsys.readouterr().err
        assert "state key: " in err
        key = err.split("state key: ")[1].split()[0]

        assert main(["submit", str(delta_csv),
                     "--delta", key] + flags) == 0
        captured = capsys.readouterr()
        assert f"+{delta.n_rows} rows" in captured.err
        assert "state key: " in captured.err
        released = Table.from_csv(captured.out)
        assert released.n_rows == grown.n_rows
        assert is_k_anonymous(released, 3)
