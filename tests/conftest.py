"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backend import available_backends, default_backend_name
from repro.core.table import Table


def pytest_report_header(config) -> str:
    return (
        f"repro backend: {default_backend_name()} "
        f"(available: {', '.join(available_backends())})"
    )


@pytest.fixture
def hospital_table() -> Table:
    """The paper's introductory X-ray example (Section 1)."""
    return Table(
        [
            ("Harry", "Stone", 34, "Afr-Am"),
            ("John", "Reyser", 36, "Cauc"),
            ("Beatrice", "Stone", 47, "Afr-Am"),
            ("John", "Ramos", 22, "Hisp"),
        ],
        attributes=["first", "last", "age", "race"],
    )


@pytest.fixture
def tiny_binary_table() -> Table:
    """Four binary rows, the corners of a 2-cube, times one duplicate."""
    return Table([(0, 0), (0, 1), (1, 0), (1, 1), (0, 0)])


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def random_table(rng: np.random.Generator, n: int, m: int, sigma: int) -> Table:
    data = rng.integers(0, sigma, size=(n, m))
    return Table([tuple(int(v) for v in row) for row in data])
