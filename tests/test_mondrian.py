"""Tests for the Mondrian baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.mondrian import MondrianAnonymizer, _best_cut, leaf_size_histogram
from repro.core.table import Table

from .conftest import random_table


class TestBestCut:
    def test_cuts_on_most_diverse_attribute(self):
        t = Table([(0, i) for i in range(6)])
        left, right = _best_cut(t, list(range(6)), 2)
        assert len(left) >= 2 and len(right) >= 2
        cut_values = {t[i][1] for i in left} & {t[i][1] for i in right}
        assert not cut_values  # a clean value boundary

    def test_no_cut_on_identical_rows(self):
        t = Table([(1, 1)] * 6)
        assert _best_cut(t, list(range(6)), 2) is None

    def test_no_cut_when_sides_too_small(self):
        t = Table([(0,), (0,), (0,), (1,)])
        # the only boundary leaves 1 row on one side < k=2
        assert _best_cut(t, list(range(4)), 2) is None


class TestMondrian:
    def test_valid_output(self):
        import numpy as np

        t = random_table(np.random.default_rng(0), 20, 4, 4)
        result = MondrianAnonymizer().anonymize(t, 3)
        assert result.is_valid(t)

    def test_leaves_at_least_k(self):
        import numpy as np

        t = random_table(np.random.default_rng(1), 25, 3, 3)
        result = MondrianAnonymizer().anonymize(t, 4)
        assert result.partition is not None
        assert all(len(g) >= 4 for g in result.partition.groups)

    def test_clusters_found(self):
        # two well-separated blocks should be cut apart
        t = Table([(0, 0)] * 4 + [(9, 9)] * 4)
        result = MondrianAnonymizer().anonymize(t, 4)
        assert result.stars == 0

    def test_extras_and_histogram(self):
        t = Table([(0, 0)] * 4 + [(9, 9)] * 4)
        result = MondrianAnonymizer().anonymize(t, 4)
        assert result.extras["cuts"] == 1
        assert result.extras["leaves"] == 2
        assert leaf_size_histogram(result) == {4: 2}

    def test_histogram_empty_without_partition(self):
        from repro.algorithms.baselines import SuppressEverythingAnonymizer

        t = Table([(1,)] * 3)
        result = SuppressEverythingAnonymizer().anonymize(t, 3)
        assert leaf_size_histogram(result) == {}

    def test_empty_and_infeasible(self):
        from repro.algorithms.base import InfeasibleAnonymizationError

        assert MondrianAnonymizer().anonymize(Table([]), 2).stars == 0
        with pytest.raises(InfeasibleAnonymizationError):
            MondrianAnonymizer().anonymize(Table([(1,)]), 2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 4))
    def test_always_valid(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 30))
        t = random_table(rng, n, 4, 4)
        result = MondrianAnonymizer().anonymize(t, k)
        assert result.is_valid(t)

    def test_strict_leaves_cannot_be_cut(self):
        """Every leaf really is uncuttable — the strict-Mondrian stopping
        criterion."""
        import numpy as np

        t = random_table(np.random.default_rng(3), 18, 3, 3)
        result = MondrianAnonymizer().anonymize(t, 3)
        assert result.partition is not None
        for group in result.partition.groups:
            if len(group) >= 6:
                assert _best_cut(t, sorted(group), 3) is None
