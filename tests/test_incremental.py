"""Tests for incremental anonymization and the shared partition DP."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.incremental import (
    IncrementalAnonymizer,
    IncrementalBatchAnonymizer,
    IncrementalState,
)
from repro.algorithms.partition_dp import minimum_cost_partition
from repro.core.alphabet import STAR
from repro.core.anonymity import is_k_anonymous
from repro.core.table import Table

from .conftest import random_table


class TestPartitionDpEngine:
    def test_zero_cost_function(self):
        cost, groups = minimum_cost_partition(6, 2, lambda members: 0.0)
        assert cost == 0.0
        assert sorted(i for g in groups for i in g) == list(range(6))
        assert all(2 <= len(g) <= 3 for g in groups)

    def test_prefers_cheap_groups(self):
        # cost = spread of indices: consecutive pairs are optimal
        def spread(members):
            return max(members) - min(members)

        cost, groups = minimum_cost_partition(6, 2, spread)
        assert cost == 3.0
        assert {frozenset({0, 1}), frozenset({2, 3}), frozenset({4, 5})} == set(
            groups
        )

    def test_group_max_override(self):
        cost, groups = minimum_cost_partition(
            6, 2, lambda m: float(len(m)), group_max=2
        )
        assert all(len(g) == 2 for g in groups)
        assert cost == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            minimum_cost_partition(1, 2, lambda m: 0.0)
        with pytest.raises(ValueError):
            minimum_cost_partition(3, 0, lambda m: 0.0)
        with pytest.raises(ValueError):
            minimum_cost_partition(3, 2, lambda m: 0.0, group_max=1)
        assert minimum_cost_partition(0, 3, lambda m: 0.0) == (0.0, [])

    def test_cost_function_called_once_per_group(self):
        calls = []

        def counting(members):
            calls.append(members)
            return 0.0

        minimum_cost_partition(5, 2, counting)
        assert len(calls) == len(set(calls))


class TestOptimalRecoding:
    def test_suppression_hierarchies_match_exact(self):
        """With height-1 hierarchies, recoding loss == OPT stars."""
        import numpy as np

        from repro.algorithms.exact import optimal_anonymization
        from repro.generalization import Hierarchy
        from repro.generalization.optimal_recoding import optimal_recoding

        for seed in range(4):
            t = random_table(np.random.default_rng(seed), 8, 3, 3)
            hierarchies = [
                Hierarchy.suppression(sorted({row[j] for row in t.rows}))
                for j in range(3)
            ]
            loss, _ = optimal_recoding(t, 2, hierarchies)
            opt, _ = optimal_anonymization(t, 2)
            assert loss == pytest.approx(opt)

    def test_real_hierarchies_lose_less(self):
        """Interval hierarchies never lose more than suppression."""
        from repro.algorithms.exact import optimal_anonymization
        from repro.generalization import interval_hierarchy
        from repro.generalization.optimal_recoding import optimal_recoding

        t = Table([(2,), (3,), (12,), (13,)])
        hierarchy = interval_hierarchy(0, 16, base_width=2, branching=2)
        loss, partition = optimal_recoding(t, 2, hierarchies=[hierarchy])
        opt, _ = optimal_anonymization(t, 2)
        assert loss <= opt
        # the natural grouping pairs neighbours
        assert {frozenset({0, 1}), frozenset({2, 3})} == set(partition.groups)

    def test_recoded_release_is_k_anonymous(self):
        from repro.generalization import interval_hierarchy, recode_partition
        from repro.generalization.optimal_recoding import optimal_recoding

        t = Table([(1,), (6,), (9,), (14,)])
        hierarchy = interval_hierarchy(0, 16, base_width=4, branching=2)
        _, partition = optimal_recoding(t, 2, [hierarchy])
        released = recode_partition(t, partition, [hierarchy])
        assert is_k_anonymous(released, 2)

    def test_validation(self):
        from repro.generalization import Hierarchy
        from repro.generalization.optimal_recoding import optimal_recoding

        h = Hierarchy.suppression([1, 2])
        with pytest.raises(ValueError):
            optimal_recoding(Table([(1,), (2,)]), 2, [h, h])
        with pytest.raises(ValueError):
            optimal_recoding(Table([(1,)]), 2, [h])
        assert optimal_recoding(Table([], attributes=["a"]), 2, [h])[0] == 0.0


class TestIncrementalAnonymizer:
    def test_doctest_scenario(self):
        inc = IncrementalAnonymizer(k=2, degree=2)
        inc.insert([(0, 0), (0, 1)])
        assert inc.released().rows == ((0, STAR), (0, STAR))
        inc.insert([(5, 5)])
        assert inc.released().rows[2] == (STAR, STAR)
        assert inc.n_pending == 1
        inc.insert([(5, 5)])
        assert inc.released().rows[2] == (5, 5)
        assert inc.n_pending == 0

    def test_snapshots_always_k_anonymous(self):
        import numpy as np

        rng = np.random.default_rng(0)
        inc = IncrementalAnonymizer(k=3, degree=3)
        for _ in range(15):
            batch = [tuple(int(v) for v in rng.integers(0, 3, size=3))]
            inc.insert(batch)
            assert inc.is_publishable()
            snapshot = inc.released()
            # the full snapshot (pending all-star rows included) is
            # k-anonymous whenever the all-star class is empty or big
            if inc.n_pending == 0:
                assert is_k_anonymous(snapshot, 3)

    def test_images_only_coarsen(self):
        """Once a cell is released, later snapshots never reveal more
        about it — the anti-intersection-attack invariant."""
        import numpy as np

        rng = np.random.default_rng(1)
        inc = IncrementalAnonymizer(k=2, degree=3)
        previous: list[tuple] = []
        previously_settled: set[int] = set()
        for _ in range(20):
            inc.insert([tuple(int(v) for v in rng.integers(0, 2, size=3))])
            current = list(inc.released().rows)
            for i in previously_settled:
                # a *published* (settled) cell, once starred, stays starred;
                # pending rows are withheld, not published, so their later
                # reveal is fine and they are excluded here
                for old_value, new_value in zip(previous[i], current[i]):
                    if old_value is STAR:
                        assert new_value is STAR
            previous = current
            previously_settled = set(inc._group_of)

    def test_batch_insert(self):
        inc = IncrementalAnonymizer(k=2, degree=1)
        inc.insert([(1,), (1,), (2,), (2,), (3,)])
        assert inc.n_rows == 5
        assert inc.n_pending == 1

    def test_degree_validation(self):
        inc = IncrementalAnonymizer(k=2, degree=2)
        with pytest.raises(ValueError, match="degree"):
            inc.insert([(1,)])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IncrementalAnonymizer(k=0, degree=1)
        with pytest.raises(ValueError):
            IncrementalAnonymizer(k=2, degree=-1)

    def test_attributes_carried(self):
        inc = IncrementalAnonymizer(k=2, degree=2, attributes=["a", "b"])
        inc.insert([(1, 2), (1, 3)])
        assert inc.released().attributes == ("a", "b")

    def test_groups_never_exceed_2k_minus_1(self):
        import numpy as np

        rng = np.random.default_rng(2)
        inc = IncrementalAnonymizer(k=2, degree=2)
        for _ in range(30):
            inc.insert([tuple(int(v) for v in rng.integers(0, 2, size=2))])
        assert all(len(g) <= 3 for g in inc._groups)

    def test_empty_snapshot(self):
        inc = IncrementalAnonymizer(k=3, degree=2)
        assert inc.released().n_rows == 0
        assert inc.is_publishable()
        assert inc.total_stars() == 0

    def test_insert_is_atomic_on_mid_batch_degree_mismatch(self):
        """Regression: a bad row mid-batch used to leave earlier rows
        of the same batch already appended (and possibly flushed)."""
        inc = IncrementalAnonymizer(k=2, degree=2)
        inc.insert([(0, 0), (0, 1)])
        released_before = inc.released().rows
        with pytest.raises(ValueError, match="row 2 of degree 3"):
            # rows 0-1 are valid and would have flushed a new group
            # under the old row-at-a-time loop; row 2 is torn
            inc.insert([(5, 5), (5, 6), (5, 6, 7)])
        assert inc.n_rows == 2
        assert inc.n_pending == 0
        assert inc.released().rows == released_before
        # the engine still works after the rejected batch
        inc.insert([(5, 5), (5, 6)])
        assert inc.n_rows == 4

    def test_insert_atomicity_with_generator_input(self):
        """A half-consumed generator must not leak rows in either."""
        inc = IncrementalAnonymizer(k=2, degree=1)

        def rows():
            yield (1,)
            yield (2, 3)

        with pytest.raises(ValueError):
            inc.insert(rows())
        assert inc.n_rows == 0


class TestIncrementalState:
    def _streamed(self):
        inc = IncrementalAnonymizer(k=2, degree=2, attributes=("x", "y"))
        inc.insert([(0, 0), (0, 1), (7, 7), (7, 8), (3, 3)])
        return inc

    def test_export_restore_round_trip(self):
        inc = self._streamed()
        restored = IncrementalAnonymizer.from_state(inc.export_state())
        assert restored.released() == inc.released()
        assert restored.groups() == inc.groups()
        assert restored.n_pending == inc.n_pending

    def test_as_dict_survives_json_and_star_cells(self):
        inc = self._streamed()
        state = inc.export_state()
        # group images contain STAR cells; they must survive the trip
        assert any(STAR in image for image in state.images)
        payload = json.loads(json.dumps(state.as_dict()))
        rebuilt = IncrementalState.from_dict(payload)
        assert rebuilt == state
        restored = IncrementalAnonymizer.from_state(rebuilt)
        assert restored.released() == inc.released()

    def test_star_token_identified_with_suppression(self):
        # the wire encoding uses the CSV star token, so a literal "*"
        # cell decodes to STAR — the same identification CSV makes
        assert IncrementalState._decode_cell("*") is STAR
        assert IncrementalState._encode_cell(STAR) == "*"

    def test_restored_engine_is_replay_equivalent(self):
        inc = self._streamed()
        restored = IncrementalAnonymizer.from_state(inc.export_state())
        tail = [(3, 4), (0, 0), (9, 9), (9, 9)]
        inc.insert(tail)
        restored.insert(tail)
        assert restored.released() == inc.released()
        inc.finalize()
        restored.finalize()
        assert restored.released() == inc.released()

    def test_unknown_version_rejected(self):
        state = self._streamed().export_state()
        payload = dict(state.as_dict(), version=99)
        with pytest.raises(ValueError, match="version 99"):
            IncrementalState.from_dict(payload)

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            IncrementalState.from_dict({"version": 1, "k": 2})
        with pytest.raises(ValueError, match="malformed"):
            IncrementalState.from_dict({})

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2)),
            min_size=2, max_size=24,
        ),
        st.integers(0, 23),
        st.integers(2, 3),
    )
    def test_replay_equivalence_property(self, rows, cut, k):
        """Snapshotting at ANY point of a stream and replaying the rest
        equals the uninterrupted run — the delta verb's correctness."""
        cut = min(cut, len(rows))
        cold = IncrementalAnonymizer(k=k, degree=2)
        cold.insert(rows)
        prefix = IncrementalAnonymizer(k=k, degree=2)
        prefix.insert(rows[:cut])
        resumed = IncrementalAnonymizer.from_state(prefix.export_state())
        resumed.insert(rows[cut:])
        assert resumed.released() == cold.released()
        assert resumed.groups() == cold.groups()
        if cold._groups:
            cold.finalize()
            resumed.finalize()
            assert resumed.released() == cold.released()


class TestHonestFinalizeMetadata:
    def test_finalize_prefers_under_cap_groups(self):
        # two settled groups: one AT the k=2 cap whose image matches
        # the leftover exactly (delta cost 0), one under cap and far
        # away.  The old finalize picked the cheap at-cap group; it
        # must strictly prefer the under-cap one.
        state = IncrementalState(
            k=2, degree=1, attributes=None,
            rows=((1,), (1,), (1,), (9,), (8,), (1,)),
            groups=((0, 1, 2), (3, 4)),
            images=((1,), (STAR,)),
            pending=(5,),
        )
        inc = IncrementalAnonymizer.from_state(state)
        inc.finalize()
        assert sorted(len(g) for g in inc._groups) == [3, 3]
        assert not inc.cap_exceeded
        assert inc.is_publishable()

    def test_cap_exceeded_surfaced_when_unavoidable(self):
        # every group at cap plus a leftover: overflow is the only way
        # to settle it, and the engine must say so instead of papering
        # over the broken [k, 2k-1] bound
        state = IncrementalState(
            k=2, degree=1, attributes=None,
            rows=((1,), (1,), (1,), (2,)),
            groups=((0, 1, 2),),
            images=((1,),),
            pending=(3,),
        )
        inc = IncrementalAnonymizer.from_state(state)
        assert not inc.cap_exceeded
        inc.finalize()
        assert [len(g) for g in inc._groups] == [4]
        assert inc.cap_exceeded

    def test_batch_facade_reports_honest_k_max(self):
        # 4 rows, k=2: stream flushes one group of 2, finalize must
        # settle the rest without silently widening the metadata
        table = Table([(1,), (1,), (1,), (2,)])
        result = IncrementalBatchAnonymizer().anonymize(table, 2)
        assert result.is_valid(table)
        if result.extras["cap_exceeded"]:
            sizes = [len(g) for g in result.partition.groups]
            assert result.partition.k_max == max(sizes)
        else:
            assert result.partition.k_max == 3

    def test_batch_facade_captures_state_on_request(self):
        table = Table([(1, 2), (1, 3), (4, 5), (4, 5), (4, 6)])
        plain = IncrementalBatchAnonymizer().anonymize(table, 2)
        assert "incremental_state" not in plain.extras
        capturing = IncrementalBatchAnonymizer(capture_state=True)
        result = capturing.anonymize(table, 2)
        state = IncrementalState.from_dict(
            result.extras["incremental_state"]
        )
        # the snapshot is pre-finalize: replaying nothing + finalize
        # reproduces the released table exactly
        engine = IncrementalAnonymizer.from_state(state)
        engine.finalize()
        assert engine.released() == result.anonymized
