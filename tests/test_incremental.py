"""Tests for incremental anonymization and the shared partition DP."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.incremental import IncrementalAnonymizer
from repro.algorithms.partition_dp import minimum_cost_partition
from repro.core.alphabet import STAR
from repro.core.anonymity import is_k_anonymous
from repro.core.table import Table

from .conftest import random_table


class TestPartitionDpEngine:
    def test_zero_cost_function(self):
        cost, groups = minimum_cost_partition(6, 2, lambda members: 0.0)
        assert cost == 0.0
        assert sorted(i for g in groups for i in g) == list(range(6))
        assert all(2 <= len(g) <= 3 for g in groups)

    def test_prefers_cheap_groups(self):
        # cost = spread of indices: consecutive pairs are optimal
        def spread(members):
            return max(members) - min(members)

        cost, groups = minimum_cost_partition(6, 2, spread)
        assert cost == 3.0
        assert {frozenset({0, 1}), frozenset({2, 3}), frozenset({4, 5})} == set(
            groups
        )

    def test_group_max_override(self):
        cost, groups = minimum_cost_partition(
            6, 2, lambda m: float(len(m)), group_max=2
        )
        assert all(len(g) == 2 for g in groups)
        assert cost == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            minimum_cost_partition(1, 2, lambda m: 0.0)
        with pytest.raises(ValueError):
            minimum_cost_partition(3, 0, lambda m: 0.0)
        with pytest.raises(ValueError):
            minimum_cost_partition(3, 2, lambda m: 0.0, group_max=1)
        assert minimum_cost_partition(0, 3, lambda m: 0.0) == (0.0, [])

    def test_cost_function_called_once_per_group(self):
        calls = []

        def counting(members):
            calls.append(members)
            return 0.0

        minimum_cost_partition(5, 2, counting)
        assert len(calls) == len(set(calls))


class TestOptimalRecoding:
    def test_suppression_hierarchies_match_exact(self):
        """With height-1 hierarchies, recoding loss == OPT stars."""
        import numpy as np

        from repro.algorithms.exact import optimal_anonymization
        from repro.generalization import Hierarchy
        from repro.generalization.optimal_recoding import optimal_recoding

        for seed in range(4):
            t = random_table(np.random.default_rng(seed), 8, 3, 3)
            hierarchies = [
                Hierarchy.suppression(sorted({row[j] for row in t.rows}))
                for j in range(3)
            ]
            loss, _ = optimal_recoding(t, 2, hierarchies)
            opt, _ = optimal_anonymization(t, 2)
            assert loss == pytest.approx(opt)

    def test_real_hierarchies_lose_less(self):
        """Interval hierarchies never lose more than suppression."""
        from repro.algorithms.exact import optimal_anonymization
        from repro.generalization import interval_hierarchy
        from repro.generalization.optimal_recoding import optimal_recoding

        t = Table([(2,), (3,), (12,), (13,)])
        hierarchy = interval_hierarchy(0, 16, base_width=2, branching=2)
        loss, partition = optimal_recoding(t, 2, hierarchies=[hierarchy])
        opt, _ = optimal_anonymization(t, 2)
        assert loss <= opt
        # the natural grouping pairs neighbours
        assert {frozenset({0, 1}), frozenset({2, 3})} == set(partition.groups)

    def test_recoded_release_is_k_anonymous(self):
        from repro.generalization import interval_hierarchy, recode_partition
        from repro.generalization.optimal_recoding import optimal_recoding

        t = Table([(1,), (6,), (9,), (14,)])
        hierarchy = interval_hierarchy(0, 16, base_width=4, branching=2)
        _, partition = optimal_recoding(t, 2, [hierarchy])
        released = recode_partition(t, partition, [hierarchy])
        assert is_k_anonymous(released, 2)

    def test_validation(self):
        from repro.generalization import Hierarchy
        from repro.generalization.optimal_recoding import optimal_recoding

        h = Hierarchy.suppression([1, 2])
        with pytest.raises(ValueError):
            optimal_recoding(Table([(1,), (2,)]), 2, [h, h])
        with pytest.raises(ValueError):
            optimal_recoding(Table([(1,)]), 2, [h])
        assert optimal_recoding(Table([], attributes=["a"]), 2, [h])[0] == 0.0


class TestIncrementalAnonymizer:
    def test_doctest_scenario(self):
        inc = IncrementalAnonymizer(k=2, degree=2)
        inc.insert([(0, 0), (0, 1)])
        assert inc.released().rows == ((0, STAR), (0, STAR))
        inc.insert([(5, 5)])
        assert inc.released().rows[2] == (STAR, STAR)
        assert inc.n_pending == 1
        inc.insert([(5, 5)])
        assert inc.released().rows[2] == (5, 5)
        assert inc.n_pending == 0

    def test_snapshots_always_k_anonymous(self):
        import numpy as np

        rng = np.random.default_rng(0)
        inc = IncrementalAnonymizer(k=3, degree=3)
        for _ in range(15):
            batch = [tuple(int(v) for v in rng.integers(0, 3, size=3))]
            inc.insert(batch)
            assert inc.is_publishable()
            snapshot = inc.released()
            # the full snapshot (pending all-star rows included) is
            # k-anonymous whenever the all-star class is empty or big
            if inc.n_pending == 0:
                assert is_k_anonymous(snapshot, 3)

    def test_images_only_coarsen(self):
        """Once a cell is released, later snapshots never reveal more
        about it — the anti-intersection-attack invariant."""
        import numpy as np

        rng = np.random.default_rng(1)
        inc = IncrementalAnonymizer(k=2, degree=3)
        previous: list[tuple] = []
        previously_settled: set[int] = set()
        for _ in range(20):
            inc.insert([tuple(int(v) for v in rng.integers(0, 2, size=3))])
            current = list(inc.released().rows)
            for i in previously_settled:
                # a *published* (settled) cell, once starred, stays starred;
                # pending rows are withheld, not published, so their later
                # reveal is fine and they are excluded here
                for old_value, new_value in zip(previous[i], current[i]):
                    if old_value is STAR:
                        assert new_value is STAR
            previous = current
            previously_settled = set(inc._group_of)

    def test_batch_insert(self):
        inc = IncrementalAnonymizer(k=2, degree=1)
        inc.insert([(1,), (1,), (2,), (2,), (3,)])
        assert inc.n_rows == 5
        assert inc.n_pending == 1

    def test_degree_validation(self):
        inc = IncrementalAnonymizer(k=2, degree=2)
        with pytest.raises(ValueError, match="degree"):
            inc.insert([(1,)])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IncrementalAnonymizer(k=0, degree=1)
        with pytest.raises(ValueError):
            IncrementalAnonymizer(k=2, degree=-1)

    def test_attributes_carried(self):
        inc = IncrementalAnonymizer(k=2, degree=2, attributes=["a", "b"])
        inc.insert([(1, 2), (1, 3)])
        assert inc.released().attributes == ("a", "b")

    def test_groups_never_exceed_2k_minus_1(self):
        import numpy as np

        rng = np.random.default_rng(2)
        inc = IncrementalAnonymizer(k=2, degree=2)
        for _ in range(30):
            inc.insert([tuple(int(v) for v in rng.integers(0, 2, size=2))])
        assert all(len(g) <= 3 for g in inc._groups)

    def test_empty_snapshot(self):
        inc = IncrementalAnonymizer(k=3, degree=2)
        assert inc.released().n_rows == 0
        assert inc.is_publishable()
        assert inc.total_stars() == 0
