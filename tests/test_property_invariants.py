"""Cross-cutting property-based invariants over all algorithms.

These are the repository's strongest guarantees, enforced by hypothesis
over random tables:

1. every algorithm's output is k-anonymous;
2. every output is a pure suppression of the input (Definition 2.1);
3. no algorithm beats the exact optimum;
4. the paper's approximation bounds hold with the exact optimum in hand;
5. the objective equals the suppressor's star count equals the
   partition's ANON cost.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    CenterCoverAnonymizer,
    DataflyAnonymizer,
    GreedyCoverAnonymizer,
    KMemberAnonymizer,
    MondrianAnonymizer,
    MSTForestAnonymizer,
    RandomPartitionAnonymizer,
    SortedChunkAnonymizer,
)
from repro.algorithms.exact import optimal_anonymization
from repro.core.anonymity import is_k_anonymous, suppressed_cell_count
from repro.core.suppressor import Suppressor
from repro.theory import theorem_4_1_ratio, theorem_4_2_ratio

from .conftest import random_table

ALL_FAST_ALGORITHMS = [
    CenterCoverAnonymizer(),
    MondrianAnonymizer(),
    DataflyAnonymizer(),
    KMemberAnonymizer(),
    MSTForestAnonymizer(),
    RandomPartitionAnonymizer(seed=0),
    SortedChunkAnonymizer(),
]

table_params = st.tuples(
    st.integers(0, 10 ** 6),  # seed
    st.integers(2, 4),        # k
    st.integers(1, 5),        # m
    st.integers(2, 5),        # alphabet
)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
@given(table_params)
def test_all_algorithms_release_k_anonymous_suppressions(params):
    seed, k, m, sigma = params
    rng = np.random.default_rng(seed)
    n = int(rng.integers(k, 24))
    table = random_table(rng, n, m, sigma)
    for algorithm in ALL_FAST_ALGORITHMS:
        result = algorithm.anonymize(table, k)
        assert is_k_anonymous(result.anonymized, k), algorithm.name
        # Definition 2.1: each output cell is the original value or STAR
        Suppressor.from_tables(table, result.anonymized)
        # objective bookkeeping is consistent
        assert result.stars == suppressed_cell_count(result.anonymized)
        assert result.stars == result.suppressor.total_stars()


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10 ** 6), st.integers(2, 3))
def test_no_algorithm_beats_exact(seed, k):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(k, 9))
    table = random_table(rng, n, 3, 3)
    opt, _ = optimal_anonymization(table, k)
    for algorithm in ALL_FAST_ALGORITHMS + [GreedyCoverAnonymizer()]:
        assert algorithm.anonymize(table, k).stars >= opt, algorithm.name


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 6), st.integers(2, 3), st.integers(2, 4))
def test_paper_bounds_hold(seed, k, m):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(k, 9))
    table = random_table(rng, n, m, 3)
    opt, _ = optimal_anonymization(table, k)

    greedy = GreedyCoverAnonymizer().anonymize(table, k).stars
    center = CenterCoverAnonymizer().anonymize(table, k).stars
    if opt == 0:
        assert greedy == 0
        assert center == 0
    else:
        assert greedy <= theorem_4_1_ratio(k) * opt
        assert center <= theorem_4_2_ratio(k, m) * opt


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10 ** 6), st.integers(2, 4))
def test_partition_based_results_are_internally_consistent(seed, k):
    """partition.anon_cost == stars, groups within bounds, disjoint,
    covering."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(k, 20))
    table = random_table(rng, n, 4, 3)
    for algorithm in [
        CenterCoverAnonymizer(),
        KMemberAnonymizer(),
        MSTForestAnonymizer(),
        SortedChunkAnonymizer(),
    ]:
        result = algorithm.anonymize(table, k)
        partition = result.partition
        assert partition is not None
        partition.validate()
        assert partition.is_partition()
        assert partition.anon_cost(table) == result.stars


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 6), st.integers(2, 3))
def test_anonymizing_twice_is_idempotent_in_cost(seed, k):
    """Re-anonymizing an already-k-anonymous table costs nothing more."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(k, 15))
    table = random_table(rng, n, 3, 3)
    first = CenterCoverAnonymizer().anonymize(table, k)
    second = CenterCoverAnonymizer().anonymize(first.anonymized, k)
    assert second.stars == first.stars


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 6), st.integers(2, 3))
def test_opt_monotone_in_k(seed, k):
    """OPT(V, k) <= OPT(V, k+1): stronger privacy never costs less."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(k + 1, 9))
    table = random_table(rng, n, 3, 3)
    weaker, _ = optimal_anonymization(table, k)
    stronger, _ = optimal_anonymization(table, k + 1)
    assert weaker <= stronger


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_opt_invariant_under_row_permutation(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 9))
    table = random_table(rng, n, 3, 3)
    opt, _ = optimal_anonymization(table, 2)
    order = rng.permutation(n)
    shuffled = table.select_rows([int(i) for i in order])
    opt_shuffled, _ = optimal_anonymization(shuffled, 2)
    assert opt == opt_shuffled


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_opt_invariant_under_column_permutation(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 9))
    table = random_table(rng, n, 4, 3)
    opt, _ = optimal_anonymization(table, 2)
    cols = [int(c) for c in rng.permutation(4)]
    permuted = table.project(cols)
    opt_permuted, _ = optimal_anonymization(permuted, 2)
    assert opt == opt_permuted


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_adding_duplicate_rows_never_raises_opt_per_existing_row(seed):
    """Duplicating the whole relation k times makes OPT scale at most
    linearly (each copy can reuse the original grouping)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 6))
    table = random_table(rng, n, 3, 3)
    opt, _ = optimal_anonymization(table, 2)
    doubled = table.with_rows(list(table.rows) * 2)
    opt_doubled, _ = optimal_anonymization(doubled, 2)
    assert opt_doubled <= 2 * opt


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10 ** 6), st.integers(2, 4))
def test_cover_algorithms_backend_invariant(seed, k):
    """python/numpy/bitpacked produce byte-identical releases.

    The backends are bit-identical on every distance primitive and the
    cover algorithms break ties deterministically, so the chosen backend
    must never change a single released cell.
    """
    from repro.algorithms import ReduceCoverAnonymizer
    from repro.core.backend import available_backends

    rng = np.random.default_rng(seed)
    n = int(rng.integers(k, 18))
    table = random_table(rng, n, 4, 3)
    for factory in [
        lambda b: CenterCoverAnonymizer(backend=b),
        lambda b: CenterCoverAnonymizer(diameter_mode="exact", backend=b),
        lambda b: ReduceCoverAnonymizer(backend=b),
    ]:
        releases = {
            factory(backend).anonymize(table, k).anonymized.rows
            for backend in available_backends()
        }
        assert len(releases) == 1


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_greedy_cover_backend_invariant(seed):
    from repro.core.backend import available_backends

    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 10))
    table = random_table(rng, n, 3, 3)
    releases = {
        GreedyCoverAnonymizer(backend=backend).anonymize(table, 2)
        .anonymized.rows
        for backend in available_backends()
    }
    assert len(releases) == 1
