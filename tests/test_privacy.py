"""Tests for the privacy analysis extensions (l-diversity, risk)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import CenterCoverAnonymizer, MondrianAnonymizer
from repro.core.alphabet import STAR
from repro.core.table import Table
from repro.privacy import (
    LDiverseAnonymizer,
    diversity_level,
    is_l_diverse,
    linkage_attack,
    prosecutor_risk,
    risk_report,
)

from .conftest import random_table


class TestDiversityPredicates:
    def test_diversity_level(self):
        released = Table([(1,), (1,), (2,), (2,)])
        sensitive = ["flu", "cold", "flu", "flu"]
        # class (1,): {flu, cold} = 2; class (2,): {flu} = 1
        assert diversity_level(released, sensitive) == 1

    def test_is_l_diverse(self):
        released = Table([(1,), (1,), (2,), (2,)])
        sensitive = ["flu", "cold", "flu", "hep"]
        assert is_l_diverse(released, sensitive, 2)
        assert not is_l_diverse(released, sensitive, 3)

    def test_homogeneity_attack_detected(self):
        """The classic failure k-anonymity alone permits: a k-anonymous
        class where everyone shares the diagnosis."""
        released = Table([(1,), (1,), (1,)])
        sensitive = ["HIV", "HIV", "HIV"]
        assert not is_l_diverse(released, sensitive, 2)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            diversity_level(Table([(1,)]), ["a", "b"])
        with pytest.raises(ValueError):
            is_l_diverse(Table([(1,)]), ["a"], 0)

    def test_empty_table(self):
        assert is_l_diverse(Table([]), [], 3)
        assert diversity_level(Table([]), []) == 0


class TestLDiverseAnonymizer:
    def _instance(self, seed=0, n=18):
        import numpy as np

        rng = np.random.default_rng(seed)
        identifiers = random_table(rng, n, 3, 3)
        sensitive = [str(int(v)) for v in rng.integers(0, 3, size=n)]
        return identifiers, sensitive

    def test_enforces_l_diversity(self):
        identifiers, sensitive = self._instance()
        result = LDiverseAnonymizer(2).anonymize_with_sensitive(
            identifiers, 3, sensitive
        )
        assert result.is_valid(identifiers)
        assert is_l_diverse(result.anonymized, sensitive, 2)

    def test_costs_at_least_base(self):
        identifiers, sensitive = self._instance(seed=1)
        base = CenterCoverAnonymizer().anonymize(identifiers, 3).stars
        result = LDiverseAnonymizer(2).anonymize_with_sensitive(
            identifiers, 3, sensitive
        )
        assert result.stars >= base
        assert result.extras["base_stars"] == base

    def test_impossible_diversity_rejected(self):
        identifiers, _ = self._instance()
        uniform = ["same"] * identifiers.n_rows
        with pytest.raises(ValueError, match="distinct sensitive"):
            LDiverseAnonymizer(2).anonymize_with_sensitive(
                identifiers, 3, uniform
            )

    def test_last_column_convention(self):
        table = Table(
            [(0, 0, "flu"), (0, 0, "cold"), (0, 1, "flu"), (0, 1, "hep")]
        )
        result = LDiverseAnonymizer(2).anonymize(table, 2)
        # Same schema as the input: the sensitive column is split off
        # for the solve but reattached untouched in the release.
        assert result.anonymized.degree == table.degree
        assert result.anonymized.attributes == table.attributes
        assert result.anonymized.column(2) == table.column(2)
        released_qi = result.anonymized.project([0, 1])
        assert is_l_diverse(released_qi, table.column(2), 2)

    def test_needs_two_columns(self):
        with pytest.raises(ValueError, match="quasi-identifier"):
            LDiverseAnonymizer(2).anonymize(Table([(1,), (2,)]), 2)

    def test_invalid_l(self):
        with pytest.raises(ValueError):
            LDiverseAnonymizer(0)

    def test_name(self):
        assert LDiverseAnonymizer(3).name == "center_cover+ldiv3"

    def test_works_over_mondrian(self):
        identifiers, sensitive = self._instance(seed=2)
        result = LDiverseAnonymizer(
            2, inner=MondrianAnonymizer()
        ).anonymize_with_sensitive(identifiers, 3, sensitive)
        assert is_l_diverse(result.anonymized, sensitive, 2)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_property_always_diverse(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(8, 24))
        identifiers = random_table(rng, n, 3, 3)
        sensitive = [int(v) for v in rng.integers(0, 4, size=n)]
        if len(set(sensitive)) < 2:
            return
        result = LDiverseAnonymizer(2).anonymize_with_sensitive(
            identifiers, 2, sensitive
        )
        assert result.is_valid(identifiers)
        assert is_l_diverse(result.anonymized, sensitive, 2)


class TestProsecutorRisk:
    def test_per_record_reciprocal_class_size(self):
        t = Table([(1,), (1,), (2,), (2,), (2,)])
        assert prosecutor_risk(t) == [0.5, 0.5, 1 / 3, 1 / 3, 1 / 3]

    def test_report(self):
        t = Table([(1,), (1,), (2,)])
        report = risk_report(t)
        assert report.max_risk == 1.0
        assert report.records_at_max == 1
        assert report.class_count == 2
        assert not report.meets_k(2)

    def test_empty(self):
        assert risk_report(Table([])).max_risk == 0.0

    def test_k_anonymity_caps_risk_at_1_over_k(self):
        """The quantitative content of the paper's privacy parameter."""
        import numpy as np

        for seed in range(5):
            t = random_table(np.random.default_rng(seed), 20, 4, 3)
            for k in (2, 4):
                released = CenterCoverAnonymizer().anonymize(t, k).anonymized
                assert risk_report(released).meets_k(k)


class TestLinkageAttack:
    def test_raw_release_reidentifies(self):
        original = Table([(30, "M"), (40, "F"), (50, "M")])
        counts = linkage_attack(original, original, ["alice", "bob", "carol"])
        assert counts == {"alice": 1, "bob": 1, "carol": 1}

    def test_k_anonymous_release_resists(self):
        original = Table([(30, "M"), (31, "M"), (40, "F"), (41, "F")])
        released = CenterCoverAnonymizer().anonymize(original, 2).anonymized
        counts = linkage_attack(
            released, original, ["a", "b", "c", "d"]
        )
        assert all(count >= 2 for count in counts.values())

    def test_stars_match_anything(self):
        released = Table([(STAR, "M"), (STAR, "M")])
        external = Table([(99, "M")])
        assert linkage_attack(released, external, ["x"]) == {"x": 2}

    def test_absent_individual_can_have_zero(self):
        released = Table([(30, "M")])
        external = Table([(77, "F")])
        assert linkage_attack(released, external, ["ghost"]) == {"ghost": 0}

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="schema"):
            linkage_attack(Table([(1,)]), Table([(1, 2)]), ["x"])
        with pytest.raises(ValueError, match="identity"):
            linkage_attack(Table([(1,)]), Table([(1,)]), ["x", "y"])

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 4))
    def test_property_k_anonymity_bounds_linkage(self, seed, k):
        """Every present individual matches >= k released records."""
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 20))
        original = random_table(rng, n, 3, 3)
        released = CenterCoverAnonymizer().anonymize(original, k).anonymized
        counts = linkage_attack(released, original, list(range(n)))
        assert all(count >= k for count in counts.values())