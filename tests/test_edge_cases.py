"""Edge-case robustness across the stack.

Unusual but legal inputs: exotic value types, extreme k, degenerate
shapes, already-anonymized inputs.  These are the inputs a downstream
user will eventually throw at the library.
"""

import pytest

from repro import (
    CenterCoverAnonymizer,
    ExactAnonymizer,
    KMemberAnonymizer,
    MondrianAnonymizer,
    MSTForestAnonymizer,
    STAR,
    SortedChunkAnonymizer,
    Table,
    is_k_anonymous,
    optimal_anonymization,
)

ALGORITHMS = [
    CenterCoverAnonymizer(),
    MondrianAnonymizer(),
    KMemberAnonymizer(),
    MSTForestAnonymizer(),
    SortedChunkAnonymizer(),
]


class TestExoticValues:
    def test_unicode_values(self):
        t = Table([("café", "東京"), ("café", "大阪"), ("thé", "東京"),
                   ("thé", "大阪")])
        for algorithm in ALGORITHMS:
            assert algorithm.anonymize(t, 2).is_valid(t)

    def test_none_as_a_data_value(self):
        """None is a legitimate attribute value, distinct from STAR."""
        t = Table([(None, 1), (None, 2), (3, 1), (3, 2)])
        result = CenterCoverAnonymizer().anonymize(t, 2)
        assert result.is_valid(t)
        # None survives where groups agree on it
        assert any(
            cell is None for row in result.anonymized.rows for cell in row
        ) or result.stars >= 4

    def test_boolean_and_mixed_types(self):
        t = Table([(True, "x"), (False, "x"), (True, "y"), (False, "y")])
        for algorithm in ALGORITHMS:
            assert algorithm.anonymize(t, 2).is_valid(t)

    def test_string_star_vs_suppression_symbol(self):
        """A literal "*" string value must not be confused with STAR."""
        t = Table([("*", 1), ("*", 2)])
        result = ExactAnonymizer().anonymize(t, 2)
        assert result.anonymized.rows[0][0] == "*"
        assert result.anonymized.rows[0][0] is not STAR
        assert result.stars == 2  # only the second column is starred

    def test_tuple_valued_cells(self):
        t = Table([((1, 2), "a"), ((1, 2), "b"), ((3, 4), "a"), ((3, 4), "b")])
        result = CenterCoverAnonymizer().anonymize(t, 2)
        assert result.is_valid(t)


class TestExtremeShapes:
    def test_k_equals_n(self):
        t = Table([(i, i % 2) for i in range(5)])
        for algorithm in ALGORITHMS:
            result = algorithm.anonymize(t, 5)
            assert result.is_valid(t)
            assert is_k_anonymous(result.anonymized, 5)

    def test_single_column(self):
        t = Table([(v,) for v in [1, 1, 2, 2, 3]])
        opt, _ = optimal_anonymization(t, 2)
        assert opt == 3  # the lone 3 must join a group, starring it
        for algorithm in ALGORITHMS:
            assert algorithm.anonymize(t, 2).is_valid(t)

    def test_single_row_k1(self):
        t = Table([(1, 2, 3)])
        result = CenterCoverAnonymizer().anonymize(t, 1)
        assert result.stars == 0

    def test_very_wide_table(self):
        t = Table([tuple(range(64))] * 2 + [tuple(range(1, 65))] * 2)
        result = CenterCoverAnonymizer().anonymize(t, 2)
        assert result.is_valid(t)
        assert result.stars == 0

    def test_all_rows_identical(self):
        t = Table([("same",) * 3] * 9)
        for algorithm in ALGORITHMS:
            assert algorithm.anonymize(t, 4).stars == 0

    def test_all_rows_maximally_different(self):
        t = Table([(i, i, i) for i in range(6)])
        opt, _ = optimal_anonymization(t, 3)
        assert opt == 18  # everything must be starred
        for algorithm in ALGORITHMS:
            assert algorithm.anonymize(t, 3).stars == 18

    def test_zero_column_table(self):
        t = Table([(), (), ()])
        assert is_k_anonymous(t, 3)
        result = CenterCoverAnonymizer().anonymize(t, 3)
        assert result.stars == 0


class TestAlreadyAnonymizedInputs:
    def test_starred_input_cells_are_values(self):
        """Anonymizing a table that already contains STAR cells treats
        them as ordinary (matching) values."""
        t = Table([(STAR, 1), (STAR, 1), (STAR, 2), (STAR, 2)])
        result = CenterCoverAnonymizer().anonymize(t, 2)
        # already 2-anonymous: the suppressor adds nothing new (the four
        # pre-existing stars still count in the released table's total)
        assert result.suppressor.total_stars() == 0
        assert result.anonymized == t
        assert is_k_anonymous(result.anonymized, 2)

    def test_partially_starred_input(self):
        t = Table([(STAR, 1), (2, 1), (STAR, 3), (2, 3)])
        result = ExactAnonymizer().anonymize(t, 2)
        assert result.is_valid(t)

    def test_reanonymizing_at_higher_k(self):
        t = Table([(i % 3, i % 2) for i in range(12)])
        first = CenterCoverAnonymizer().anonymize(t, 2)
        second = CenterCoverAnonymizer().anonymize(first.anonymized, 4)
        assert is_k_anonymous(second.anonymized, 4)


class TestDegenerateParameters:
    def test_k_one_everywhere(self):
        t = Table([(i,) for i in range(4)])
        for algorithm in ALGORITHMS:
            result = algorithm.anonymize(t, 1)
            assert result.stars == 0

    def test_large_k_on_duplicates(self):
        t = Table([(7,)] * 20)
        result = CenterCoverAnonymizer().anonymize(t, 10)
        assert result.stars == 0
        assert is_k_anonymous(result.anonymized, 10)
