"""Tests for the instrumentation layer: time budgets and run traces."""

from __future__ import annotations

import json
import time

import pytest

from repro.algorithms import (
    CenterCoverAnonymizer,
    LocalSearchAnonymizer,
    MondrianAnonymizer,
)
from repro.core.table import Table
from repro.instrument import (
    BudgetExceededError,
    RunTrace,
    TimeBudget,
    as_budget,
    format_trace,
    tracing_default,
)

from .conftest import random_table


# ----------------------------------------------------------------------
# TimeBudget semantics
# ----------------------------------------------------------------------


def test_unlimited_budget_never_expires():
    budget = TimeBudget(None)
    assert not budget.limited
    assert not budget.expired()
    assert budget.remaining() is None
    budget.check()  # never raises


def test_zero_budget_expires_immediately():
    budget = TimeBudget(0.0)
    assert budget.limited
    assert budget.expired()
    assert budget.remaining() == 0.0
    with pytest.raises(BudgetExceededError):
        budget.check("a test loop")


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        TimeBudget(-1.0)


def test_budget_clock_is_lazy_and_start_idempotent():
    budget = TimeBudget(60.0)
    assert budget._deadline is None  # not armed until first check
    budget.start()
    armed = budget._deadline
    time.sleep(0.002)
    budget.start()  # idempotent: a running clock is kept
    assert budget._deadline == armed
    budget.reset()
    assert budget._deadline is None


def test_budget_actually_expires_with_time():
    budget = TimeBudget(0.01).start()
    time.sleep(0.02)
    assert budget.expired()


def test_as_budget_coercions():
    assert not as_budget(None).limited
    assert as_budget(0.5).seconds == 0.5
    assert as_budget(2).seconds == 2.0
    existing = TimeBudget(1.0)
    assert as_budget(existing) is existing  # instances shared deliberately
    # numbers always yield a fresh budget: no state leaks between calls
    assert as_budget(1.0) is not as_budget(1.0)


def test_budget_exceeded_is_a_timeout_error():
    assert issubclass(BudgetExceededError, TimeoutError)


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


def test_tracing_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert tracing_default() is False
    result = CenterCoverAnonymizer().anonymize(Table([(0, 0)] * 4), 2)
    assert "trace" not in result.extras


def test_repro_trace_env_enables_tracing(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    assert tracing_default() is True
    result = CenterCoverAnonymizer().anonymize(Table([(0, 0), (0, 1)] * 3), 2)
    assert "trace" in result.extras


def test_per_call_trace_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    table = Table([(0, 0), (0, 1)] * 3)
    assert "trace" not in CenterCoverAnonymizer().anonymize(
        table, 2, trace=False
    ).extras
    monkeypatch.delenv("REPRO_TRACE")
    assert "trace" in CenterCoverAnonymizer().anonymize(
        table, 2, trace=True
    ).extras


def test_trace_round_trips_json_with_nonzero_counters(rng):
    table = random_table(rng, 30, 4, 3)
    result = CenterCoverAnonymizer().anonymize(table, 3, trace=True)
    trace = result.extras["trace"]
    rebuilt = json.loads(json.dumps(trace))
    assert rebuilt == trace
    assert trace["algorithm"] == "center_cover"
    assert trace["n_rows"] == 30 and trace["degree"] == 4
    assert trace["total_seconds"] > 0
    assert trace["deadline_hit"] is False
    assert "cover" in trace["phases"] and "suppress" in trace["phases"]
    # distance work must be visible: the ball cover reads the full matrix
    assert sum(trace["backend_counters"].values()) > 0
    # and the dataclass form rehydrates
    assert RunTrace.from_dict(trace).to_dict() == trace


def test_backend_counters_are_per_call_deltas(rng):
    from repro.core.backend import get_backend

    table = random_table(rng, 20, 4, 3)
    algorithm = MondrianAnonymizer()
    algorithm.anonymize(table, 2, trace=True)  # warm the shared backend
    backend = get_backend(table)
    before = dict(backend.counters)
    trace = algorithm.anonymize(table, 2, trace=True).extras["trace"]
    # backends are cached per table, so raw counters accumulate across
    # calls; the trace must report this call's work only.
    manual = {
        name: value - before.get(name, 0)
        for name, value in backend.counters.items()
    }
    assert trace["backend_counters"] == manual


def test_wrapper_algorithms_report_their_phases(rng):
    table = random_table(rng, 24, 4, 3)
    result = LocalSearchAnonymizer().anonymize(table, 2, trace=True)
    trace = result.extras["trace"]
    assert "base" in trace["phases"] and "improve" in trace["phases"]
    assert trace["counters"]["rounds"] >= 1


def test_format_trace_mentions_the_essentials(rng):
    table = random_table(rng, 12, 3, 3)
    trace = CenterCoverAnonymizer().anonymize(table, 2, trace=True).extras[
        "trace"
    ]
    text = format_trace(trace)
    assert text.startswith("trace: center_cover k=2 on 12x3")
    assert "phase cover" in text


def test_constructor_trace_default_applies():
    table = Table([(0, 0), (1, 1)] * 3)
    algorithm = CenterCoverAnonymizer(trace=True)
    assert "trace" in algorithm.anonymize(table, 2).extras
    # per-call override still wins
    assert "trace" not in algorithm.anonymize(table, 2, trace=False).extras
