"""Tests for the vectorized distance matrix fast path.

These exercise the backend layer's cached ``distance_matrix()`` —
the supported spelling — plus one test pinning the deprecation
contract of the old ``fast_pairwise_distance_matrix`` shim.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import STAR
from repro.core.backend import get_backend
from repro.core.distance import pairwise_distance_matrix
from repro.core.table import Table

from .conftest import random_table


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_fast_matches_reference(seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    n = int(rng.integers(0, 12))
    m = int(rng.integers(1, 5))
    table = random_table(rng, n, m, 4)
    assert get_backend(table).distance_matrix() == pairwise_distance_matrix(
        table
    )


def test_starred_tables_fall_back_correctly():
    table = Table([(STAR, 1), (2, 1), (STAR, 3)])
    assert get_backend(table).distance_matrix() == pairwise_distance_matrix(
        table
    )


def test_mixed_type_values():
    table = Table([("a", 1), ("b", 1), ("a", 2)])
    fast = get_backend(table).distance_matrix()
    assert fast == [[0, 1, 1], [1, 0, 2], [2, 2, 0]] or fast == (
        pairwise_distance_matrix(table)
    )
    assert fast == pairwise_distance_matrix(table)


def test_degenerate_shapes():
    assert get_backend(Table([])).distance_matrix() == []
    assert get_backend(Table([(), ()])).distance_matrix() == [[0, 0], [0, 0]]
    assert get_backend(Table([(1,)])).distance_matrix() == [[0]]


def test_returns_plain_python_ints():
    table = Table([(0,), (1,)])
    matrix = get_backend(table).distance_matrix()
    assert type(matrix) is list
    assert type(matrix[0][1]) is int


def test_deprecated_shim_warns_and_still_works():
    from repro.core.distance import fast_pairwise_distance_matrix

    table = Table([(0, 0), (0, 1)])
    with pytest.deprecated_call():
        matrix = fast_pairwise_distance_matrix(table)
    assert matrix == pairwise_distance_matrix(table)
