"""Tests for the vectorized distance matrix fast path."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import STAR
from repro.core.distance import (
    fast_pairwise_distance_matrix,
    pairwise_distance_matrix,
)
from repro.core.table import Table

from .conftest import random_table


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_fast_matches_reference(seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    n = int(rng.integers(0, 12))
    m = int(rng.integers(1, 5))
    table = random_table(rng, n, m, 4)
    assert fast_pairwise_distance_matrix(table) == pairwise_distance_matrix(
        table
    )


def test_starred_tables_fall_back_correctly():
    table = Table([(STAR, 1), (2, 1), (STAR, 3)])
    assert fast_pairwise_distance_matrix(table) == pairwise_distance_matrix(
        table
    )


def test_mixed_type_values():
    table = Table([("a", 1), ("b", 1), ("a", 2)])
    fast = fast_pairwise_distance_matrix(table)
    assert fast == [[0, 1, 1], [1, 0, 2], [2, 2, 0]] or fast == (
        pairwise_distance_matrix(table)
    )
    assert fast == pairwise_distance_matrix(table)


def test_degenerate_shapes():
    assert fast_pairwise_distance_matrix(Table([])) == []
    assert fast_pairwise_distance_matrix(Table([(), ()])) == [[0, 0], [0, 0]]
    assert fast_pairwise_distance_matrix(Table([(1,)])) == [[0]]


def test_returns_plain_python_ints():
    table = Table([(0,), (1,)])
    matrix = fast_pairwise_distance_matrix(table)
    assert type(matrix) is list
    assert type(matrix[0][1]) is int
