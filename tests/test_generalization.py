"""Tests for interval hierarchies, lattices, recoding, and Samarati."""

import pytest

from repro.core.table import Table
from repro.generalization.hierarchy import Hierarchy
from repro.generalization.interval import interval_hierarchy
from repro.generalization.lattice import GeneralizationLattice
from repro.generalization.recoding import (
    generalization_precision,
    generalize_table,
    group_lca_levels,
)
from repro.generalization.samarati import samarati


class TestIntervalHierarchy:
    def test_power_of_two_range(self):
        h = interval_hierarchy(0, 8, base_width=2, branching=2)
        assert h.generalize(5, 1) == "4-5"
        assert h.generalize(5, 2) == "4-7"
        assert h.generalize(5, 3) == "0-7"
        assert h.generalize(5, 4) == "*"
        assert h.height == 4

    def test_uneven_range(self):
        h = interval_hierarchy(0, 6, base_width=2, branching=2)
        # 3 base buckets -> 2 -> 1 -> root; all values reachable
        for value in range(6):
            assert h.generalize(value, h.height) == "*"

    def test_all_values_are_leaves(self):
        h = interval_hierarchy(10, 25, base_width=5)
        assert set(h.leaves) == set(range(10, 25))

    def test_wider_branching(self):
        h = interval_hierarchy(0, 27, base_width=3, branching=3)
        assert h.generalize(0, 1) == "0-2"
        assert h.generalize(0, 2) == "0-8"
        assert h.generalize(26, 2) == "18-26"

    def test_errors(self):
        with pytest.raises(ValueError):
            interval_hierarchy(5, 5, base_width=1)
        with pytest.raises(ValueError):
            interval_hierarchy(0, 10, base_width=0)
        with pytest.raises(ValueError):
            interval_hierarchy(0, 10, base_width=2, branching=1)

    def test_duplicate_labels_disambiguated(self):
        # 0-1 appears as a base bucket and as the lone merged bucket
        h = interval_hierarchy(0, 2, base_width=2, branching=2)
        assert h.height == 2
        assert h.generalize(0, 1) == "0-1"
        assert h.generalize(0, 2) == "*"


class TestRecoding:
    @pytest.fixture
    def table(self):
        return Table(
            [(34, "Afr-Am"), (36, "Cauc"), (47, "Afr-Am"), (22, "Hisp")],
            attributes=["age", "race"],
        )

    @pytest.fixture
    def hierarchies(self):
        return [
            interval_hierarchy(0, 80, base_width=10, branching=2),
            Hierarchy.from_nested({"*": {"person": ["Afr-Am", "Cauc", "Hisp"]}}),
        ]

    def test_generalize_table(self, table, hierarchies):
        out = generalize_table(table, hierarchies, [1, 0])
        assert out.rows[0] == ("30-39", "Afr-Am")
        assert out.rows[3] == ("20-29", "Hisp")

    def test_zero_levels_identity(self, table, hierarchies):
        assert generalize_table(table, hierarchies, [0, 0]) == table

    def test_arity_mismatch(self, table, hierarchies):
        with pytest.raises(ValueError):
            generalize_table(table, hierarchies[:1], [0])
        with pytest.raises(ValueError):
            generalization_precision(table, hierarchies, [0])

    def test_precision_bounds(self, table, hierarchies):
        assert generalization_precision(table, hierarchies, [0, 0]) == 1.0
        top = [h.height for h in hierarchies]
        assert generalization_precision(table, hierarchies, top) == 0.0
        mid = generalization_precision(table, hierarchies, [1, 1])
        assert 0.0 < mid < 1.0

    def test_group_lca_levels(self, table, hierarchies):
        levels = group_lca_levels(table, hierarchies, [0, 2])
        # 34 and 47 split at 0-39/40-79 (level 3); level 4 = 0-79 unifies
        assert levels == [4, 0]

    def test_group_lca_empty_rejected(self, table, hierarchies):
        with pytest.raises(ValueError):
            group_lca_levels(table, hierarchies, [])

    def test_suppression_hierarchy_matches_disagreements(self):
        from repro.core.distance import disagreeing_coordinates

        t = Table([(1, 2), (1, 3)])
        hs = [Hierarchy.suppression([1]), Hierarchy.suppression([2, 3])]
        levels = group_lca_levels(t, hs, [0, 1])
        disagreements = disagreeing_coordinates(list(t.rows))
        assert [j for j, lvl in enumerate(levels) if lvl] == disagreements


class TestLattice:
    @pytest.fixture
    def lattice(self):
        return GeneralizationLattice(
            [Hierarchy.suppression(["a", "b"]),
             Hierarchy.from_nested({"*": {"x": ["1", "2"], "y": ["3"]}})]
        )

    def test_bounds(self, lattice):
        assert lattice.bottom == (0, 0)
        assert lattice.top == (1, 2)
        assert lattice.max_height == 3

    def test_height(self, lattice):
        assert lattice.height((1, 2)) == 3
        with pytest.raises(ValueError):
            lattice.height((2, 0))

    def test_nodes_at_height(self, lattice):
        assert sorted(lattice.nodes_at_height(1)) == [(0, 1), (1, 0)]
        assert list(lattice.nodes_at_height(99)) == []

    def test_successors(self, lattice):
        assert sorted(lattice.successors((0, 1))) == [(0, 2), (1, 1)]
        assert list(lattice.successors((1, 2))) == []

    def test_satisfies_monotone(self):
        t = Table([("a", "1"), ("b", "2"), ("a", "1"), ("b", "3")])
        lattice = GeneralizationLattice(
            [Hierarchy.suppression(["a", "b"]),
             Hierarchy.from_nested({"*": {"x": ["1", "2"], "y": ["3"]}})]
        )
        satisfied = {
            node: lattice.satisfies(t, node, 2)
            for h in range(lattice.max_height + 1)
            for node in lattice.nodes_at_height(h)
        }
        for node, ok in satisfied.items():
            if ok:
                for succ in lattice.successors(node):
                    assert satisfied[succ], f"{node} ok but {succ} not"

    def test_needs_hierarchies(self):
        with pytest.raises(ValueError):
            GeneralizationLattice([])


class TestSamarati:
    @pytest.fixture
    def table(self):
        return Table(
            [(34, "Afr-Am"), (36, "Cauc"), (47, "Afr-Am"), (38, "Cauc")],
            attributes=["age", "race"],
        )

    @pytest.fixture
    def hierarchies(self):
        return [
            interval_hierarchy(0, 80, base_width=10, branching=2),
            Hierarchy.from_nested({"*": {"person": ["Afr-Am", "Cauc"]}}),
        ]

    def test_finds_minimal_height(self, table, hierarchies):
        node, height = samarati(table, hierarchies, 2)
        lattice = GeneralizationLattice(hierarchies)
        assert lattice.satisfies(table, node, 2)
        assert sum(node) == height
        # nothing at any smaller height works
        for smaller in range(height):
            for candidate in lattice.nodes_at_height(smaller):
                assert not lattice.satisfies(table, candidate, 2)

    def test_zero_height_when_already_anonymous(self, hierarchies):
        t = Table([(34, "Cauc"), (34, "Cauc")], attributes=["age", "race"])
        node, height = samarati(t, hierarchies, 2)
        assert node == (0, 0) and height == 0

    def test_max_suppression_lowers_height(self, hierarchies):
        t = Table(
            [(34, "Cauc"), (34, "Cauc"), (71, "Afr-Am")],
            attributes=["age", "race"],
        )
        _, strict = samarati(t, hierarchies, 2, max_suppressed_rows=0)
        _, relaxed = samarati(t, hierarchies, 2, max_suppressed_rows=1)
        assert relaxed <= strict
        assert relaxed == 0

    def test_infeasible(self, hierarchies):
        t = Table([(34, "Cauc")], attributes=["age", "race"])
        with pytest.raises(ValueError, match="full generalization"):
            samarati(t, hierarchies, 2)

    def test_hospital_example_generalization(self):
        """The paper's intro example, via generalization: ages 34/47 ->
        a shared bucket, races equal; John R. rows share 20-40."""
        t = Table(
            [(34, "Stone"), (47, "Stone"), (36, "R"), (22, "R")],
            attributes=["age", "last"],
        )
        hierarchies = [
            interval_hierarchy(0, 80, base_width=10, branching=2),
            Hierarchy.suppression(["Stone", "R"]),
        ]
        node, _ = samarati(t, hierarchies, 2)
        recoded = generalize_table(t, hierarchies, list(node))
        from repro.core.anonymity import is_k_anonymous

        assert is_k_anonymous(recoded, 2)
