"""Chaos and regression tests for the hardened service (PR 5).

Covers the four bugs the hardening pass fixed — coalesced followers
ignoring their own budget, leader traces recorded once per follower,
batch dedup imposing the first arrival's budget on key-sharers, torn
disk-cache entries crashing lookups — plus the new machinery: the
persistent :class:`~repro.experiments.WorkerPool` (reuse, recycling,
crash recovery), protocol-v2 request correlation, the retrying
:class:`~repro.service.ServiceClient`, and fault injection.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time

import pytest

from repro.artifacts import instance_key
from repro.core.table import Table
from repro.experiments import WorkerCrashError, WorkerPool
from repro.instrument import Backoff, TimeBudget
from repro.service import (
    AnonymizationService,
    ServiceClient,
    ServiceServer,
)
from repro.service.server import _Job, _SolveTask, _solve_task
from repro.workloads import census_table, quasi_identifiers


def small_table() -> Table:
    return quasi_identifiers(census_table(24, seed=0))


def run(coro):
    return asyncio.run(coro)


def _task(table: Table, k: int = 3, **overrides) -> _SolveTask:
    options = dict(
        csv=table.to_csv(), header=True, k=k, algorithm="center_cover",
        backend="python", timeout=None, trace=False,
    )
    options.update(overrides)
    return _SolveTask(**options)


# ----------------------------------------------------------------------
# Satellite 1: coalesced followers honour their own budget
# ----------------------------------------------------------------------


class TestFollowerBudget:
    def test_follower_budget_expires_while_waiting_on_leader(self):
        """A follower coalesced behind a slow (here: never-finishing)
        leader must come back ``budget-exceeded`` within its own
        allowance, not inherit the leader's."""
        table = small_table()
        service = AnonymizationService()
        request = {
            "op": "anonymize", "csv": table.to_csv(), "k": 3,
            "timeout": 0.05,
        }

        async def scenario():
            # key the way the server will: from the parsed wire CSV
            # (the workload table holds ints that become strings there)
            wire = Table.from_csv(table.to_csv(), header=True)
            key = instance_key(wire, 3, "center_cover", service.backend)
            # a leader that never resolves — the pre-fix follower would
            # wait on it forever despite its 50 ms budget
            service._inflight[key] = asyncio.get_running_loop().create_future()
            started = time.monotonic()
            response = await service.handle(request)
            waited = time.monotonic() - started
            await service.stop()
            return response, waited

        response, waited = run(scenario())
        assert response["ok"] is False
        assert response["code"] == "budget-exceeded"
        assert waited < 5.0  # promptly, not after the leader (never)
        assert service.coalesced == 1

    def test_coalescing_still_shares_one_solve(self):
        """The budget wrapper must not swallow the normal coalescing
        path: identical concurrent requests still share one solve."""
        table = small_table()
        service = AnonymizationService(batch_window=0.002)
        request = {"op": "anonymize", "csv": table.to_csv(), "k": 3}

        async def scenario():
            try:
                return await asyncio.gather(
                    service.handle(dict(request)),
                    service.handle(dict(request)),
                    service.handle(dict(request)),
                )
            finally:
                await service.stop()

        responses = run(scenario())
        assert all(r["ok"] for r in responses)
        caches = sorted(r["cache"] for r in responses)
        assert caches == ["coalesced", "coalesced", "miss"]


# ----------------------------------------------------------------------
# Satellite 1b: one solve, one recorded trace
# ----------------------------------------------------------------------


class TestTraceDeduplication:
    def test_coalesced_followers_do_not_reappend_leader_trace(self):
        table = small_table()
        service = AnonymizationService(batch_window=0.002)
        request = {
            "op": "anonymize", "csv": table.to_csv(), "k": 3, "trace": True,
        }

        async def scenario():
            try:
                return await asyncio.gather(
                    *(service.handle(dict(request)) for _ in range(3))
                )
            finally:
                await service.stop()

        responses = run(scenario())
        assert all(r["ok"] for r in responses)
        # every caller still *sees* the trace on its response…
        assert all(r.get("trace") for r in responses)
        # …but the server records the single underlying solve once
        assert len(service.traces) == 1


# ----------------------------------------------------------------------
# Satellite 2: batch dedup solves under the loosest budget
# ----------------------------------------------------------------------


class TestLoosestBudgetMerge:
    def _job(self, table, timeout, *, trace=False, fault=None, k=3):
        return _Job(
            key=instance_key(table, k, "center_cover", "python"),
            task=_task(table, k, timeout=timeout, trace=trace, fault=fault),
            budget=TimeBudget(timeout).start(),
            future=None,  # the merge never touches futures
        )

    def test_unlimited_sharer_lifts_the_group_budget(self):
        table = small_table()
        ready = [
            self._job(table, 0.2),
            self._job(table, None),
            self._job(table, 5.0),
        ]
        keys, tasks = AnonymizationService._merge_jobs(ready)
        assert len(keys) == len(tasks) == 1
        assert tasks[0].timeout is None

    def test_all_limited_group_takes_the_largest_remaining(self):
        table = small_table()
        ready = [self._job(table, 0.2), self._job(table, 30.0)]
        _, tasks = AnonymizationService._merge_jobs(ready)
        # pre-fix: setdefault kept the FIRST arrival's 0.2 s budget
        assert tasks[0].timeout is not None
        assert tasks[0].timeout > 10.0

    def test_trace_and_fault_merge_as_any_sharer_asked(self):
        table = small_table()
        ready = [
            self._job(table, None),
            self._job(table, None, trace=True),
            self._job(table, None, fault="kill-worker"),
        ]
        _, tasks = AnonymizationService._merge_jobs(ready)
        assert tasks[0].trace is True
        assert tasks[0].fault == "kill-worker"

    def test_distinct_keys_stay_distinct(self):
        a, b = small_table(), quasi_identifiers(census_table(24, seed=1))
        ready = [self._job(a, None), self._job(b, None), self._job(a, 1.0)]
        keys, tasks = AnonymizationService._merge_jobs(ready)
        assert len(keys) == len(tasks) == 2
        assert len(set(keys)) == 2


# ----------------------------------------------------------------------
# Satellite 3: torn cache files are a miss, not a crash
# ----------------------------------------------------------------------


class TestCorruptCacheSurvival:
    def test_service_resolves_after_disk_entry_is_torn(self, tmp_path):
        table = small_table()
        request = {"op": "anonymize", "csv": table.to_csv(), "k": 3}
        service = AnonymizationService(cache_dir=str(tmp_path))
        (first,) = run(_served_once(service, request))
        assert first["ok"] and first["cache"] == "miss"
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1
        # tear the entry the way a crash mid-write used to
        entries[0].write_text(first["csv"][: len(first["csv"]) // 2])
        service.cache.clear()  # force the disk tier
        service2 = AnonymizationService(cache=service.cache)
        (second,) = run(_served_once(service2, dict(request)))
        assert second["ok"]
        assert second["cache"] == "miss"  # quarantined, re-solved
        assert second["csv"] == first["csv"]
        assert service.cache.stats.corrupt == 1
        assert list(tmp_path.glob("*.corrupt"))


async def _served_once(service: AnonymizationService, *requests):
    try:
        return [await service.handle(r) for r in requests]
    finally:
        await service.stop()


# ----------------------------------------------------------------------
# The persistent worker pool
# ----------------------------------------------------------------------


class TestWorkerPool:
    def test_pool_reused_across_batches(self):
        table = small_table()
        with WorkerPool(1) as pool:
            first = pool.run(_solve_task, [_task(table)])
            executor = pool._executor
            second = pool.run(_solve_task, [_task(table)])
            assert pool._executor is executor  # same workers, no respawn
        assert first[0]["stars"] == second[0]["stars"]
        assert "error" not in first[0]
        assert pool.stats()["batches"] == 2
        assert pool.stats()["tasks"] == 2
        assert pool.stats()["rebuilds"] == 0

    def test_workers_recycled_after_max_tasks_per_child(self):
        table = small_table()
        with WorkerPool(1, max_tasks_per_child=2) as pool:
            pool.run(_solve_task, [_task(table)])
            executor = pool._executor
            pool.run(_solve_task, [_task(table)])
            assert pool._executor is executor  # 2 tasks: at the limit
            pool.run(_solve_task, [_task(table)])
            assert pool._executor is not executor  # recycled past it
            assert pool.recycled == 1
            assert "error" not in pool.run(_solve_task, [_task(table)])[0]

    def test_crash_raises_typed_error_then_pool_recovers(self):
        table = small_table()
        with WorkerPool(1) as pool:
            with pytest.raises(WorkerCrashError):
                pool.run(_solve_task, [_task(table, fault="kill-worker")])
            assert pool.alive is False
            outcome = pool.run(_solve_task, [_task(table)])  # respawns
            assert "error" not in outcome[0]
            assert pool.rebuilds == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            WorkerPool(0)
        with pytest.raises(ValueError, match="max_tasks_per_child"):
            WorkerPool(2, max_tasks_per_child=0)


class TestWorkerCrashMidBatch:
    def test_crash_fails_batch_with_internal_then_service_recovers(self):
        """A killed worker fails its own batch (code ``internal``) and
        the service keeps serving: the pool is rebuilt lazily."""
        table = small_table()
        service = AnonymizationService(
            jobs=2, batch_window=0.002, fault_injection=True,
        )
        crash = {
            "op": "anonymize", "csv": table.to_csv(), "k": 3,
            "fault": "kill-worker",
        }
        ok = {"op": "anonymize", "csv": table.to_csv(), "k": 3}
        first, second = run(_served_once(service, crash, ok))
        assert first["ok"] is False
        assert first["code"] == "internal"
        assert second["ok"] is True
        assert service._pool is not None
        assert service._pool.rebuilds == 1
        assert service.stats()["pool"]["mode"] == "persistent"


# ----------------------------------------------------------------------
# Fault injection plumbing
# ----------------------------------------------------------------------


class TestFaultInjection:
    def test_fault_field_rejected_when_injection_off(self):
        table = small_table()
        service = AnonymizationService()  # faults off by default
        (response,) = run(_served_once(service, {
            "op": "anonymize", "csv": table.to_csv(), "k": 3,
            "fault": "kill-worker",
        }))
        assert response["ok"] is False
        assert response["code"] == "bad-request"

    def test_unknown_fault_rejected_even_when_enabled(self):
        table = small_table()
        service = AnonymizationService(fault_injection=True)
        (response,) = run(_served_once(service, {
            "op": "anonymize", "csv": table.to_csv(), "k": 3,
            "fault": "set-fire",
        }))
        assert response["ok"] is False
        assert response["code"] == "bad-request"

    def test_env_variable_enables_injection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_FAULTS", "1")
        assert AnonymizationService().fault_injection is True
        monkeypatch.delenv("REPRO_SERVICE_FAULTS")
        assert AnonymizationService().fault_injection is False

    def test_connection_fault_parsing(self):
        service = AnonymizationService(fault_injection=True)
        assert service.connection_fault(
            {"fault": "delay:0.5"}) == ("delay", 0.5)
        assert service.connection_fault(
            {"fault": "drop-connection"}) == ("drop-connection", None)
        # worker-level and absent faults are not connection faults
        assert service.connection_fault({"fault": "kill-worker"}) is None
        assert service.connection_fault({"op": "ping"}) is None
        off = AnonymizationService()
        assert off.connection_fault({"fault": "delay:0.5"}) is None

    def test_inline_kill_worker_fails_as_internal(self):
        """With jobs=1 there is no worker process to kill; the fault
        degrades to a crash-shaped internal error instead of taking the
        whole server down with ``os._exit``."""
        table = small_table()
        service = AnonymizationService(fault_injection=True)
        (response,) = run(_served_once(service, {
            "op": "anonymize", "csv": table.to_csv(), "k": 3,
            "fault": "kill-worker",
        }))
        assert response["ok"] is False
        assert response["code"] == "internal"


# ----------------------------------------------------------------------
# Protocol v2 request correlation
# ----------------------------------------------------------------------


class TestRequestCorrelation:
    def test_id_echoed_on_success_and_error(self):
        table = small_table()
        service = AnonymizationService()
        ok, bad, ping = run(_served_once(
            service,
            {"op": "anonymize", "csv": table.to_csv(), "k": 3, "id": 17},
            {"op": "anonymize", "csv": "", "k": 3, "id": "abc"},
            {"op": "ping", "id": [1, 2]},
        ))
        assert ok["ok"] and ok["id"] == 17
        assert bad["ok"] is False and bad["id"] == "abc"
        assert ping["ok"] and ping["id"] == [1, 2]

    def test_v1_requests_get_no_id_field(self):
        service = AnonymizationService()
        (response,) = run(_served_once(service, {"op": "ping"}))
        assert "id" not in response


# ----------------------------------------------------------------------
# The retrying client (over a real TCP server)
# ----------------------------------------------------------------------


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestClientResilience:
    def test_client_reconnects_after_server_restart(self):
        """retries >= 1: a bounced server is invisible to the caller."""
        port = _free_port()
        backoff = Backoff(base=0.01, maximum=0.05)
        first = ServiceServer(AnonymizationService(), port=port)
        first.start()
        client = ServiceClient("127.0.0.1", port, retries=2,
                               backoff=backoff)
        try:
            assert client.ping()["ok"]
            first.stop()
            second = ServiceServer(AnonymizationService(), port=port)
            second.start()
            try:
                assert client.ping()["ok"]  # transparently reconnected
                assert client.counters["retries"] >= 1
                assert client.counters["reconnects"] >= 2
            finally:
                second.stop()
        finally:
            client.close()

    def test_dead_socket_closed_so_next_call_reconnects(self):
        """retries=0 (satellite 4): the failed call raises, but the
        client must shed the dead socket so the NEXT call succeeds —
        pre-fix it kept failing on the same half-dead connection."""
        port = _free_port()
        first = ServiceServer(AnonymizationService(), port=port)
        first.start()
        client = ServiceClient("127.0.0.1", port, retries=0)
        try:
            assert client.ping()["ok"]
            first.stop()
            with pytest.raises((ConnectionError, OSError)):
                client.ping()
            assert client._sock is None  # dead socket was shed
            second = ServiceServer(AnonymizationService(), port=port)
            second.start()
            try:
                assert client.ping()["ok"]
            finally:
                second.stop()
        finally:
            client.close()

    def test_stale_response_line_discarded_by_id(self):
        """A reply left over from an earlier request must not be paired
        with the current one."""
        with ServiceServer(AnonymizationService()) as server:
            with ServiceClient(*server.address) as client:
                assert client.ping()["ok"]  # connect
                # simulate a timed-out request the client never read:
                # its answer is sitting in the socket when we next call
                stale = {"op": "ping", "id": "stale-earlier-request"}
                client._sock.sendall(
                    json.dumps(stale).encode("utf-8") + b"\n"
                )
                time.sleep(0.2)  # let the server answer it
                response = client.ping()
                assert response["ok"]
                assert response["id"] != "stale-earlier-request"
                assert client.counters["stale_lines_discarded"] == 1

    def test_drop_connection_fault_raises_and_retry_is_bounded(self):
        """drop-connection: the server hangs up without answering; a
        non-retrying client surfaces ConnectionError."""
        service = AnonymizationService(fault_injection=True)
        with ServiceServer(service) as server:
            client = ServiceClient(*server.address, retries=0)
            try:
                with pytest.raises((ConnectionError, OSError)):
                    client.anonymize(small_table(), 3,
                                     fault="drop-connection")
            finally:
                client.close()
            # the server itself is fine afterwards
            with ServiceClient(*server.address) as fresh:
                assert fresh.ping()["ok"]

    def test_delay_fault_delays_but_answers(self):
        service = AnonymizationService(fault_injection=True)
        with ServiceServer(service) as server:
            with ServiceClient(*server.address) as client:
                started = time.monotonic()
                response = client.anonymize(small_table(), 3,
                                            fault="delay:0.3")
                elapsed = time.monotonic() - started
        assert response["ok"]
        assert elapsed >= 0.3

    def test_shutdown_is_never_retried(self):
        client = ServiceClient("127.0.0.1", _free_port(), retries=5,
                               timeout=2.0)
        started = time.monotonic()
        with pytest.raises(OSError):
            client.shutdown()  # nothing listening: fail fast, no backoff
        assert time.monotonic() - started < 1.5
        assert client.counters["retries"] == 0

    def test_retries_validation(self):
        with pytest.raises(ValueError, match="retries"):
            ServiceClient(retries=-1)
