"""ε-DP noisy release, the privacy accountant, and cross-algorithm
k-anonymity of released tables.

Property-based coverage (hypothesis) of the privacy tier's semantic
guarantees:

1. the noise mechanisms are sane (bins preserved, geometric noise is
   integer-valued, scale validation);
2. a seed makes every release bit-deterministic — the service relies on
   this to re-serve identical noise on cache hits;
3. the accountant never lets a dataset's spend exceed its budget, and a
   rejected charge leaves the ledger untouched;
4. every registered partition-based algorithm's release satisfies
   ``risk_report(release).meets_k(k)``.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import registry
from repro.privacy.dp import (
    MECHANISMS,
    BudgetExhaustedError,
    PrivacyAccountant,
    geometric_noise,
    laplace_noise,
    noisy_class_histogram,
    noisy_histogram,
)
from repro.privacy.risk import risk_report

from .conftest import random_table


class TestMechanisms:
    def test_laplace_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            laplace_noise(0.0, random.Random(0))
        with pytest.raises(ValueError):
            laplace_noise(-1.0, random.Random(0))

    def test_geometric_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            geometric_noise(0.0, random.Random(0))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10 ** 6), st.floats(0.1, 10.0))
    def test_geometric_noise_is_integer(self, seed, epsilon):
        noise = geometric_noise(epsilon, random.Random(seed))
        assert isinstance(noise, int)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10 ** 6), st.floats(0.05, 20.0))
    def test_mechanisms_are_seed_deterministic(self, seed, scale):
        assert laplace_noise(scale, random.Random(seed)) == laplace_noise(
            scale, random.Random(seed)
        )
        assert geometric_noise(scale, random.Random(seed)) == geometric_noise(
            scale, random.Random(seed)
        )

    def test_laplace_noise_concentrates_with_scale(self):
        """Mean |noise| tracks the scale (Laplace mean absolute = scale)."""
        rng = random.Random(7)
        small = [abs(laplace_noise(0.1, rng)) for _ in range(2000)]
        rng = random.Random(7)
        large = [abs(laplace_noise(10.0, rng)) for _ in range(2000)]
        assert sum(small) / len(small) < sum(large) / len(large)


histograms = st.dictionaries(
    st.text(min_size=1, max_size=5), st.integers(0, 1000),
    min_size=1, max_size=8,
)


class TestNoisyHistogram:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    @given(histograms, st.integers(0, 10 ** 6),
           st.sampled_from(MECHANISMS))
    def test_bins_preserved_and_deterministic(self, counts, seed, mechanism):
        noisy = noisy_histogram(counts, 1.0, mechanism=mechanism, seed=seed)
        assert set(noisy) == set(counts)
        again = noisy_histogram(counts, 1.0, mechanism=mechanism, seed=seed)
        assert noisy == again

    def test_different_seeds_differ(self):
        counts = {"a": 10, "b": 20, "c": 30}
        assert noisy_histogram(counts, 1.0, seed=0) != noisy_histogram(
            counts, 1.0, seed=1
        )

    def test_sequence_input_uses_positional_bins(self):
        noisy = noisy_histogram([5, 7], 2.0, seed=3)
        assert set(noisy) == {0, 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            noisy_histogram({"a": 1}, 0.0)
        with pytest.raises(ValueError):
            noisy_histogram({"a": -1}, 1.0)
        with pytest.raises(ValueError):
            noisy_histogram({"a": 1}, 1.0, mechanism="gaussian")
        with pytest.raises(ValueError):
            noisy_histogram({"a": 1}, 1.0, sensitivity=0.0)

    def test_class_histogram_covers_every_class(self, rng):
        table = random_table(rng, 12, 2, 2)
        release = noisy_class_histogram(table, 1.0, seed=0)
        from repro.core.anonymity import equivalence_classes

        assert len(release["classes"]) == len(equivalence_classes(table))
        assert release["epsilon"] == 1.0
        assert release["scale"] == 1.0
        assert release == noisy_class_histogram(table, 1.0, seed=0)


charge_sequences = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]), st.floats(0.01, 0.8)),
    min_size=1, max_size=20,
)


class TestPrivacyAccountant:
    @settings(max_examples=60, deadline=None)
    @given(charge_sequences, st.floats(0.5, 3.0))
    def test_never_over_spends(self, charges, budget):
        """Whatever the charge sequence, no dataset exceeds the budget,
        and a rejected charge leaves its dataset's spend unchanged."""
        acct = PrivacyAccountant(budget=budget)
        for dataset, epsilon in charges:
            before = acct.spent(dataset)
            try:
                acct.charge(dataset, epsilon)
            except BudgetExhaustedError:
                assert acct.spent(dataset) == before
            assert acct.spent(dataset) <= budget + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(charge_sequences)
    def test_unlimited_budget_still_tracks_spends(self, charges):
        acct = PrivacyAccountant()
        totals: dict[str, float] = {}
        for dataset, epsilon in charges:
            acct.charge(dataset, epsilon)
            totals[dataset] = totals.get(dataset, 0.0) + epsilon
        for dataset, total in totals.items():
            assert acct.spent(dataset) == pytest.approx(total)
            assert acct.remaining(dataset) is None

    def test_refund_restores_headroom(self):
        acct = PrivacyAccountant(budget=1.0)
        acct.charge("tbl", 1.0)
        with pytest.raises(BudgetExhaustedError):
            acct.charge("tbl", 0.5)
        acct.refund("tbl", 1.0)
        acct.charge("tbl", 0.5)
        assert acct.spent("tbl") == 0.5

    def test_refund_floors_at_zero(self):
        acct = PrivacyAccountant(budget=1.0)
        acct.charge("tbl", 0.2)
        acct.refund("tbl", 5.0)
        assert acct.spent("tbl") == 0.0
        assert acct.as_dict()["datasets"] == {}

    def test_budgets_are_per_dataset(self):
        acct = PrivacyAccountant(budget=1.0)
        acct.charge("a", 1.0)
        acct.charge("b", 1.0)  # a's exhaustion does not taint b
        with pytest.raises(BudgetExhaustedError):
            acct.charge("a", 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(budget=0.0)
        acct = PrivacyAccountant()
        with pytest.raises(ValueError):
            acct.charge("tbl", 0.0)
        with pytest.raises(ValueError):
            acct.refund("tbl", -1.0)

    def test_as_dict_snapshot(self):
        acct = PrivacyAccountant(budget=2.0)
        acct.charge("b", 0.5)
        acct.charge("a", 1.0)
        assert acct.as_dict() == {
            "budget": 2.0, "datasets": {"a": 1.0, "b": 0.5},
        }


class TestEveryAlgorithmMeetsK:
    """The registry-wide risk property: every applicable algorithm's
    release passes ``risk_report(release).meets_k(k)``."""

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_all_registered_algorithms(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2 * k, 12))
        # last column gets >= 2 distinct values so the l-diversity and
        # t-closeness wrappers are feasible alongside the plain solvers
        table = random_table(rng, n, 3, 2)
        if len(set(table.column(-1))) < 2:
            table = random_table(rng, n, 3, 3)
            if len(set(table.column(-1))) < 2:
                return  # astronomically unlikely twice; skip quietly
        for info in registry.all():
            if not info.is_applicable(n, 3, 2, k):
                continue
            if info.name == "pair_matching" and k != 2:
                continue  # pairs-only algorithm, k = 2 by construction
            result = info.make().anonymize(table, k)
            release = result.anonymized
            if info.name in ("ldiverse", "tclose"):
                # the privacy wrappers guarantee k-anonymity on the
                # quasi-identifier projection; the reattached sensitive
                # column stays diverse *within* each class by design
                release = release.project(range(release.degree - 1))
            report = risk_report(release)
            assert report.meets_k(k), (
                f"{info.name} released a table whose risk report fails "
                f"meets_k({k})"
            )
