"""Semantics of the radius-bucketed neighbor index on every backend.

``neighbor_order``/``neighbors_within`` back the ball enumeration of the
Theorem 4.2 center/ball algorithm, so these tests pin down the contract:
balls agree exactly with brute-force filtering of the distance matrix,
grow monotonically in the radius, and are served from one cached
distance row per center — ball enumeration never rescans all ``|V|``
rows per (center, radius) pair and never materializes the full matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.center_cover import build_ball_cover
from repro.algorithms.reduce_cover import ReduceCoverAnonymizer
from repro.core.backend import available_backends, make_backend
from repro.core.table import Table

from .conftest import random_table

ALL_BACKENDS = list(available_backends())


def _example_table(n: int = 14, m: int = 4, sigma: int = 3) -> Table:
    return random_table(np.random.default_rng(5), n, m, sigma)


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_neighbors_within_matches_brute_force(name):
    table = _example_table()
    backend = make_backend(table, name)
    matrix = [
        [backend.distance(i, j) for j in range(table.n_rows)]
        for i in range(table.n_rows)
    ]
    for center in range(table.n_rows):
        for r in range(-1, table.degree + 2):
            expected = sorted(
                v for v in range(table.n_rows) if matrix[center][v] <= r
            )
            assert sorted(backend.neighbors_within(center, r)) == expected


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_neighbors_within_is_monotone_in_radius(name):
    table = _example_table()
    backend = make_backend(table, name)
    for center in range(table.n_rows):
        previous: set[int] = set()
        for r in range(table.degree + 1):
            ball = set(backend.neighbors_within(center, r))
            assert previous <= ball
            previous = ball
        assert previous == set(range(table.n_rows))


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_neighbor_order_sorted_by_distance_then_index(name):
    table = _example_table()
    backend = make_backend(table, name)
    for center in range(table.n_rows):
        order, dists = backend.neighbor_order(center)
        assert len(order) == len(dists) == table.n_rows
        assert sorted(order) == list(range(table.n_rows))
        keyed = [(backend.distance(center, v), v) for v in order]
        assert keyed == sorted(keyed)
        assert list(dists) == [d for d, _ in keyed]
        assert order[0] == center and dists[0] == 0


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_neighbor_order_is_memoized(name):
    table = _example_table(n=9)
    backend = make_backend(table, name)
    first = backend.neighbor_order(3)
    built = backend.counters["neighbor_orders"]
    assert built == 1
    assert backend.neighbor_order(3) is first
    assert backend.counters["neighbor_orders"] == built
    assert backend.counters["neighbor_queries"] == 0
    backend.neighbors_within(3, 1)
    assert backend.counters["neighbor_queries"] == 1


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_ball_cover_never_materializes_full_matrix(name):
    """Theorem 4.2 enumeration: one distance row per center, no n x n scan.

    Before the neighbor index, ball generation sorted a full
    ``distance_matrix()`` row per (center, radius) pair.  Now each center
    costs exactly one lazy distance row (bucketed once), so the counters
    must show n rows / n orders and the full matrix must stay unbuilt.
    """
    table = _example_table(n=16)
    n = table.n_rows
    backend = make_backend(table, name)
    cover = build_ball_cover(table, 3, backend=backend)
    assert set().union(*cover.groups) == set(range(n))
    assert backend._matrix is None
    assert backend.counters["neighbor_orders"] == n
    # ball_diameter may touch extra rows in exact mode; radius_bound mode
    # needs only the n center rows that built the index
    assert backend.counters["matrix_rows"] == n


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_reduce_cover_uses_bucketed_balls(name):
    table = _example_table(n=15)
    backend = make_backend(table, name)
    result = ReduceCoverAnonymizer(backend=backend).anonymize(table, 3)
    assert result.is_valid(table)
    assert backend._matrix is None
    assert backend.counters["neighbor_orders"] == table.n_rows
    assert backend.counters["neighbor_queries"] == table.n_rows
