"""Tests for the hypergraph instance generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardness.generators import (
    matchless_hypergraph,
    planted_matching_hypergraph,
    random_hypergraph,
)
from repro.hardness.matching import find_perfect_matching, is_perfect_matching


class TestPlanted:
    def test_shape(self):
        h, planted = planted_matching_hypergraph(3, 4, extra_edges=5, seed=0)
        assert h.n_vertices == 12
        assert h.n_edges == 8
        assert len(planted) == 3

    def test_planted_indices_form_matching(self):
        h, planted = planted_matching_hypergraph(4, 3, extra_edges=4, seed=1)
        assert is_perfect_matching(h, planted)

    def test_simple_and_uniform(self):
        h, _ = planted_matching_hypergraph(3, 3, extra_edges=6, seed=2)
        assert h.is_simple()
        assert h.is_uniform(3)

    def test_deterministic(self):
        a, _ = planted_matching_hypergraph(3, 3, extra_edges=3, seed=9)
        b, _ = planted_matching_hypergraph(3, 3, extra_edges=3, seed=9)
        assert a == b

    def test_accepts_generator(self):
        rng = np.random.default_rng(5)
        h, _ = planted_matching_hypergraph(2, 3, seed=rng)
        assert h.n_vertices == 6

    def test_errors(self):
        with pytest.raises(ValueError):
            planted_matching_hypergraph(0, 3)
        with pytest.raises(ValueError):
            planted_matching_hypergraph(2, 1)

    def test_impossible_extra_edges(self):
        # only C(3,3)=1 possible edge on 3 vertices
        with pytest.raises(ValueError, match="distinct extra edges"):
            planted_matching_hypergraph(1, 3, extra_edges=5, seed=0)


class TestRandom:
    def test_shape_and_simplicity(self):
        h = random_hypergraph(10, 12, 3, seed=0)
        assert h.n_vertices == 10
        assert h.n_edges == 12
        assert h.is_simple()
        assert h.is_uniform(3)

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            random_hypergraph(2, 1, 3)

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError, match="distinct edges"):
            random_hypergraph(4, 10, 3, seed=0)  # C(4,3) = 4 < 10

    def test_deterministic(self):
        assert random_hypergraph(8, 6, 3, seed=4) == random_hypergraph(8, 6, 3, seed=4)


class TestMatchless:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 4), st.integers(2, 4))
    def test_never_has_perfect_matching(self, seed, n_groups, k):
        h = matchless_hypergraph(n_groups, k, n_edges=2 * n_groups, seed=seed)
        assert find_perfect_matching(h) is None

    def test_every_vertex_covered(self):
        h = matchless_hypergraph(3, 3, n_edges=6, seed=0)
        assert h.isolated_vertices() == []

    def test_all_edges_share_vertex_zero(self):
        h = matchless_hypergraph(3, 3, n_edges=7, seed=1)
        assert all(0 in edge for edge in h.edges)

    def test_uniform(self):
        h = matchless_hypergraph(2, 4, n_edges=5, seed=2)
        assert h.is_uniform(4)

    def test_errors(self):
        with pytest.raises(ValueError, match="n_groups >= 2"):
            matchless_hypergraph(1, 3, n_edges=3)
        with pytest.raises(ValueError, match="k must be"):
            matchless_hypergraph(2, 1, n_edges=3)
