"""Tests for DIMACS round-trips, suppressor JSON, and the experiment CLI."""

import pytest

from repro.cli import main
from repro.core.suppressor import Suppressor
from repro.hardness.sat import Cnf, random_three_cnf, solve_sat


class TestDimacs:
    def test_roundtrip(self):
        f = random_three_cnf(5, 8, seed=0)
        again = Cnf.from_dimacs(f.to_dimacs())
        assert again.n_vars == f.n_vars
        assert again.clauses == f.clauses

    def test_comments_and_blank_lines_ignored(self):
        text = "c a comment\n\np cnf 2 1\nc another\n1 -2 0\n"
        f = Cnf.from_dimacs(text)
        assert f.clauses == ((1, -2),)

    def test_multiline_clause(self):
        f = Cnf.from_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert f.clauses == ((1, 2, 3),)

    def test_trailing_clause_without_zero(self):
        f = Cnf.from_dimacs("p cnf 2 1\n1 2")
        assert f.clauses == ((1, 2),)

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            Cnf.from_dimacs("1 2 0\n")

    def test_malformed_header_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            Cnf.from_dimacs("p cnf 2\n1 0\n")

    def test_comment_embedded_in_output(self):
        text = Cnf(1, [(1,)]).to_dimacs(comment="hello\nworld")
        assert text.startswith("c hello\nc world\n")

    def test_solver_runs_on_parsed_formula(self):
        f = Cnf.from_dimacs("p cnf 2 2\n1 0\n-1 2 0\n")
        assert solve_sat(f) == [True, True]


class TestSuppressorJson:
    def test_roundtrip(self):
        s = Suppressor({0: [1, 2], 3: [0]}, n_rows=4, degree=3)
        assert Suppressor.from_json(s.to_json()) == s

    def test_doctest_form(self):
        s = Suppressor({0: [1]}, n_rows=2, degree=2)
        assert s.to_json() == (
            '{"n_rows": 2, "degree": 2, "starred": {"0": [1]}}'
        )

    def test_empty_suppressor(self):
        s = Suppressor({}, n_rows=3, degree=2)
        assert Suppressor.from_json(s.to_json()).total_stars() == 0

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            Suppressor.from_json('{"nope": 1}')
        with pytest.raises(ValueError):
            # out-of-range coordinates still validated
            Suppressor.from_json(
                '{"n_rows": 1, "degree": 1, "starred": {"0": [5]}}'
            )


class TestExperimentCli:
    def test_ratio_center(self, capsys):
        assert main(["experiment", "ratio-center", "-k", "2",
                     "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "mean ratio" in out
        assert "proven bound" in out

    def test_ratio_greedy(self, capsys):
        assert main(["experiment", "ratio-greedy", "-k", "2",
                     "--trials", "3"]) == 0
        assert "greedy_cover" in capsys.readouterr().out

    def test_threshold_entries(self, capsys):
        assert main(["experiment", "threshold-entries"]) == 0
        out = capsys.readouterr().out
        assert "matching=True" in out and "matching=False" in out
        assert "consistent=True" in out

    def test_threshold_attributes(self, capsys):
        assert main(["experiment", "threshold-attributes"]) == 0
        assert "consistent=True" in capsys.readouterr().out

    def test_k_sweep(self, capsys):
        assert main(["experiment", "k-sweep"]) == 0
        out = capsys.readouterr().out
        assert "k=2:" in out and "k=8:" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "nonsense"])
