"""Tests for cell-level generalization recoding and t-closeness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anonymity import is_k_anonymous, suppressed_cell_count
from repro.core.partition import Cover, Partition, anonymize_partition
from repro.core.table import Table
from repro.generalization import (
    Hierarchy,
    interval_hierarchy,
    recode_partition,
    recoding_loss,
)
from repro.privacy import closeness_level, is_t_close, total_variation

from .conftest import random_table


class TestRecodePartition:
    @pytest.fixture
    def table(self):
        return Table(
            [(34, "Afr-Am"), (47, "Afr-Am"), (36, "Cauc"), (36, "Cauc")],
            attributes=["age", "race"],
        )

    @pytest.fixture
    def hierarchies(self):
        return [
            interval_hierarchy(0, 80, base_width=10, branching=2),
            Hierarchy.from_nested({"*": {"person": ["Afr-Am", "Cauc"]}}),
        ]

    def test_groups_become_identical(self, table, hierarchies):
        p = Partition([{0, 1}, {2, 3}], n_rows=4, k=2)
        recoded = recode_partition(table, p, hierarchies)
        assert recoded.rows[0] == recoded.rows[1]
        assert recoded.rows[2] == recoded.rows[3]
        assert is_k_anonymous(recoded, 2)

    def test_agreeing_cells_stay_exact(self, table, hierarchies):
        p = Partition([{0, 1}, {2, 3}], n_rows=4, k=2)
        recoded = recode_partition(table, p, hierarchies)
        assert recoded.rows[0][1] == "Afr-Am"  # group agrees on race
        assert recoded.rows[2] == (36, "Cauc")  # identical rows untouched

    def test_disagreeing_cells_become_lca_not_star(self, table, hierarchies):
        p = Partition([{0, 1}, {2, 3}], n_rows=4, k=2)
        recoded = recode_partition(table, p, hierarchies)
        assert recoded.rows[0][0] == "0-79"  # 34 and 47 split until 0-79

    def test_overlapping_cover_rejected(self, table, hierarchies):
        c = Cover([{0, 1}, {1, 2, 3}], n_rows=4, k=2)
        with pytest.raises(ValueError, match="Reduce"):
            recode_partition(table, c, hierarchies)

    def test_arity_validation(self, table, hierarchies):
        p = Partition([{0, 1}, {2, 3}], n_rows=4, k=2)
        with pytest.raises(ValueError):
            recode_partition(table, p, hierarchies[:1])
        with pytest.raises(ValueError):
            recoding_loss(table, p, hierarchies[:1])

    def test_loss_with_suppression_hierarchies_equals_star_count(self):
        """The bridge property: suppression hierarchies reduce recoding
        loss to the paper's objective exactly."""
        import numpy as np

        t = random_table(np.random.default_rng(0), 10, 3, 3)
        hierarchies = [
            Hierarchy.suppression(sorted({row[j] for row in t.rows}))
            for j in range(3)
        ]
        p = Partition([frozenset(range(0, 5)), frozenset(range(5, 10))],
                      n_rows=10, k=5)
        anonymized, _ = anonymize_partition(t, p)
        assert recoding_loss(t, p, hierarchies) == pytest.approx(
            suppressed_cell_count(anonymized)
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_recoding_never_loses_more_than_suppression(self, seed):
        """Cell-level LCA recoding's precision loss <= star count."""
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 12))
        rows = [(int(v),) for v in rng.integers(0, 16, size=n)]
        t = Table(rows)
        hierarchy = interval_hierarchy(0, 16, base_width=2, branching=2)
        from repro.algorithms import CenterCoverAnonymizer

        result = CenterCoverAnonymizer().anonymize(t, 2)
        assert result.partition is not None
        loss = recoding_loss(t, result.partition, [hierarchy])
        assert loss <= result.stars + 1e-9


class TestTotalVariation:
    def test_identical_distributions(self):
        assert total_variation({"a": 0.5, "b": 0.5}, {"a": 0.5, "b": 0.5}) == 0

    def test_disjoint_supports(self):
        assert total_variation({"a": 1.0}, {"b": 1.0}) == 1.0

    def test_partial_overlap(self):
        assert total_variation(
            {"a": 0.75, "b": 0.25}, {"a": 0.25, "b": 0.75}
        ) == pytest.approx(0.5)

    def test_symmetry(self):
        p = {"a": 0.2, "b": 0.8}
        q = {"a": 0.9, "c": 0.1}
        assert total_variation(p, q) == total_variation(q, p)


class TestTCloseness:
    def test_perfectly_mixed_classes(self):
        released = Table([(1,), (1,), (2,), (2,)])
        sensitive = ["flu", "hep", "flu", "hep"]
        assert closeness_level(released, sensitive) == 0.0
        assert is_t_close(released, sensitive, 0.0)

    def test_skewed_class_detected(self):
        # global: 50/50; class (1,): all flu -> TV = 0.5
        released = Table([(1,), (1,), (2,), (2,)])
        sensitive = ["flu", "flu", "hep", "hep"]
        assert closeness_level(released, sensitive) == pytest.approx(0.5)
        assert not is_t_close(released, sensitive, 0.4)
        assert is_t_close(released, sensitive, 0.5)

    def test_l_diverse_but_not_close(self):
        """The 98%-HIV class: diverse yet far from the global mix."""
        released = Table([(1,)] * 50 + [(2,)] * 50)
        sensitive = (["HIV"] * 49 + ["Flu"]) + (["Flu"] * 49 + ["HIV"])
        from repro.privacy import is_l_diverse

        assert is_l_diverse(released, sensitive, 2)
        assert closeness_level(released, sensitive) == pytest.approx(0.48)

    def test_validation(self):
        with pytest.raises(ValueError):
            closeness_level(Table([(1,)]), ["a", "b"])
        with pytest.raises(ValueError):
            is_t_close(Table([(1,)]), ["a"], 1.5)

    def test_empty(self):
        assert closeness_level(Table([]), []) == 0.0

    def test_single_class_is_0_close(self):
        released = Table([(1,)] * 5)
        assert closeness_level(released, list("aabbc")) == 0.0
