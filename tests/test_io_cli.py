"""Tests for file IO and the command-line interface."""

import pytest

from repro.cli import main
from repro.core.alphabet import STAR
from repro.core.table import Table
from repro.io import read_csv, write_csv


class TestIo:
    def test_roundtrip(self, tmp_path):
        t = Table([("a", "1"), ("b", STAR)], attributes=["x", "y"])
        path = tmp_path / "table.csv"
        write_csv(t, path)
        again = read_csv(path)
        assert again == t

    def test_headerless_roundtrip(self, tmp_path):
        t = Table([("a", "1")])
        path = tmp_path / "plain.csv"
        write_csv(t, path, header=False)
        again = read_csv(path, header=False)
        assert again.rows == t.rows

    def test_custom_star_token(self, tmp_path):
        t = Table([(STAR,)], attributes=["v"])
        path = tmp_path / "hidden.csv"
        write_csv(t, path, star_token="NULL")
        assert "NULL" in path.read_text()
        assert read_csv(path, star_token="NULL")[0][0] is STAR


@pytest.fixture
def input_csv(tmp_path):
    path = tmp_path / "in.csv"
    rows = ["age,zip", "30,100", "30,101", "40,200", "40,201"]
    path.write_text("\n".join(rows) + "\n")
    return path


class TestCliAnonymize:
    def test_writes_k_anonymous_output(self, input_csv, tmp_path):
        out = tmp_path / "out.csv"
        code = main(
            ["anonymize", str(input_csv), "-k", "2", "-o", str(out)]
        )
        assert code == 0
        from repro.core.anonymity import is_k_anonymous

        assert is_k_anonymous(read_csv(out), 2)

    def test_stdout_mode(self, input_csv, capsys):
        assert main(["anonymize", str(input_csv), "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("age,zip")
        assert "*" in out

    def test_every_algorithm_choice_runs(self, input_csv, tmp_path):
        for algorithm in ["center", "greedy", "exact", "mondrian", "datafly",
                          "kmember", "forest", "random", "sorted", "local"]:
            out = tmp_path / f"{algorithm}.csv"
            code = main(
                ["anonymize", str(input_csv), "-k", "2",
                 "--algorithm", algorithm, "-o", str(out)]
            )
            assert code == 0
            from repro.core.anonymity import is_k_anonymous

            assert is_k_anonymous(read_csv(out), 2), algorithm

    def test_headerless(self, tmp_path):
        path = tmp_path / "nohead.csv"
        path.write_text("1,2\n1,2\n")
        assert main(["anonymize", str(path), "-k", "2", "--no-header"]) == 0

    def test_every_backend_choice_agrees(self, input_csv, tmp_path):
        from repro.core.backend import available_backends

        outputs = set()
        for backend in available_backends():
            out = tmp_path / f"{backend}.csv"
            code = main(
                ["anonymize", str(input_csv), "-k", "2",
                 "--backend", backend, "-o", str(out)]
            )
            assert code == 0, backend
            outputs.add(out.read_text())
        # backends are bit-identical, so so are the releases
        assert len(outputs) == 1


class TestCliAlgorithms:
    def test_lists_registry_and_backends(self, capsys):
        from repro.core.backend import available_backends, default_backend_name

        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "center_cover" in out
        assert "greedy_cover" in out
        expected = (f"backends: {', '.join(available_backends())} "
                    f"(default: {default_backend_name()})")
        assert expected in out


class TestCliCheck:
    def test_reports_level_and_stars(self, input_csv, capsys):
        assert main(["check", str(input_csv)]) == 0
        out = capsys.readouterr().out
        assert "anonymity level: 1" in out
        assert "suppressed cells: 0" in out

    def test_metrics_with_k(self, input_csv, capsys):
        assert main(["check", str(input_csv), "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "discernibility" in out

    def test_unknown_command_exits(self, input_csv):
        with pytest.raises(SystemExit):
            main(["frobnicate", str(input_csv)])


class TestCliRisk:
    def test_risk_report(self, input_csv, capsys):
        assert main(["risk", str(input_csv)]) == 0
        out = capsys.readouterr().out
        assert "max prosecutor risk: 1.0000" in out
        assert "classes: 4" in out

    def test_linkage_against_external(self, input_csv, tmp_path, capsys):
        released = tmp_path / "released.csv"
        assert main(
            ["anonymize", str(input_csv), "-k", "2", "-o", str(released)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["risk", str(released), "--external", str(input_csv)]
        ) == 0
        out = capsys.readouterr().out
        assert "0/4 external records match exactly one" in out
        assert "minimum match set size: 2" in out
