"""Metamorphic properties of OPT and the anonymization pipeline.

These relations must hold for *any* correct implementation, no oracle
needed — transformations of the input with predictable effect on the
optimum.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import CenterCoverAnonymizer
from repro.algorithms.exact import optimal_anonymization
from repro.core.anonymity import equivalence_classes
from repro.core.partition import anonymize_partition, partition_from_equivalence
from repro.core.suppressor import Suppressor
from repro.core.table import Table

from .conftest import random_table


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_value_renaming_preserves_opt(seed):
    """Only equality matters: bijectively renaming each column's values
    leaves OPT unchanged."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 9))
    table = random_table(rng, n, 3, 3)
    renamed = table.with_rows(
        [tuple(f"col{j}-val{v}" for j, v in enumerate(row)) for row in table.rows]
    )
    assert optimal_anonymization(table, 2)[0] == optimal_anonymization(
        renamed, 2
    )[0]


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_duplicating_a_row_adds_at_most_m(seed):
    """OPT(V + duplicate of v) <= OPT(V) + m: slot the copy into v's
    group (cost grows by that group's disagreement count <= m)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 8))
    m = 3
    table = random_table(rng, n, m, 3)
    opt, _ = optimal_anonymization(table, 2)
    victim = int(rng.integers(0, n))
    bigger = table.with_rows(list(table.rows) + [table.rows[victim]])
    opt_bigger, _ = optimal_anonymization(bigger, 2)
    assert opt_bigger <= opt + m


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_duplicating_a_column_sandwiches_opt(seed):
    """OPT <= OPT(column j duplicated) <= 2 OPT: projecting recovers a
    solution; duplicating each star covers the copy."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 8))
    table = random_table(rng, n, 3, 3)
    opt, _ = optimal_anonymization(table, 2)
    doubled = Table(
        [row + (row[0],) for row in table.rows]
    )
    opt_doubled, _ = optimal_anonymization(doubled, 2)
    assert opt <= opt_doubled <= 2 * opt


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_dropping_a_column_never_raises_opt(seed):
    """Fewer attributes, fewer potential disagreements."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 8))
    table = random_table(rng, n, 3, 3)
    opt, _ = optimal_anonymization(table, 2)
    projected = table.project([0, 1])
    opt_projected, _ = optimal_anonymization(projected, 2)
    assert opt_projected <= opt


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 6), st.integers(2, 3))
def test_suppressor_roundtrip_algebra(seed, k):
    """apply -> from_tables -> apply is a fixed point."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(k, 14))
    table = random_table(rng, n, 3, 3)
    result = CenterCoverAnonymizer().anonymize(table, k)
    recovered = Suppressor.from_tables(table, result.anonymized)
    assert recovered.apply(table) == result.anonymized
    assert recovered == result.suppressor


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 6), st.integers(2, 3))
def test_reanonymizing_along_equivalence_is_free(seed, k):
    """The release's own equivalence classes form a partition whose
    induced anonymization adds zero stars."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(k, 14))
    table = random_table(rng, n, 3, 3)
    released = CenterCoverAnonymizer().anonymize(table, k).anonymized
    partition = partition_from_equivalence(released, k)
    again, suppressor = anonymize_partition(released, partition)
    assert suppressor.total_stars() == 0
    assert again == released


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10 ** 6), st.integers(2, 3))
def test_release_classes_are_unions_of_partition_groups(seed, k):
    """Each equivalence class of the release is a union of groups of the
    algorithm's partition (groups with the same image merge)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(k, 14))
    table = random_table(rng, n, 3, 3)
    result = CenterCoverAnonymizer().anonymize(table, k)
    assert result.partition is not None
    class_of = {}
    for record, indices in equivalence_classes(result.anonymized).items():
        for i in indices:
            class_of[i] = record
    for group in result.partition.groups:
        classes = {class_of[i] for i in group}
        assert len(classes) == 1


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10 ** 6))
def test_opt_subadditive_under_concatenation(seed):
    """OPT(V1 ++ V2) <= OPT(V1) + OPT(V2): the side-by-side solution is
    feasible for the concatenation."""
    rng = np.random.default_rng(seed)
    a = random_table(rng, int(rng.integers(2, 6)), 3, 3)
    b = random_table(rng, int(rng.integers(2, 6)), 3, 3)
    both = Table(list(a.rows) + list(b.rows))
    opt_a, _ = optimal_anonymization(a, 2)
    opt_b, _ = optimal_anonymization(b, 2)
    opt_both, _ = optimal_anonymization(both, 2)
    assert opt_both <= opt_a + opt_b
