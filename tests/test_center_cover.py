"""Tests for the Theorem 4.2 center/ball algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import InfeasibleAnonymizationError
from repro.algorithms.center_cover import CenterCoverAnonymizer, build_ball_cover
from repro.algorithms.exact import optimal_anonymization
from repro.core.anonymity import is_k_anonymous
from repro.core.distance import diameter_of, distance
from repro.core.table import Table
from repro.theory import theorem_4_2_ratio

from .conftest import random_table


class TestBuildBallCover:
    def test_cover_valid(self):
        t = Table([(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (2, 2)])
        cover = build_ball_cover(t, 2)
        cover.validate()

    def test_chosen_sets_are_balls(self):
        """Every chosen set S must equal {v : d(c, v) <= r} for some
        center c in S and realized radius r — Lemma 4.2's objects."""
        import numpy as np

        t = random_table(np.random.default_rng(5), 12, 4, 3)
        cover = build_ball_cover(t, 3)
        for group in cover.groups:
            is_ball = False
            for c in group:
                radius = max(distance(t[c], t[v]) for v in group)
                ball = {
                    v for v in range(t.n_rows)
                    if distance(t[c], t[v]) <= radius
                }
                if ball == set(group):
                    is_ball = True
                    break
            assert is_ball, f"group {sorted(group)} is not a ball"

    def test_lemma_4_2_ball_diameter_at_most_2r(self):
        """d(S_{c,r}) <= 2r for every chosen ball."""
        import numpy as np

        t = random_table(np.random.default_rng(11), 15, 5, 3)
        cover = build_ball_cover(t, 3)
        for group in cover.groups:
            # the tightest center realizes the smallest radius
            best_radius = min(
                max(distance(t[c], t[v]) for v in group) for c in group
            )
            assert diameter_of(t, group) <= 2 * best_radius

    def test_duplicates_grouped_free(self):
        t = Table([(1, 1)] * 3 + [(2, 2)] * 3)
        cover = build_ball_cover(t, 3)
        assert cover.diameter_sum(t) == 0

    def test_exact_mode(self):
        import numpy as np

        t = random_table(np.random.default_rng(2), 10, 4, 3)
        cover = build_ball_cover(t, 2, diameter_mode="exact")
        cover.validate()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            build_ball_cover(Table([(1,)]), 1, diameter_mode="wrong")
        with pytest.raises(ValueError):
            CenterCoverAnonymizer(diameter_mode="wrong")

    def test_too_few_rows(self):
        with pytest.raises(ValueError):
            build_ball_cover(Table([(1,)]), 2)

    def test_empty(self):
        assert len(build_ball_cover(Table([]), 2)) == 0


class TestCenterAnonymizer:
    def test_output_valid(self):
        t = Table([(0, 0), (0, 1), (1, 0), (1, 1)] * 3)
        result = CenterCoverAnonymizer().anonymize(t, 3)
        assert result.is_valid(t)
        assert result.algorithm == "center_cover"

    def test_partition_groups_in_range(self):
        import numpy as np

        t = random_table(np.random.default_rng(0), 30, 5, 3)
        result = CenterCoverAnonymizer().anonymize(t, 4)
        assert result.partition is not None
        assert all(4 <= len(g) <= 7 for g in result.partition.groups)

    def test_infeasible(self):
        with pytest.raises(InfeasibleAnonymizationError):
            CenterCoverAnonymizer().anonymize(Table([(1,)]), 5)

    def test_empty_table(self):
        result = CenterCoverAnonymizer().anonymize(Table([]), 3)
        assert result.anonymized.n_rows == 0

    def test_identical_rows_cost_zero(self):
        t = Table([(3, 1)] * 8)
        assert CenterCoverAnonymizer().anonymize(t, 4).stars == 0

    def test_scales_to_hundreds_of_rows(self):
        from repro.workloads import uniform_table

        t = uniform_table(300, 8, alphabet_size=4, seed=0)
        result = CenterCoverAnonymizer().anonymize(t, 5)
        assert result.is_valid(t)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 4))
    def test_always_k_anonymous(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 40))
        t = random_table(rng, n, 5, 3)
        result = CenterCoverAnonymizer().anonymize(t, k)
        assert is_k_anonymous(result.anonymized, k)
        assert result.is_valid(t)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_within_theorem_4_2_bound(self, seed, k):
        """Measured ratio never exceeds 6k(1 + ln m) — Theorem 4.2."""
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 9))
        m = 3
        t = random_table(rng, n, m, 3)
        result = CenterCoverAnonymizer().anonymize(t, k)
        opt, _ = optimal_anonymization(t, k)
        if opt == 0:
            assert result.stars == 0
        else:
            assert result.stars <= theorem_4_2_ratio(k, m) * opt

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_exact_mode_also_valid(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        t = random_table(rng, 12, 4, 3)
        result = CenterCoverAnonymizer(diameter_mode="exact").anonymize(t, 3)
        assert result.is_valid(t)

    def test_extras(self):
        t = Table([(0, 0), (1, 1), (0, 1), (1, 0)])
        result = CenterCoverAnonymizer().anonymize(t, 2)
        assert result.extras["diameter_mode"] == "radius_bound"
        assert result.extras["cover_sets"] >= 1
