"""Tests for the branch-and-bound exact solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.base import InfeasibleAnonymizationError
from repro.algorithms.branch_bound import BranchBoundAnonymizer
from repro.algorithms.exact import optimal_anonymization

from .conftest import random_table


class TestBranchBound:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6), st.integers(2, 3))
    def test_matches_dp_optimum(self, seed, k):
        import numpy as np

        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 10))
        t = random_table(rng, n, 3, 3)
        result = BranchBoundAnonymizer().anonymize(t, k)
        opt, _ = optimal_anonymization(t, k)
        assert result.stars == opt
        assert result.is_valid(t)

    def test_docstring_instance(self):
        from repro.core.table import Table

        # optimal: {(0,0),(0,0)} free + {(0,1),(1,1)} starring coordinate 0
        t = Table([(0, 0), (0, 0), (0, 1), (1, 1)])
        assert BranchBoundAnonymizer().anonymize(t, 2).stars == 2

    def test_extras_track_search(self):
        import numpy as np

        t = random_table(np.random.default_rng(1), 8, 3, 3)
        result = BranchBoundAnonymizer().anonymize(t, 2)
        assert result.extras["nodes"] >= 1
        assert result.extras["opt"] == result.stars

    def test_pruning_beats_incumbent_or_matches(self):
        """The incumbent (Theorem 4.2 algorithm) is never better than the
        exact result."""
        import numpy as np

        from repro.algorithms import CenterCoverAnonymizer

        t = random_table(np.random.default_rng(2), 10, 4, 4)
        exact = BranchBoundAnonymizer().anonymize(t, 2).stars
        approx = CenterCoverAnonymizer().anonymize(t, 2).stars
        assert exact <= approx

    def test_empty_and_infeasible(self):
        from repro.core.table import Table

        assert BranchBoundAnonymizer().anonymize(Table([]), 3).stars == 0
        with pytest.raises(InfeasibleAnonymizationError):
            BranchBoundAnonymizer().anonymize(Table([(1,)]), 2)

    def test_duplicate_rows_zero_cost(self):
        from repro.core.table import Table

        t = Table([(1, 1)] * 6)
        assert BranchBoundAnonymizer().anonymize(t, 3).stars == 0
