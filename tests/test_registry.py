"""Tests for the central algorithm capability registry."""

import importlib
import inspect
import pkgutil

import pytest

import repro.algorithms as algorithms_pkg
import repro.privacy as privacy_pkg
from repro import registry
from repro.algorithms import (
    CenterCoverAnonymizer,
    GreedyCoverAnonymizer,
    LocalSearchAnonymizer,
    MondrianAnonymizer,
)
from repro.algorithms.base import Anonymizer


def _concrete_algorithm_classes() -> set[type]:
    """Every concrete Anonymizer subclass defined in repro.algorithms
    or repro.privacy (the privacy wrappers register there too)."""
    found = set()
    packages = (
        ("repro.algorithms", algorithms_pkg),
        ("repro.privacy", privacy_pkg),
    )
    prefixes = tuple(name for name, _ in packages)
    for pkg_name, pkg in packages:
        for mod_info in pkgutil.iter_modules(pkg.__path__):
            module = importlib.import_module(
                f"{pkg_name}.{mod_info.name}"
            )
            for _, obj in inspect.getmembers(module, inspect.isclass):
                if (
                    issubclass(obj, Anonymizer)
                    and not inspect.isabstract(obj)
                    and obj.__module__.startswith(prefixes)
                ):
                    found.add(obj)
    return found


class TestCoverage:
    def test_every_concrete_subclass_is_registered(self):
        """The registry IS the algorithm catalogue: a package scan finds
        no concrete Anonymizer subclass missing from it, and nothing
        registered that the package doesn't define."""
        concrete = _concrete_algorithm_classes()
        registered = {info.cls for info in registry.all()}
        assert concrete - registered == set()
        assert registered - concrete == set()

    def test_no_private_name_maps_outside_registry(self):
        """Regression: the CLI used to keep its own name→class dict."""
        from repro import cli

        assert not hasattr(cli, "_ALGORITHMS")

    def test_expected_names_present(self):
        names = registry.names()
        for expected in (
            "center_cover", "greedy_cover", "exact_dp", "branch_bound",
            "small_m_exact", "mondrian", "datafly", "kmember",
            "mst_forest", "greedy_chain", "topdown_greedy",
            "pair_matching", "local_search", "annealing",
            "random_partition", "sorted_chunk", "suppress_everything",
            "incremental", "reduce_cover",
        ):
            assert expected in names


class TestLookup:
    def test_alias_resolution(self):
        assert registry.get("center").name == "center_cover"
        assert registry.get("greedy").name == "greedy_cover"
        assert registry.get("exact").name == "exact_dp"
        assert registry.get("partition_dp").name == "exact_dp"

    def test_unknown_name_lists_valid_ones(self):
        with pytest.raises(KeyError, match="center_cover"):
            registry.get("nonsense")

    def test_create_returns_fresh_instances(self):
        a = registry.create("mondrian")
        b = registry.create("mondrian")
        assert isinstance(a, MondrianAnonymizer)
        assert a is not b

    def test_info_for_instance_and_class(self):
        assert registry.info_for(CenterCoverAnonymizer).name == "center_cover"
        assert registry.info_for(CenterCoverAnonymizer()).name == "center_cover"
        assert registry.info_for(object()) is None

    def test_info_for_wrapper_ignores_display_name(self):
        """Wrapper algorithms rename instances after their inner
        algorithm ("center_cover+local"); lookup goes by type."""
        wrapper = LocalSearchAnonymizer(inner=CenterCoverAnonymizer())
        info = registry.info_for(wrapper)
        assert info is not None
        assert info.name == "local_search"

    def test_registry_name_attribute(self):
        assert CenterCoverAnonymizer.registry_name == "center_cover"


class TestBounds:
    def test_approx_bounds_match_theory(self):
        from repro.theory import theorem_4_1_ratio, theorem_4_2_ratio

        assert registry.proven_bound(
            GreedyCoverAnonymizer(), 3, 4
        ) == theorem_4_1_ratio(3)
        assert registry.proven_bound(
            CenterCoverAnonymizer(), 3, 4
        ) == theorem_4_2_ratio(3, 4)

    def test_exact_solvers_bound_one(self):
        assert registry.proven_bound("exact_dp", 5, 7) == 1.0
        assert registry.proven_bound("branch_bound", 2, 3) == 1.0
        assert registry.proven_bound("small_m_exact", 4, 2) == 1.0

    def test_heuristics_have_no_bound(self):
        assert registry.proven_bound("mondrian", 3, 4) is None
        assert registry.proven_bound(MondrianAnonymizer(), 3, 4) is None
        assert registry.proven_bound("random_partition", 3, 4) is None

    def test_kinds_are_consistent_with_bounds(self):
        for info in registry.all():
            if info.kind == "exact":
                assert info.proven_bound(3, 4) == 1.0
            elif info.kind == "approx":
                assert info.proven_bound(3, 4) > 1.0
            else:  # heuristic / baseline carry no guarantee
                assert info.bound is None


class TestRegistrationValidation:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            registry.register(
                "center_cover", kind="heuristic", summary="dup"
            )(MondrianAnonymizer)

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            registry.register(
                "brand_new_name", kind="heuristic", summary="dup",
                aliases=("center",),
            )(MondrianAnonymizer)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            registry.register("whatever", kind="magic", summary="x")


class TestCLIIntegration:
    """Every registered name (and alias) works end to end in the CLI."""

    @pytest.fixture()
    def csv_path(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n1,3\n2,2\n2,3\n", encoding="utf-8")
        return str(path)

    def test_every_registered_name_accepted(self, csv_path, tmp_path, capsys):
        from repro.cli import main

        for name in registry.names(include_aliases=True):
            out = tmp_path / f"{name}.csv"
            code = main([
                "anonymize", csv_path, "-k", "2",
                "--algorithm", name, "-o", str(out),
            ])
            assert code == 0, f"--algorithm {name} failed"
            assert out.exists()
        capsys.readouterr()

    def test_algorithms_subcommand_lists_registry(self, capsys):
        from repro.cli import main

        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for info in registry.all():
            assert info.name in out
        assert "Theorem 4.2" in out
