"""Tests for repro.core.anonymity (Definition 2.2)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.alphabet import STAR
from repro.core.anonymity import (
    anonymity_level,
    equivalence_classes,
    is_k_anonymous,
    suppressed_cell_count,
    violating_rows,
)
from repro.core.table import Table


class TestEquivalenceClasses:
    def test_groups_by_record(self):
        t = Table([(1,), (2,), (1,)])
        classes = equivalence_classes(t)
        assert classes == {(1,): [0, 2], (2,): [1]}

    def test_star_matches_star(self):
        t = Table([(STAR, 1), (STAR, 1)])
        assert len(equivalence_classes(t)) == 1

    def test_empty(self):
        assert equivalence_classes(Table([])) == {}


class TestAnonymityLevel:
    def test_min_multiplicity(self):
        t = Table([(1,), (1,), (2,), (2,), (2,)])
        assert anonymity_level(t) == 2

    def test_empty_is_infinite(self):
        assert anonymity_level(Table([])) == math.inf

    def test_all_identical(self):
        assert anonymity_level(Table([(1,)] * 4)) == 4


class TestIsKAnonymous:
    def test_paper_example_anonymized(self):
        # The 2-anonymized hospital table from Section 1.
        t = Table(
            [
                (STAR, "Stone", STAR, "Afr-Am"),
                ("John", "R*", "20-40", STAR),
                (STAR, "Stone", STAR, "Afr-Am"),
                ("John", "R*", "20-40", STAR),
            ]
        )
        assert is_k_anonymous(t, 2)
        assert not is_k_anonymous(t, 3)

    def test_k_one_always_holds(self):
        assert is_k_anonymous(Table([(1,), (2,)]), 1)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            is_k_anonymous(Table([(1,)]), 0)
        with pytest.raises(ValueError):
            violating_rows(Table([(1,)]), -1)

    def test_empty_table_vacuous(self):
        assert is_k_anonymous(Table([]), 5)

    @given(st.lists(st.integers(0, 2), min_size=1, max_size=12), st.integers(1, 4))
    def test_matches_multiset_definition(self, values, k):
        t = Table([(v,) for v in values])
        counts = t.row_multiset()
        assert is_k_anonymous(t, k) == all(c >= k for c in counts.values())


class TestViolatingRows:
    def test_lists_undersized_classes(self):
        t = Table([(1,), (1,), (2,), (3,), (3,), (3,)])
        assert violating_rows(t, 3) == [0, 1, 2]

    def test_empty_when_anonymous(self):
        assert violating_rows(Table([(1,), (1,)]), 2) == []


class TestSuppressedCellCount:
    def test_counts_stars_only(self):
        t = Table([(STAR, 1), (2, STAR), (STAR, STAR)])
        assert suppressed_cell_count(t) == 4

    def test_string_star_not_counted(self):
        assert suppressed_cell_count(Table([("*",)])) == 0

    def test_zero_for_clean_table(self):
        assert suppressed_cell_count(Table([(1, 2)])) == 0
