"""The two-tier solution cache and its content-addressed keys."""

from __future__ import annotations

import pytest

from repro.artifacts import instance_key, state_key, table_hash
from repro.core.table import Table
from repro.service.cache import SolutionCache, is_cache_key


def _table():
    return Table([(1, 2), (1, 2), (3, 4)], attributes=("x", "y"))


# ----------------------------------------------------------------------
# Key correctness: the key must separate everything that can change
# the solution
# ----------------------------------------------------------------------


class TestInstanceKey:
    def test_deterministic_across_equal_tables(self):
        a = instance_key(_table(), 2, "center_cover", "python")
        b = instance_key(_table(), 2, "center_cover", "python")
        assert a == b

    def test_single_cell_difference_changes_key(self):
        base = _table()
        changed = Table(
            [(1, 2), (1, 5), (3, 4)], attributes=("x", "y")
        )
        assert instance_key(base, 2, "center_cover", "python") != \
            instance_key(changed, 2, "center_cover", "python")

    def test_column_order_changes_key(self):
        base = _table()
        swapped = base.project(["y", "x"])
        assert table_hash(base) != table_hash(swapped)
        assert instance_key(base, 2, "center_cover", "python") != \
            instance_key(swapped, 2, "center_cover", "python")

    def test_attribute_names_change_key(self):
        renamed = Table(_table().rows, attributes=("u", "v"))
        assert instance_key(_table(), 2, "center_cover", "python") != \
            instance_key(renamed, 2, "center_cover", "python")

    def test_k_and_algorithm_change_key(self):
        table = _table()
        base = instance_key(table, 2, "center_cover", "python")
        assert base != instance_key(table, 3, "center_cover", "python")
        assert base != instance_key(table, 2, "mondrian", "python")

    def test_backends_never_share_entries(self):
        """Identical tables under python vs numpy must key differently.

        The backends are parity-tested, but the cache contract is that
        entries are only shared when results are *known* bit-identical —
        which the key guarantees by construction: it always separates
        backends, so a cross-backend hit is impossible.
        """
        table = _table()
        assert instance_key(table, 2, "center_cover", "python") != \
            instance_key(table, 2, "center_cover", "numpy")

    def test_row_order_changes_table_hash(self):
        # tables are ordered multisets; reordering is a different relation
        reordered = Table(
            [(3, 4), (1, 2), (1, 2)], attributes=("x", "y")
        )
        assert table_hash(_table()) != table_hash(reordered)


class TestStateKey:
    def test_deterministic_and_disjoint_from_instance_key(self):
        """A solution and its continuation snapshot describe the same
        (table, k, algorithm, backend) but must never collide."""
        a = state_key(_table(), 2, "incremental", "python")
        b = state_key(_table(), 2, "incremental", "python")
        assert a == b
        assert a != instance_key(_table(), 2, "incremental", "python")
        assert is_cache_key(a)

    def test_inputs_separate_keys(self):
        base = state_key(_table(), 2, "incremental", "python")
        assert base != state_key(_table(), 3, "incremental", "python")
        assert base != state_key(_table(), 2, "incremental", "numpy")
        grown = Table(
            _table().rows + ((5, 6),), attributes=("x", "y")
        )
        assert base != state_key(grown, 2, "incremental", "python")

    def test_is_cache_key_rejects_garbage(self):
        assert not is_cache_key(None)
        assert not is_cache_key(42)
        assert not is_cache_key("../escape")
        assert not is_cache_key("XYZ" * 11)  # not hex
        assert not is_cache_key("ab")  # too short
        assert is_cache_key("a" * 32)


# ----------------------------------------------------------------------
# The LRU memory tier
# ----------------------------------------------------------------------


class TestMemoryTier:
    def test_put_get_roundtrip(self):
        cache = SolutionCache(max_entries=4)
        cache.put("a" * 32, {"stars": 7})
        assert cache.get("a" * 32) == {"stars": 7}
        assert cache.stats.memory_hits == 1
        assert cache.stats.stores == 1

    def test_miss_is_counted(self):
        cache = SolutionCache()
        assert cache.get("f" * 32) is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_lru_eviction_order_and_counter(self):
        cache = SolutionCache(max_entries=2)
        cache.put("a" * 32, {"v": 1})
        cache.put("b" * 32, {"v": 2})
        assert cache.get("a" * 32) is not None  # refresh "a"
        cache.put("c" * 32, {"v": 3})  # evicts "b", the LRU entry
        assert cache.stats.evictions == 1
        assert cache.get("b" * 32) is None
        assert cache.get("a" * 32) is not None
        assert cache.get("c" * 32) is not None
        assert len(cache) == 2

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            SolutionCache(max_entries=0)

    def test_clear_keeps_counters(self):
        cache = SolutionCache()
        cache.put("a" * 32, {"v": 1})
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.stores == 1


# ----------------------------------------------------------------------
# The disk tier
# ----------------------------------------------------------------------


class TestDiskTier:
    def test_survives_a_new_cache_instance(self, tmp_path):
        first = SolutionCache(max_entries=4, directory=tmp_path)
        first.put("a" * 32, {"stars": 3})
        fresh = SolutionCache(max_entries=4, directory=tmp_path)
        assert fresh.get("a" * 32) == {"stars": 3}
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.memory_hits == 0
        # promoted into memory: the second read never touches disk
        assert fresh.get("a" * 32) == {"stars": 3}
        assert fresh.stats.memory_hits == 1

    def test_memory_eviction_falls_back_to_disk(self, tmp_path):
        cache = SolutionCache(max_entries=1, directory=tmp_path)
        cache.put("a" * 32, {"v": 1})
        cache.put("b" * 32, {"v": 2})  # evicts "a" from memory only
        assert cache.stats.evictions == 1
        assert cache.get("a" * 32) == {"v": 1}
        assert cache.stats.disk_hits == 1

    def test_contains_probes_both_tiers_without_counting(self, tmp_path):
        cache = SolutionCache(max_entries=1, directory=tmp_path)
        cache.put("a" * 32, {"v": 1})
        cache.put("b" * 32, {"v": 2})
        assert ("a" * 32) in cache  # on disk only
        assert ("b" * 32) in cache  # in memory
        assert ("c" * 32) not in cache
        assert cache.stats.lookups == 0

    def test_rejects_non_digest_keys(self, tmp_path):
        cache = SolutionCache(directory=tmp_path)
        with pytest.raises(ValueError):
            cache.put("../escape", {"v": 1})
        with pytest.raises(ValueError):
            cache.get("not a digest")

    def test_no_directory_means_memory_only(self):
        cache = SolutionCache(max_entries=1)
        cache.put("a" * 32, {"v": 1})
        cache.put("b" * 32, {"v": 2})
        assert cache.get("a" * 32) is None  # evicted, nowhere to fall back
        assert cache.stats.misses == 1


# ----------------------------------------------------------------------
# Disk-tier robustness: torn entries and atomic writes (PR 5)
# ----------------------------------------------------------------------


class TestDiskRobustness:
    def test_torn_entry_is_a_miss_and_gets_quarantined(self, tmp_path):
        key = "a" * 32
        first = SolutionCache(max_entries=4, directory=tmp_path)
        first.put(key, {"stars": 3})
        # tear the file the way a crash mid-write used to
        (tmp_path / f"{key}.json").write_text('{"stars": ')
        fresh = SolutionCache(max_entries=4, directory=tmp_path)
        assert fresh.get(key) is None
        assert fresh.stats.corrupt == 1
        assert fresh.stats.misses == 1
        assert fresh.stats.disk_hits == 0
        # the bad file was moved aside, not left to poison the key
        assert not (tmp_path / f"{key}.json").exists()
        assert (tmp_path / f"{key}.json.corrupt").exists()

    def test_non_object_json_entry_is_rejected(self, tmp_path):
        key = "b" * 32
        cache = SolutionCache(directory=tmp_path)
        (tmp_path / f"{key}.json").write_text('["not", "a", "dict"]')
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_quarantined_key_is_reusable(self, tmp_path):
        key = "c" * 32
        cache = SolutionCache(directory=tmp_path)
        (tmp_path / f"{key}.json").write_text("garbage")
        assert cache.get(key) is None
        cache.put(key, {"stars": 9})
        cache.clear()  # force the disk tier on the next read
        assert cache.get(key) == {"stars": 9}
        assert cache.stats.corrupt == 1  # only the original tear

    def test_put_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        key = "d" * 32
        cache = SolutionCache(directory=tmp_path)
        cache.put(key, {"stars": 1})
        cache.put(key, {"stars": 2})  # overwrite goes through a rename
        assert [p.name for p in tmp_path.iterdir()] == [f"{key}.json"]
        fresh = SolutionCache(directory=tmp_path)
        assert fresh.get(key) == {"stars": 2}

    def test_corrupt_counter_in_snapshot(self, tmp_path):
        key = "e" * 32
        cache = SolutionCache(directory=tmp_path)
        (tmp_path / f"{key}.json").write_text("{")
        cache.get(key)
        assert cache.as_dict()["corrupt"] == 1

    def test_contains_agrees_with_get_on_corrupt_entries(self, tmp_path):
        """Regression: ``in`` used to say True for a torn disk entry
        that ``get`` would then quarantine and serve as a miss."""
        key = "f" * 32
        cache = SolutionCache(directory=tmp_path)
        (tmp_path / f"{key}.json").write_text('{"stars": ')
        assert key not in cache
        assert cache.stats.corrupt == 1
        # the probe quarantined the file, exactly as get would have
        assert not (tmp_path / f"{key}.json").exists()
        assert (tmp_path / f"{key}.json.corrupt").exists()
        assert cache.get(key) is None
        # the probe itself never touches the hit/miss counters
        assert cache.stats.lookups == 1  # only the get above

    def test_contains_rejects_non_object_entries(self, tmp_path):
        key = "a" * 32
        cache = SolutionCache(directory=tmp_path)
        (tmp_path / f"{key}.json").write_text('["not", "a", "dict"]')
        assert key not in cache
        assert cache.stats.corrupt == 1


# ----------------------------------------------------------------------
# Stats plumbing
# ----------------------------------------------------------------------


def test_as_dict_snapshot(tmp_path):
    cache = SolutionCache(max_entries=8, directory=tmp_path)
    cache.put("a" * 32, {"v": 1})
    cache.get("a" * 32)
    cache.get("b" * 32)
    snapshot = cache.as_dict()
    assert snapshot["hits"] == 1
    assert snapshot["misses"] == 1
    assert snapshot["evictions"] == 0
    assert snapshot["entries"] == 1
    assert snapshot["max_entries"] == 8
    assert snapshot["disk"] == str(tmp_path)
    assert snapshot["hit_rate"] == 0.5
