"""Legacy setup shim.

The offline environment lacks the `wheel` package, so PEP 517 editable
builds (which need bdist_wheel) fail; this shim lets
`pip install -e . --no-use-pep517 --no-build-isolation` (or plain
`pip install -e .` with the pip.conf shipped in CI images) use the
classic `setup.py develop` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
