"""Value-aware anonymization: weighted cells and generalization recoding.

Two refinements of the paper's uniform star count, on one table:

1. **weighted suppression** — hiding a diagnosis-related cell costs more
   utility than hiding a zip digit; the exact weighted optimum shifts
   stars toward the cheap columns;
2. **cell-level generalization** — with hierarchies, a disagreeing cell
   becomes its group's least common ancestor ("30-39") instead of ``*``,
   strictly reducing information loss.

Run:  python examples/value_aware.py
"""

from repro import Table
from repro.core.weights import (
    optimal_weighted_anonymization,
    weighted_star_cost,
)
from repro.algorithms.exact import optimal_anonymization
from repro.core.partition import anonymize_partition
from repro.generalization import (
    Hierarchy,
    interval_hierarchy,
    recode_partition,
    recoding_loss,
)
from repro.generalization.optimal_recoding import optimal_recoding

TABLE = Table(
    [
        (34, "010", "Flu"),
        (36, "010", "Flu"),
        (38, "011", "Healthy"),
        (47, "011", "Healthy"),
        (49, "020", "Asthma"),
        (52, "020", "Asthma"),
    ],
    attributes=["age", "zip", "diagnosis"],
)
K = 2


def weighted_demo() -> None:
    print("--- weighted suppression ---")
    uniform_opt, partition = optimal_anonymization(TABLE, K)
    released, _ = anonymize_partition(TABLE, partition)
    print(f"uniform optimum: {uniform_opt} stars")
    print(released.pretty())

    # diagnosis is 10x more valuable than age; zip in between
    weights = [1.0, 3.0, 10.0]
    weighted_opt, weighted_partition = optimal_weighted_anonymization(
        TABLE, K, weights
    )
    weighted_released, _ = anonymize_partition(TABLE, weighted_partition)
    print(f"\nweighted optimum: total weight "
          f"{weighted_star_cost(weighted_released, weights):g} "
          f"(weights {weights})")
    print(weighted_released.pretty())
    diag = TABLE.attribute_index("diagnosis")
    from repro import STAR

    starred_diag = sum(
        1 for row in weighted_released.rows if row[diag] is STAR
    )
    print(f"diagnosis cells starred under weighting: {starred_diag}\n")


def recoding_demo() -> None:
    print("--- cell-level generalization recoding ---")
    hierarchies = [
        interval_hierarchy(0, 64, base_width=4, branching=2),
        Hierarchy.from_nested(
            {"*": {"01x": ["010", "011"], "02x": ["020"]}}
        ),
        Hierarchy.suppression(["Flu", "Healthy", "Asthma"]),
    ]
    loss, partition = optimal_recoding(TABLE, K, hierarchies)
    released = recode_partition(TABLE, partition, hierarchies)
    print(f"optimal recoding loss: {loss:.2f} "
          f"(vs {optimal_anonymization(TABLE, K)[0]} full-star units)")
    print(released.pretty())
    assert recoding_loss(TABLE, partition, hierarchies) == loss


def main() -> None:
    print("Original:")
    print(TABLE.pretty())
    print()
    weighted_demo()
    recoding_demo()
    print(
        "\nSame theory, richer objectives: the partition engine accepts "
        "any additive group cost."
    )


if __name__ == "__main__":
    main()
