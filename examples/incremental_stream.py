"""Streaming release: keep a growing table k-anonymous, snapshot after
snapshot, without enabling intersection attacks.

Records arrive one at a time (new patients at the hospital).  The
incremental anonymizer maintains a single grouping: new arrivals wait
in a pending buffer (withheld, shown fully starred) until a crowd of k
exists, then settle into groups whose published image never becomes
more specific afterwards.

Run:  python examples/incremental_stream.py
"""

from repro import STAR, is_k_anonymous
from repro.algorithms.incremental import IncrementalAnonymizer
from repro.workloads import census_table

K = 3
STREAM = 30


def main() -> None:
    source = census_table(STREAM, seed=11, age_bucket=10).project(
        ["age", "sex", "race"]
    )
    inc = IncrementalAnonymizer(
        k=K, degree=source.degree, attributes=source.attributes
    )

    print(f"Streaming {STREAM} records, releasing a {K}-anonymous snapshot "
          "after each arrival:\n")
    checkpoints = {1, 2, 3, 10, 20, STREAM}
    for step, row in enumerate(source.rows, start=1):
        inc.insert([row])
        assert inc.is_publishable()
        if step in checkpoints:
            snapshot = inc.released()
            stars = inc.total_stars()
            settled = step - inc.n_pending
            print(
                f"after {step:>2} arrivals: {settled:>2} settled, "
                f"{inc.n_pending} pending, {stars} stars"
            )

    final = inc.released()
    assert is_k_anonymous(
        final.select_rows(
            [i for i in range(final.n_rows)
             if any(v is not STAR for v in final[i])]
        ),
        K,
    ) or final.n_rows == 0
    print("\nFinal snapshot (first 10 rows):")
    print(final.select_rows(range(10)).pretty())
    # the price of streaming: compare with anonymizing the final table
    # in one batch (which would enable intersection attacks if published
    # incrementally!)
    from repro import CenterCoverAnonymizer

    batch = CenterCoverAnonymizer().anonymize(source, K)
    print(
        f"\nStreaming release: {inc.total_stars()} stars; one-shot batch "
        f"release of the same table: {batch.stars} stars."
    )
    print(
        "The gap is the price of the monotone-disclosure invariant: a "
        "published cell, once starred, stayed starred across all "
        f"{STREAM} snapshots, so diffing snapshots reveals nothing."
    )


if __name__ == "__main__":
    main()
