"""The hardness chain, from first principles, as running code:

    3SAT  --(Garey-Johnson)-->  3-dimensional matching
          --(Theorem 3.1)---->  optimal 3-anonymity

A CNF formula's satisfiability is decided by whether a database can be
3-anonymized within the n(m-1) star budget; certificates translate both
ways at every step.

Run:  python examples/sat_chain.py
"""

from repro.core.anonymity import is_k_anonymous, suppressed_cell_count
from repro.hardness import (
    Cnf,
    EntrySuppressionReduction,
    ThreeSatToMatchingReduction,
    has_perfect_matching,
    planted_satisfiable_cnf,
    solve_sat,
)


def show_formula(formula: Cnf) -> str:
    def literal(lit: int) -> str:
        return f"x{lit}" if lit > 0 else f"!x{-lit}"

    return " & ".join(
        "(" + " | ".join(literal(lit) for lit in clause) + ")"
        for clause in formula.clauses
    )


def run_chain(formula: Cnf, label: str) -> None:
    print(f"--- {label}: {show_formula(formula)} ---")
    assignment = solve_sat(formula)
    print(f"DPLL: {'SAT ' + str(assignment) if assignment else 'UNSAT'}")

    gadget = ThreeSatToMatchingReduction(formula)
    print(
        f"Garey-Johnson gadget: {gadget.n_elements} elements, "
        f"{gadget.hypergraph.n_edges} triples"
    )
    matchable = has_perfect_matching(gadget.hypergraph)
    print(f"perfect matching exists: {matchable}")
    assert matchable == (assignment is not None)

    anonymity = EntrySuppressionReduction(gadget.hypergraph, 3)
    n, m = anonymity.table.n_rows, anonymity.table.degree
    print(
        f"k-anonymity instance: {n} x {m} table, "
        f"threshold l = n(m-1) = {anonymity.threshold}"
    )

    if assignment is not None:
        matching = gadget.matching_from_assignment(assignment)
        anonymized = anonymity.anonymize_from_matching(matching)
        assert is_k_anonymous(anonymized, 3)
        assert suppressed_cell_count(anonymized) == anonymity.threshold
        # and decode all the way back to a satisfying assignment
        decoded = gadget.assignment_from_matching(
            anonymity.matching_from_anonymized(anonymized)
        )
        assert formula.evaluate(decoded)
        print(
            "chain: assignment -> matching -> threshold anonymization -> "
            f"matching -> assignment {decoded}  [intact]"
        )
    else:
        print("no matching, so no anonymization can reach the threshold")
    print()


def main() -> None:
    satisfiable, _ = planted_satisfiable_cnf(3, 3, seed=4)
    run_chain(satisfiable, "satisfiable formula")
    run_chain(Cnf(1, [(1,), (-1,)]), "unsatisfiable formula")
    run_chain(Cnf(2, [(1,), (2,), (-1, -2)]), "another UNSAT formula")
    print(
        "Deciding 'can this table be 3-anonymized within budget l?' decides "
        "3SAT - so optimal k-anonymity is NP-hard (Theorem 3.1, grounded)."
    )


if __name__ == "__main__":
    main()
