"""Tour of the NP-hardness machinery (Section 3) as running code.

Builds a 3-uniform hypergraph with a planted perfect matching, runs both
reductions, and demonstrates the sharp thresholds of Theorems 3.1 and
3.2 — including what happens on a hypergraph with *no* perfect matching.

Run:  python examples/hardness_gadgets.py
"""

from repro import is_k_anonymous, optimal_anonymization, suppressed_cell_count
from repro.algorithms.exact import optimal_attribute_suppression
from repro.hardness import (
    AttributeSuppressionReduction,
    EntrySuppressionReduction,
    find_perfect_matching,
    matchless_hypergraph,
    planted_matching_hypergraph,
)

K = 3


def entry_reduction_demo(graph, label: str) -> None:
    red = EntrySuppressionReduction(graph, K)
    n, m = red.table.n_rows, red.table.degree
    print(f"[Theorem 3.1 / {label}] table: {n} rows x {m} attrs, "
          f"threshold l = n(m-1) = {red.threshold}")
    opt, _ = optimal_anonymization(red.table, K)
    matching = find_perfect_matching(graph)
    verdict = "==" if opt == red.threshold else ">"
    print(f"  OPT = {opt} {verdict} threshold; perfect matching "
          f"{'exists' if matching else 'does not exist'}")
    if matching:
        anonymized = red.anonymize_from_matching(matching)
        assert is_k_anonymous(anonymized, K)
        assert suppressed_cell_count(anonymized) == red.threshold
        decoded = red.matching_from_anonymized(anonymized)
        print(f"  certificate roundtrip: matching {sorted(matching)} -> "
              f"anonymization -> matching {sorted(decoded)}")
    print()


def attribute_reduction_demo(graph, label: str) -> None:
    red = AttributeSuppressionReduction(graph, K)
    print(f"[Theorem 3.2 / {label}] binary table, threshold m - n/k = "
          f"{red.threshold}")
    count, suppressed = optimal_attribute_suppression(red.table, K)
    verdict = "==" if count == red.threshold else ">"
    print(f"  min whole-attribute suppression = {count} {verdict} threshold")
    if count == red.threshold:
        kept = [j for j in range(red.table.degree) if j not in suppressed]
        matching = red.matching_from_kept_attributes(kept)
        print(f"  kept attributes {kept} decode the matching {matching}")
    print()


def main() -> None:
    planted, planted_edges = planted_matching_hypergraph(
        n_groups=2, k=K, extra_edges=2, seed=11
    )
    print(f"Planted hypergraph: {planted.n_vertices} vertices, "
          f"{planted.n_edges} edges, planted matching at indices "
          f"{planted_edges}")
    print(f"  edges: {[sorted(e) for e in planted.edges]}\n")
    entry_reduction_demo(planted, "planted matching")
    attribute_reduction_demo(planted, "planted matching")

    matchless = matchless_hypergraph(n_groups=2, k=K, n_edges=4, seed=11)
    print(f"Matchless hypergraph (all edges share vertex 0): "
          f"{[sorted(e) for e in matchless.edges]}\n")
    entry_reduction_demo(matchless, "no matching")
    attribute_reduction_demo(matchless, "no matching")

    print("Conclusion: deciding whether the k-anonymity optimum meets the "
          "threshold decides PERFECT MATCHING -> both problems are NP-hard.")


if __name__ == "__main__":
    main()
