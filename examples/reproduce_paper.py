"""One-script reproduction checklist: every claim in the paper, verified.

Runs a fast version of each experiment (the full harness lives in
``benchmarks/``) and prints a PASS/FAIL line per claim.  Exits non-zero
if anything fails.

Run:  python examples/reproduce_paper.py
"""

import math
import sys

import numpy as np

from repro import (
    CenterCoverAnonymizer,
    GreedyCoverAnonymizer,
    Table,
    optimal_anonymization,
    theorem_4_1_ratio,
    theorem_4_2_ratio,
)
from repro.algorithms.center_cover import build_ball_cover
from repro.algorithms.exact import optimal_attribute_suppression
from repro.algorithms.reduce_cover import reduce_cover
from repro.core.distance import diameter_of, distance
from repro.core.partition import Cover
from repro.experiments import ratio_experiment, threshold_experiment
from repro.theory import check_figure_1

RESULTS: list[tuple[str, bool, str]] = []


def record(claim: str, ok: bool, detail: str) -> None:
    RESULTS.append((claim, ok, detail))
    print(f"[{'PASS' if ok else 'FAIL'}] {claim}: {detail}")


def theorem_3_1() -> None:
    good = threshold_experiment("entries", with_matching=True, seed=0)
    bad = threshold_experiment("entries", with_matching=False, seed=0)
    record(
        "Theorem 3.1 (entry-suppression threshold)",
        good.consistent_with_theorem and bad.consistent_with_theorem,
        f"planted OPT {good.optimum} == {good.threshold}; "
        f"matchless OPT {bad.optimum} > {bad.threshold}",
    )


def theorem_3_2() -> None:
    good = threshold_experiment("attributes", with_matching=True, seed=1)
    bad = threshold_experiment("attributes", with_matching=False, seed=1)
    record(
        "Theorem 3.2 (attribute-suppression threshold)",
        good.consistent_with_theorem and bad.consistent_with_theorem,
        f"planted min {good.optimum} == {good.threshold}; "
        f"matchless min {bad.optimum} > {bad.threshold}",
    )


def theorem_4_1() -> None:
    exp = ratio_experiment(GreedyCoverAnonymizer(), k=2, n=8, trials=8)
    record(
        "Theorem 4.1 (greedy cover within 3k(1+ln 2k))",
        exp.within_bound,
        f"max ratio {exp.max_ratio:.2f} <= bound {exp.bound:.1f}",
    )


def theorem_4_2() -> None:
    exp = ratio_experiment(CenterCoverAnonymizer(), k=3, n=8, m=4, trials=8)
    record(
        "Theorem 4.2 (ball cover within 6k(1+ln m))",
        exp.within_bound,
        f"max ratio {exp.max_ratio:.2f} <= bound {exp.bound:.1f}",
    )


def lemma_4_1() -> None:
    from itertools import combinations

    rng = np.random.default_rng(3)
    table = Table(
        [tuple(int(v) for v in rng.integers(0, 3, size=3)) for _ in range(7)]
    )
    k = 2
    opt, _ = optimal_anonymization(table, k)

    # brute-force minimum diameter sum over (k, 2k-1)-partitions
    best = [math.inf, None]

    def rec(remaining, acc, total):
        if total >= best[0]:
            return
        if not remaining:
            best[0], best[1] = total, list(acc)
            return
        first, rest = remaining[0], remaining[1:]
        for size in range(k - 1, min(2 * k - 1, len(remaining))):
            if 0 < len(rest) - size < k:
                continue
            for mates in combinations(rest, size):
                group = frozenset((first, *mates))
                acc.append(group)
                rec([i for i in rest if i not in group], acc,
                    total + diameter_of(table, group))
                acc.pop()

    rec(list(range(table.n_rows)), [], 0)
    dsum, minimizer = best
    upper = sum(
        len(g) * (len(g) - 1) * diameter_of(table, g) for g in minimizer
    )
    record(
        "Lemma 4.1 (cost/diameter sandwich)",
        k * dsum <= opt and (dsum == 0 or opt <= upper),
        f"k*d* = {k * dsum} <= OPT = {opt} <= sum|S|(|S|-1)d(S) = {upper}",
    )


def lemma_4_2() -> None:
    rng = np.random.default_rng(4)
    table = Table(
        [tuple(int(v) for v in rng.integers(0, 3, size=5)) for _ in range(15)]
    )
    worst = 0.0
    for c in range(table.n_rows):
        for r in range(1, 6):
            ball = frozenset(
                v for v in range(table.n_rows)
                if distance(table[c], table[v]) <= r
            )
            if len(ball) >= 2:
                worst = max(worst, diameter_of(table, ball) / r)
    record(
        "Lemma 4.2 (ball diameter <= 2r)",
        worst <= 2.0,
        f"max realized d(ball)/r = {worst:.2f}",
    )


def figure_1_and_reduce() -> None:
    rng = np.random.default_rng(5)
    table = Table(
        [tuple(int(v) for v in rng.integers(0, 3, size=4)) for _ in range(12)]
    )
    triangle_ok = all(
        check_figure_1(
            table,
            frozenset({0, int(rng.integers(1, 12))}),
            frozenset({0, int(rng.integers(1, 12))}),
        )
        for _ in range(50)
    )
    cover = build_ball_cover(table, 2)
    partition = reduce_cover(cover)
    reduce_ok = partition.diameter_sum(table) <= cover.diameter_sum(table)
    record(
        "Figure 1 + Reduce (diameter sum never increases)",
        triangle_ok and reduce_ok,
        f"d(cover) {cover.diameter_sum(table)} -> "
        f"d(partition) {partition.diameter_sum(table)}",
    )


def runtime_shapes() -> None:
    import time

    times = []
    sizes = [40, 80, 160]
    for n in sizes:
        rng = np.random.default_rng(6)
        table = Table(
            [tuple(int(v) for v in rng.integers(0, 4, size=6))
             for _ in range(n)]
        )
        start = time.perf_counter()
        CenterCoverAnonymizer().anonymize(table, 4)
        times.append(time.perf_counter() - start)
    from repro.theory import fit_power_law

    exponent = fit_power_law(sizes, times)
    record(
        "Theorem 4.2 runtime (strongly polynomial)",
        exponent < 4.0,
        f"fitted n-exponent {exponent:.2f}",
    )


def main() -> int:
    print("Reproducing Meyerson & Williams (PODS 2004), claim by claim:\n")
    theorem_3_1()
    theorem_3_2()
    theorem_4_1()
    theorem_4_2()
    lemma_4_1()
    lemma_4_2()
    figure_1_and_reduce()
    runtime_shapes()
    failed = [claim for claim, ok, _ in RESULTS if not ok]
    print(
        f"\n{len(RESULTS) - len(failed)}/{len(RESULTS)} claims reproduced."
        + (f"  FAILED: {failed}" if failed else "")
    )
    # sanity footnote: the bounds really are the paper's formulas
    assert math.isclose(theorem_4_1_ratio(2), 6 * (1 + math.log(4)))
    assert math.isclose(theorem_4_2_ratio(3, 4), 18 * (1 + math.log(4)))
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
