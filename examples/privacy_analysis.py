"""Privacy analysis: linkage attacks, risk, and l-diversity.

Demonstrates *why* k matters: simulate a linkage attack against a raw
release (everyone re-identified), then against k-anonymized releases
(risk capped at 1/k), and finally show the homogeneity gap that
distinct l-diversity closes.

Run:  python examples/privacy_analysis.py
"""

from collections import Counter

from repro import CenterCoverAnonymizer
from repro.privacy import (
    LDiverseAnonymizer,
    diversity_level,
    linkage_attack,
    risk_report,
)
from repro.workloads import census_table, quasi_identifiers

N = 120
K = 4


def main() -> None:
    survey = census_table(N, seed=7, age_bucket=10)
    identifiers = quasi_identifiers(survey).project(["age", "sex", "race"])
    diagnoses = list(survey.column("diagnosis"))
    people = [f"person-{i:03d}" for i in range(N)]

    # --- 1. the raw release is a re-identification machine -----------
    raw_counts = linkage_attack(identifiers, identifiers, people)
    unique = sum(1 for c in raw_counts.values() if c == 1)
    print(f"Raw release: {unique}/{N} individuals match exactly one record")
    print(f"  max prosecutor risk: {risk_report(identifiers).max_risk:.0%}\n")

    # --- 2. k-anonymity caps the risk at 1/k -------------------------
    result = CenterCoverAnonymizer().anonymize(identifiers, K)
    released = result.anonymized
    counts = linkage_attack(released, identifiers, people)
    report = risk_report(released)
    print(f"{K}-anonymous release ({result.stars} cells suppressed):")
    print(f"  every individual matches >= {min(counts.values())} records")
    print(f"  max prosecutor risk: {report.max_risk:.0%} "
          f"(guarantee: {1 / K:.0%})")
    assert report.meets_k(K)

    # --- 3. ...but homogeneous classes still leak the diagnosis ------
    level = diversity_level(released, diagnoses)
    homogeneous = sum(
        1
        for cls in Counter(released.rows).items()
        if len({diagnoses[i] for i, row in enumerate(released.rows)
                if row == cls[0]}) == 1
    )
    print(f"\nDiversity of the k-anonymous release: l = {level} "
          f"({homogeneous} homogeneous classes leak their diagnosis)")

    # --- 4. enforce distinct 2-diversity ------------------------------
    diverse = LDiverseAnonymizer(2).anonymize_with_sensitive(
        identifiers, K, diagnoses
    )
    print(f"2-diverse release: l = "
          f"{diversity_level(diverse.anonymized, diagnoses)}, "
          f"{diverse.stars} cells suppressed "
          f"(+{diverse.stars - result.stars} vs plain k-anonymity)")
    print("\nPrivacy ladder: raw -> k-anonymous (identity) -> "
          "l-diverse (identity + attribute).")


if __name__ == "__main__":
    main()
