"""Measure the approximation algorithms against exact optima.

Sweeps random instances, reporting realized ratios for the Theorem 4.1
and Theorem 4.2 algorithms against their proven guarantees — in practice
both land within ~1.5x of optimal, far below 3k(1+ln 2k) and 6k(1+ln m).

Run:  python examples/approximation_quality.py
"""

from repro import (
    CenterCoverAnonymizer,
    GreedyCoverAnonymizer,
    MSTForestAnonymizer,
    optimal_anonymization,
    theorem_4_1_ratio,
    theorem_4_2_ratio,
)
from repro.workloads import uniform_table

K = 3
M = 4
TRIALS = 12


def main() -> None:
    algorithms = {
        "greedy (Thm 4.1)": GreedyCoverAnonymizer(),
        "center (Thm 4.2)": CenterCoverAnonymizer(),
        "mst_forest (ext)": MSTForestAnonymizer(),
    }
    worst = {name: 0.0 for name in algorithms}
    total = {name: 0.0 for name in algorithms}
    counted = 0

    print(f"{'seed':>4} {'OPT':>4} " +
          " ".join(f"{name:>18}" for name in algorithms))
    for seed in range(TRIALS):
        table = uniform_table(9, M, alphabet_size=3, seed=seed)
        opt, _ = optimal_anonymization(table, K)
        if opt == 0:
            continue
        counted += 1
        row = [f"{seed:>4} {opt:>4}"]
        for name, algorithm in algorithms.items():
            cost = algorithm.anonymize(table, K).stars
            ratio = cost / opt
            worst[name] = max(worst[name], ratio)
            total[name] += ratio
            row.append(f"{cost:>4} ({ratio:>5.2f}x)    ")
        print(" ".join(row))

    print("\nRealized vs proven guarantees:")
    bounds = {
        "greedy (Thm 4.1)": theorem_4_1_ratio(K),
        "center (Thm 4.2)": theorem_4_2_ratio(K, M),
        "mst_forest (ext)": float("nan"),
    }
    for name in algorithms:
        mean = total[name] / counted
        print(f"  {name}: worst {worst[name]:.2f}x, mean {mean:.2f}x "
              f"(proven bound {bounds[name]:.1f}x)")


if __name__ == "__main__":
    main()
