"""Epidemic-tracking scenario: release a disease survey privately.

The paper's introduction motivates k-anonymity with epidemic tracking: a
data miner needs the full table to spot trends, but releasing it raw
identifies patients.  This example anonymizes the quasi-identifiers of a
synthetic census-style survey at k = 5 ("the value for k used in
practice is no more than 5 or 6" [9]), compares algorithms, and shows a
trend that survives anonymization.

Run:  python examples/epidemic_survey.py
"""

from collections import Counter

from repro import (
    CenterCoverAnonymizer,
    KMemberAnonymizer,
    MondrianAnonymizer,
    MSTForestAnonymizer,
    RandomPartitionAnonymizer,
    is_k_anonymous,
)
from repro.core.metrics import metric_report
from repro.workloads import census_table, quasi_identifiers

K = 5
N = 200


def main() -> None:
    survey = census_table(N, seed=42, age_bucket=10)
    # Restrict to the externally linkable attributes (the narrower the
    # quasi-identifier set, the less must be withheld).
    identifiers = quasi_identifiers(survey).project(["age", "sex", "race"])
    diagnoses = survey.column("diagnosis")

    print(f"Survey: {N} records, quasi-identifiers "
          f"{', '.join(identifiers.attributes)}\n")

    print(f"{'algorithm':<16} {'stars':>6} {'suppressed':>11} "
          f"{'precision':>10} {'classes':>8}")
    results = {}
    for algorithm in [
        CenterCoverAnonymizer(),
        MondrianAnonymizer(),
        KMemberAnonymizer(),
        MSTForestAnonymizer(),
        RandomPartitionAnonymizer(seed=0),
    ]:
        result = algorithm.anonymize(identifiers, K)
        assert is_k_anonymous(result.anonymized, K)
        report = metric_report(result.anonymized, K)
        results[algorithm.name] = result
        print(
            f"{algorithm.name:<16} {report['stars']:>6} "
            f"{report['suppression_ratio']:>10.1%} "
            f"{report['precision']:>10.3f} {report['classes']:>8}"
        )

    # Release = anonymized identifiers + untouched sensitive column.
    best = min(results.values(), key=lambda r: r.stars)
    released_rows = [
        (*qi_row, diag)
        for qi_row, diag in zip(best.anonymized.rows, diagnoses)
    ]

    from repro import STAR

    age_index = identifiers.attribute_index("age")
    print(f"\nBest release: {best.algorithm} ({best.stars} stars). "
          "Aggregate trends survive on the retained cells:")
    flu = Counter()
    totals = Counter()
    for row in released_rows:
        age = row[age_index]
        if age is STAR:
            band = "(age hidden)"
        else:
            band = "under 40" if int(age) < 40 else "40 and over"
        totals[band] += 1
        if row[-1] == "Flu":
            flu[band] += 1
    for band in sorted(totals):
        print(f"  {band}: {flu[band]}/{totals[band]} flu cases "
              f"({flu[band] / totals[band]:.0%})")

    print("\nEvery individual record, however, is hidden in a crowd of "
          f"at least {K}.")


if __name__ == "__main__":
    main()
