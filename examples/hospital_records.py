"""The paper's Section 1 example: "Who had an X-ray at this hospital
yesterday?"

Reproduces both anonymization flavours on the 4-row hospital relation:

* pure suppression (the paper's formal model, Sections 2-4);
* generalization with admissible hierarchies (the intro's 2-anonymized
  table with "20-40", "R*", etc.).

Run:  python examples/hospital_records.py
"""

from repro import ExactAnonymizer, Table, is_k_anonymous
from repro.generalization import (
    Hierarchy,
    generalize_table,
    interval_hierarchy,
    samarati,
)


def hospital_table() -> Table:
    return Table(
        [
            ("Harry", "Stone", 34, "Afr-Am"),
            ("John", "Reyser", 36, "Cauc"),
            ("Beatrice", "Stone", 47, "Afr-Am"),
            ("John", "Ramos", 22, "Hisp"),
        ],
        attributes=["first", "last", "age", "race"],
    )


def suppression_flavour(table: Table) -> None:
    print("--- Optimal 2-anonymization by suppression (Sections 2-4) ---")
    result = ExactAnonymizer().anonymize(table, 2)
    print(result.anonymized.pretty())
    print(f"{result.stars} cells suppressed "
          f"(optimal; the problem is NP-hard in general)\n")
    assert is_k_anonymous(result.anonymized, 2)


def generalization_flavour(table: Table) -> None:
    print("--- 2-anonymization by generalization (the intro's version) ---")
    # Admissible generalizations "must be given prior to the input":
    hierarchies = [
        Hierarchy.suppression(["Harry", "John", "Beatrice"]),
        Hierarchy.from_nested(
            # last names generalize through an initial-prefix level
            {"*": {"Stone*": ["Stone"], "R*": ["Reyser", "Ramos"]}}
        ),
        interval_hierarchy(0, 80, base_width=20, branching=2),
        Hierarchy.suppression(["Afr-Am", "Cauc", "Hisp"]),
    ]
    node, height = samarati(table, hierarchies, 2)
    released = generalize_table(table, hierarchies, list(node))
    print(released.pretty())
    print(f"generalization levels {node} (lattice height {height})\n")
    assert is_k_anonymous(released, 2)


def main() -> None:
    table = hospital_table()
    print("Query response before anonymization:")
    print(table.pretty())
    print()
    suppression_flavour(table)
    generalization_flavour(table)
    print("Both releases are 2-anonymous: every record is textually "
          "indistinguishable from at least one other.")


if __name__ == "__main__":
    main()
