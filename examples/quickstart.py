"""Quickstart: k-anonymize a small table with the paper's algorithms.

Run:  python examples/quickstart.py
"""

from repro import (
    CenterCoverAnonymizer,
    ExactAnonymizer,
    GreedyCoverAnonymizer,
    Table,
    is_k_anonymous,
    theorem_4_1_ratio,
    theorem_4_2_ratio,
)


def main() -> None:
    # A toy relation: m = 3 attributes over small alphabets.
    table = Table(
        [
            ("red", "circle", 1),
            ("red", "circle", 2),
            ("red", "square", 1),
            ("blue", "square", 7),
            ("blue", "square", 8),
            ("blue", "circle", 7),
        ],
        attributes=["color", "shape", "size"],
    )
    k = 3

    print("Original relation:")
    print(table.pretty())
    print()

    # The exact optimum (NP-hard in general -- fine at this size).
    exact = ExactAnonymizer().anonymize(table, k)
    print(f"Exact optimum: {exact.stars} suppressed cells")
    print(exact.anonymized.pretty())
    print()

    # Theorem 4.1: greedy cover over all small subsets.
    greedy = GreedyCoverAnonymizer().anonymize(table, k)
    print(
        f"Greedy cover (Theorem 4.1): {greedy.stars} cells; "
        f"guarantee {theorem_4_1_ratio(k):.1f}x optimal"
    )

    # Theorem 4.2: the strongly polynomial ball algorithm.
    center = CenterCoverAnonymizer().anonymize(table, k)
    print(
        f"Center cover (Theorem 4.2): {center.stars} cells; "
        f"guarantee {theorem_4_2_ratio(k, table.degree):.1f}x optimal"
    )
    print()

    for result in (exact, greedy, center):
        assert is_k_anonymous(result.anonymized, k)
    print(f"All releases verified {k}-anonymous.")


if __name__ == "__main__":
    main()
