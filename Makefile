# Developer shortcuts.  The offline CI recipe is exactly:
#   pip install -e . && pytest tests/ && pytest benchmarks/ --benchmark-only

.PHONY: install test bench examples all

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f > /dev/null && echo OK; done

all: install test bench examples
