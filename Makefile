# Developer shortcuts.  The offline CI recipe is exactly:
#   pip install -e . && pytest tests/ && pytest benchmarks/ --benchmark-only

.PHONY: install test lint bench bench-compare serve route examples sweep all

# worker processes for `make sweep` (kanon experiment --jobs)
JOBS ?= 2
SWEEP_OUT ?= runs/ratio-center
# `make serve` knobs (kanon serve)
PORT ?= 7683
CACHE_DIR ?= runs/service-cache
# `make route` knobs (kanon route): shard fleet behind the router
ROUTER_PORT ?= 7690
SHARDS ?= 127.0.0.1:7683

install:
	pip install -e .

test:
	pytest tests/

# same gate CI runs (needs the CI-only toolchain: pip install -e '.[lint]')
lint:
	ruff check src tests benchmarks
	mypy src/repro

bench:
	pytest benchmarks/ --benchmark-only

# regression guard against the committed baselines (quick mode, numpy
# backend — the profile the baselines were recorded under); refresh a
# baseline by appending `-- --update` semantics via compare_bench directly
bench-compare:
	REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e9_runtime.py \
		--benchmark-json=bench-e9.json
	REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e18_parallel_speedup.py \
		--benchmark-json=bench-e18.json
	REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e21_bitpack_kernel.py \
		--benchmark-json=bench-e21.json
	REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e22_delta_solve.py \
		--benchmark-json=bench-e22.json
	REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e23_planner.py \
		--benchmark-json=bench-e23.json
	REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e24_shard_scaling.py \
		--benchmark-json=bench-e24.json
	REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e25_privacy.py \
		--benchmark-json=bench-e25.json
	python benchmarks/compare_bench.py bench-e9.json \
		--baseline benchmarks/baselines/BENCH_e9.json
	python benchmarks/compare_bench.py bench-e18.json \
		--baseline benchmarks/baselines/BENCH_e18.json
	python benchmarks/compare_bench.py bench-e21.json \
		--baseline benchmarks/baselines/BENCH_e21.json
	python benchmarks/compare_bench.py bench-e22.json \
		--baseline benchmarks/baselines/BENCH_e22.json
	python benchmarks/compare_bench.py bench-e23.json \
		--baseline benchmarks/baselines/BENCH_e23.json
	python benchmarks/compare_bench.py bench-e24.json \
		--baseline benchmarks/baselines/BENCH_e24.json
	python benchmarks/compare_bench.py bench-e25.json \
		--baseline benchmarks/baselines/BENCH_e25.json

# anonymization service with a persistent on-disk solution cache
serve:
	python -m repro.cli serve --port $(PORT) --cache-dir $(CACHE_DIR)

# consistent-hash router over running `kanon serve` shards, e.g.:
#   make route SHARDS="127.0.0.1:7691 127.0.0.1:7692 127.0.0.1:7693"
route:
	python -m repro.cli route --port $(ROUTER_PORT) \
		$(foreach shard,$(SHARDS),--shard $(shard))

# resumable ratio sweep on JOBS worker processes; rerun to continue an
# interrupted run (artifacts land in SWEEP_OUT)
sweep:
	python -m repro.cli experiment ratio-center --trials 20 \
		--jobs $(JOBS) --out $(SWEEP_OUT) \
		$(if $(wildcard $(SWEEP_OUT)/trials.jsonl),--resume,)

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f > /dev/null && echo OK; done

all: install test bench examples
