# Developer shortcuts.  The offline CI recipe is exactly:
#   pip install -e . && pytest tests/ && pytest benchmarks/ --benchmark-only

.PHONY: install test bench examples sweep all

# worker processes for `make sweep` (kanon experiment --jobs)
JOBS ?= 2
SWEEP_OUT ?= runs/ratio-center

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# resumable ratio sweep on JOBS worker processes; rerun to continue an
# interrupted run (artifacts land in SWEEP_OUT)
sweep:
	python -m repro.cli experiment ratio-center --trials 20 \
		--jobs $(JOBS) --out $(SWEEP_OUT) \
		$(if $(wildcard $(SWEEP_OUT)/trials.jsonl),--resume,)

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f > /dev/null && echo OK; done

all: install test bench examples
