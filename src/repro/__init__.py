"""repro — reproduction of Meyerson & Williams,
"On the Complexity of Optimal K-Anonymity" (PODS 2004).

Public API highlights
---------------------

Data model (Section 2)::

    from repro import Table, Suppressor, STAR, is_k_anonymous

Approximation algorithms (Section 4)::

    from repro import GreedyCoverAnonymizer   # Theorem 4.1, O(k log k)-approx
    from repro import CenterCoverAnonymizer   # Theorem 4.2, strongly polynomial

Exact optima (for ground truth; the problem is NP-hard)::

    from repro import optimal_anonymization, ExactAnonymizer

Hardness reductions (Section 3)::

    from repro.hardness import EntrySuppressionReduction
    from repro.hardness import AttributeSuppressionReduction
"""

from repro import registry
from repro.algorithms import (
    AnonymizationResult,
    Anonymizer,
    BranchBoundAnonymizer,
    CenterCoverAnonymizer,
    DataflyAnonymizer,
    ExactAnonymizer,
    GreedyCoverAnonymizer,
    InfeasibleAnonymizationError,
    KMemberAnonymizer,
    LocalSearchAnonymizer,
    MSTForestAnonymizer,
    MondrianAnonymizer,
    PairMatchingAnonymizer,
    RandomPartitionAnonymizer,
    SimulatedAnnealingAnonymizer,
    SmallMExactAnonymizer,
    SortedChunkAnonymizer,
    SuppressEverythingAnonymizer,
    optimal_anonymization,
    optimal_attribute_suppression,
)
from repro.core import (
    STAR,
    Alphabet,
    Cover,
    Partition,
    Suppressor,
    Table,
    anon_cost,
    anonymity_level,
    anonymize_partition,
    diameter,
    distance,
    group_image,
    is_k_anonymous,
    suppressed_cell_count,
)
from repro.theory import theorem_4_1_ratio, theorem_4_2_ratio

__version__ = "1.0.0"

__all__ = [
    "STAR",
    "Alphabet",
    "AnonymizationResult",
    "Anonymizer",
    "BranchBoundAnonymizer",
    "CenterCoverAnonymizer",
    "Cover",
    "DataflyAnonymizer",
    "ExactAnonymizer",
    "GreedyCoverAnonymizer",
    "InfeasibleAnonymizationError",
    "KMemberAnonymizer",
    "LocalSearchAnonymizer",
    "MSTForestAnonymizer",
    "MondrianAnonymizer",
    "PairMatchingAnonymizer",
    "Partition",
    "RandomPartitionAnonymizer",
    "SimulatedAnnealingAnonymizer",
    "SmallMExactAnonymizer",
    "SortedChunkAnonymizer",
    "SuppressEverythingAnonymizer",
    "Suppressor",
    "Table",
    "anon_cost",
    "anonymity_level",
    "anonymize_partition",
    "diameter",
    "distance",
    "group_image",
    "is_k_anonymous",
    "optimal_anonymization",
    "optimal_attribute_suppression",
    "registry",
    "suppressed_cell_count",
    "theorem_4_1_ratio",
    "theorem_4_2_ratio",
]
