"""Command-line interface: ``kanon anonymize --k 3 table.csv``.

Subcommands
-----------

``anonymize``
    Read a CSV, k-anonymize with a chosen algorithm, write the result.
``algorithms``
    List every registered algorithm with its kind and proven bound
    (``--json`` for machine-readable capability metadata).
``check``
    Report the anonymity level and star count of a (possibly already
    anonymized) CSV.

The ``--algorithm`` choices (and the ``algorithms`` listing) come from
the central capability registry (:mod:`repro.registry`) — the CLI holds
no private name→class table of its own.  The one extra choice is
``auto``, which defers the pick to :mod:`repro.planner`: the planner
ranks the registered portfolio against the instance and the time
budget, the strongest affordable tier wins, and the decision is printed
to stderr (and recorded in the run trace).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import registry
from repro.core.anonymity import anonymity_level, suppressed_cell_count
from repro.core.backend import available_backends, default_backend_name
from repro.core.metrics import metric_report
from repro.instrument import BudgetExceededError, format_trace
from repro.io import read_csv, write_csv


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="kanon",
        description=(
            "Optimal k-anonymity via suppression — reproduction of "
            "Meyerson & Williams (PODS 2004)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    anonymize = sub.add_parser("anonymize", help="k-anonymize a CSV table")
    anonymize.add_argument("input", help="input CSV path")
    anonymize.add_argument("-k", type=int, required=True, help="anonymity parameter")
    anonymize.add_argument(
        "--algorithm",
        choices=[*registry.names(include_aliases=True), "auto"],
        default="center_cover",
        metavar="NAME",
        help=(
            "algorithm name or alias — see `kanon algorithms` for the "
            "full list; 'auto' lets the planner pick (default: "
            "center_cover, the Theorem 4.2 algorithm)"
        ),
    )
    anonymize.add_argument("-o", "--output", help="output CSV path (default: stdout)")
    anonymize.add_argument(
        "--ldiv",
        type=int,
        default=None,
        metavar="L",
        help=(
            "also enforce distinct L-diversity, treating the LAST column "
            "as the sensitive attribute (released untouched)"
        ),
    )
    anonymize.add_argument(
        "--no-header", action="store_true", help="input has no header row"
    )
    _add_run_flags(anonymize)

    check = sub.add_parser("check", help="report anonymity level and stars")
    check.add_argument("input", help="input CSV path")
    check.add_argument("-k", type=int, default=None,
                       help="also report utility metrics at this k")
    check.add_argument(
        "--no-header", action="store_true", help="input has no header row"
    )

    risk = sub.add_parser(
        "risk", help="prosecutor re-identification risk of a release"
    )
    risk.add_argument("input", help="released CSV path")
    risk.add_argument(
        "--external",
        help="adversary's external CSV (same schema) for a linkage attack",
    )
    risk.add_argument(
        "--sensitive",
        help="name of a sensitive column (released untouched, NOT a "
             "quasi-identifier); projected out before risk is computed",
    )
    risk.add_argument(
        "--no-header", action="store_true", help="inputs have no header row"
    )

    attack = sub.add_parser(
        "attack",
        help="simulate a projection linkage attack on a release",
    )
    attack.add_argument("input", help="original CSV path")
    attack.add_argument("released", help="released CSV path (same schema)")
    attack.add_argument(
        "--aux", required=True,
        help="comma-separated auxiliary columns the adversary knows "
             "(names, or 0-based indices with --no-header)",
    )
    attack.add_argument(
        "--sensitive", default=None,
        help="column whose value the adversary infers by majority vote "
             "over each match set (excluded from matching)",
    )
    attack.add_argument(
        "--json", action="store_true",
        help="emit the attack report as JSON",
    )
    attack.add_argument(
        "--no-header", action="store_true", help="inputs have no header row"
    )

    validate = sub.add_parser(
        "validate", help="gate a release against its original table"
    )
    validate.add_argument("input", help="original CSV path")
    validate.add_argument("released", help="released CSV path")
    validate.add_argument("-k", type=int, required=True,
                          help="claimed anonymity parameter")
    validate.add_argument(
        "--no-header", action="store_true", help="inputs have no header row"
    )

    dossier = sub.add_parser(
        "dossier", help="full release dossier for an (original, released) pair"
    )
    dossier.add_argument("input", help="original CSV path")
    dossier.add_argument("released", help="released CSV path")
    dossier.add_argument("-k", type=int, required=True)
    dossier.add_argument(
        "--sensitive",
        help="name of a sensitive column present in BOTH files (released "
             "untouched); enables the attribute-disclosure section",
    )
    dossier.add_argument(
        "--no-header", action="store_true", help="inputs have no header row"
    )

    algorithms = sub.add_parser(
        "algorithms",
        help="list registered algorithms with kinds and proven bounds",
    )
    algorithms.add_argument(
        "-k", type=int, default=3,
        help="evaluate proven bounds at this k (default: 3)",
    )
    algorithms.add_argument(
        "-m", type=int, default=4,
        help="evaluate proven bounds at this attribute count (default: 4)",
    )
    algorithms.add_argument(
        "-n", type=int, default=None,
        help="also evaluate planner capabilities (applicable / estimated "
             "seconds) at this row count",
    )
    algorithms.add_argument(
        "--sigma", type=int, default=2,
        help="alphabet size for the capability evaluation (default: 2)",
    )
    algorithms.add_argument(
        "--json", action="store_true",
        help="emit the registry as JSON (machine-readable capabilities)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the anonymization service (JSON lines over TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default: 7683; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per dispatched batch (default: 1)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=16, metavar="N",
        help="most requests dispatched per batch (default: 16)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.005, metavar="SECONDS",
        help="how long to coalesce concurrent arrivals (default: 0.005)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=256, metavar="N",
        help="in-memory solution-cache entries (default: 256)",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="enable the on-disk cache tier in this directory",
    )
    serve.add_argument(
        "--max-timeout", type=float, default=None, metavar="SECONDS",
        help="admission cap: reject requests asking for more budget",
    )
    serve.add_argument(
        "--backend", choices=["python", "numpy", "bitpacked"], default=None,
        help="distance backend for all solves (default: REPRO_BACKEND)",
    )
    serve.add_argument(
        "--per-batch-pool", action="store_true",
        help="spawn a fresh worker pool per batch instead of keeping "
             "one alive across batches (the pre-v2 behaviour)",
    )
    serve.add_argument(
        "--max-tasks-per-child", type=int, default=None, metavar="N",
        help="recycle persistent-pool workers after ~N tasks each",
    )
    serve.add_argument(
        "--inject-faults", action="store_true",
        help="honour per-request 'fault' fields (chaos testing only; "
             "also: REPRO_SERVICE_FAULTS=1)",
    )
    serve.add_argument(
        "--privacy-budget", type=float, default=None, metavar="EPSILON",
        help="per-dataset ε ceiling for DP releases; requests beyond it "
             "are rejected with privacy-budget-exhausted (default: "
             "track spends, no limit)",
    )

    route = sub.add_parser(
        "route",
        help="run a consistent-hash router over `kanon serve` shards",
    )
    route.add_argument(
        "--shard", action="append", required=True, dest="shards",
        metavar="HOST:PORT",
        help="a shard address (repeat once per `kanon serve` instance)",
    )
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default: 7690; 0 picks an ephemeral port)",
    )
    route.add_argument(
        "--vnodes", type=int, default=64, metavar="N",
        help="virtual nodes per shard on the hash ring (default: 64)",
    )
    route.add_argument(
        "--health-interval", type=float, default=1.0, metavar="SECONDS",
        help="seconds between shard health sweeps; dead shards are "
             "evicted from the ring and rejoin when they answer again "
             "(0 disables the sweep; default: 1.0)",
    )
    route.add_argument(
        "--ping-timeout", type=float, default=2.0, metavar="SECONDS",
        help="budget for one health-check ping (default: 2.0)",
    )
    route.add_argument(
        "--backend", choices=["python", "numpy", "bitpacked"], default=None,
        help="backend baked into routing keys — must match the shards' "
             "(default: REPRO_BACKEND)",
    )

    submit = sub.add_parser(
        "submit",
        help="send a table to a running `kanon serve` or `kanon route`",
    )
    submit.add_argument(
        "input", nargs="?", default=None,
        help="input CSV path (omit with --stats / --shutdown / --ping)",
    )
    submit.add_argument("-k", type=int, default=None,
                        help="anonymity parameter")
    submit.add_argument(
        "--algorithm", default="center_cover", metavar="NAME",
        help="algorithm name or alias; 'auto' lets the server's planner "
             "pick (default: center_cover)",
    )
    submit.add_argument("-o", "--output",
                        help="output CSV path (default: stdout)")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=None)
    submit.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-request wall-clock budget on the server",
    )
    submit.add_argument(
        "--no-cache", action="store_true",
        help="bypass the server's solution cache for this request",
    )
    submit.add_argument(
        "--no-header", action="store_true", help="input has no header row"
    )
    submit.add_argument(
        "--trace", action="store_true",
        help="print the server-side run trace to stderr",
    )
    submit.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="reconnect-and-retry attempts on connection errors "
             "(idempotent requests only; default: 2)",
    )
    submit.add_argument(
        "--fault", default=None, metavar="MODE",
        help="ask a chaos-enabled server to misbehave: kill-worker, "
             "delay:SECONDS, or drop-connection",
    )
    submit.add_argument(
        "--ldiv", type=int, default=None, metavar="L",
        help="privacy block: ask for distinct L-diversity on the "
             "sensitive column (default sensitive: the last column)",
    )
    submit.add_argument(
        "--tclose", type=float, default=None, metavar="T",
        help="privacy block: ask for T-closeness on the sensitive column",
    )
    submit.add_argument(
        "--epsilon", type=float, default=None, metavar="EPS",
        help="privacy block: also release an ε-DP noisy equivalence-"
             "class histogram (charged against the server's privacy "
             "budget; printed to stderr)",
    )
    submit.add_argument(
        "--sensitive", type=int, default=None, metavar="COLUMN",
        help="privacy block: 0-based index of the sensitive column "
             "(default: the last column when --ldiv/--tclose is given)",
    )
    submit.add_argument(
        "--delta", default=None, metavar="STATE_KEY",
        help="treat the input CSV as rows appended to the incremental "
             "stream stored under STATE_KEY (printed to stderr by a "
             "previous --algorithm incremental submit)",
    )
    submit.add_argument(
        "--stats", action="store_true",
        help="print the server's cache/batch counters and exit",
    )
    submit.add_argument(
        "--ping", action="store_true",
        help="health-check the server and exit",
    )
    submit.add_argument(
        "--shutdown", action="store_true",
        help="stop the server and exit",
    )

    experiment = sub.add_parser(
        "experiment",
        help="rerun a paper experiment (no input file needed)",
    )
    experiment.add_argument(
        "name",
        choices=["ratio-greedy", "ratio-center", "threshold-entries",
                 "threshold-attributes", "k-sweep", "privacy"],
        help="which experiment to run",
    )
    experiment.add_argument("-k", type=int, default=3)
    experiment.add_argument("--trials", type=int, default=10)
    experiment.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run independent trials on N worker processes (default: 1; "
             "results are bit-identical to a serial run)",
    )
    experiment.add_argument(
        "--out", default=None, metavar="DIR",
        help="record per-trial JSON artifacts into this run directory",
    )
    experiment.add_argument(
        "--resume", action="store_true",
        help="continue a previous --out run, skipping completed trials",
    )
    _add_run_flags(experiment)
    return parser


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    """Shared per-run flags: backend selection, deadline, tracing."""
    parser.add_argument(
        "--backend",
        choices=["python", "numpy", "bitpacked"],
        default=None,
        help="distance backend (default: the REPRO_BACKEND env variable)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget per anonymization; iterative algorithms "
            "return their best valid release on expiry, exact solvers "
            "exit with status 2"
        ),
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print a structured run trace to stderr (also: REPRO_TRACE=1)",
    )


def _list_algorithms(args) -> int:
    """The ``algorithms`` command: render the capability registry.

    With ``-n`` the planner's capability metadata is evaluated against a
    concrete instance shape (n, m, sigma, k); ``--json`` emits the same
    information machine-readably for scripting.
    """
    from repro.planner import tier_of

    infos = registry.all()
    features = (
        None if args.n is None else (args.n, args.m, args.sigma, args.k)
    )
    if args.json:
        import json as _json

        records = []
        for info in infos:
            record = {
                "name": info.name,
                "aliases": list(info.aliases),
                "kind": info.kind,
                "tier": tier_of(info),
                "anytime": info.anytime,
                "parameterized": info.parameterized,
                "bound": info.proven_bound(args.k, args.m),
                "bound_label": info.bound_label,
                "summary": info.summary,
            }
            if features is not None:
                record["applicable"] = info.is_applicable(*features)
                record["estimated_seconds"] = info.estimated_seconds(
                    *features
                )
            records.append(record)
        print(_json.dumps({
            "algorithms": records,
            "bound_at": {"k": args.k, "m": args.m},
            "features": None if features is None else {
                "n": args.n, "m": args.m, "sigma": args.sigma, "k": args.k,
            },
            "backends": available_backends(),
            "default_backend": default_backend_name(),
        }, indent=2))
        return 0
    name_width = max(len(info.name) for info in infos)
    kind_width = max(len(info.kind) for info in infos)
    capability_header = ""
    if features is not None:
        capability_header = f"  {'applicable':<10}  {'est_s':<9}"
    print(f"{'name':<{name_width}}  {'kind':<{kind_width}}  "
          f"{'anytime':<7}  {'fpt':<3}{capability_header}  "
          f"bound(k={args.k}, m={args.m})")
    for info in infos:
        bound = info.proven_bound(args.k, args.m)
        label = "—" if bound is None else f"{bound:.2f}"
        if info.bound_label:
            label += f"  [{info.bound_label}]"
        anytime = "yes" if info.anytime else "no"
        fpt = "yes" if info.parameterized else "no"
        capability = ""
        if features is not None:
            applicable = "yes" if info.is_applicable(*features) else "no"
            est = info.estimated_seconds(*features)
            capability = f"  {applicable:<10}  {est:<9.3g}"
        print(f"{info.name:<{name_width}}  {info.kind:<{kind_width}}  "
              f"{anytime:<7}  {fpt:<3}{capability}  {label}")
        if info.aliases:
            print(f"{'':<{name_width}}  aliases: {', '.join(info.aliases)}")
        if info.summary:
            print(f"{'':<{name_width}}  {info.summary}")
    print(f"backends: {', '.join(available_backends())} "
          f"(default: {default_backend_name()})")
    return 0


def _experiment_store(args, experiment: str, config: dict):
    """The RunStore for ``--out`` (None when not requested)."""
    if args.out is None:
        if args.resume:
            print("error: --resume requires --out", file=sys.stderr)
            raise SystemExit(2)
        return None
    from repro.artifacts import RunStore

    return RunStore(args.out, experiment=experiment, config=config,
                    resume=args.resume)


def _run_experiment(args) -> int:
    """The `experiment` command: rerun a paper experiment from scratch.

    ``--jobs N`` fans trials out over N worker processes (bit-identical
    to a serial run); ``--out DIR`` records per-trial artifacts and
    ``--resume`` continues an interrupted sweep without re-solving
    finished trials.
    """
    from repro.experiments import k_sweep, ratio_experiment, threshold_sweep

    trace = True if args.trace else None
    if args.name.startswith("ratio-"):
        algorithm_name = (
            "greedy_cover" if args.name == "ratio-greedy" else "center_cover"
        )
        store = _experiment_store(args, "ratio", {
            "algorithm": algorithm_name, "k": args.k,
        })
        exp = ratio_experiment(
            registry.create(algorithm_name), k=args.k, trials=args.trials,
            backend=args.backend, timeout=args.timeout, trace=trace,
            jobs=args.jobs, store=store,
        )
        bound = "none" if exp.bound is None else f"{exp.bound:.1f}"
        print(f"{exp.algorithm}, k={exp.k}: "
              f"mean ratio {exp.mean_ratio:.3f}, max {exp.max_ratio:.3f}, "
              f"proven bound {bound}")
        for row in exp.rows:
            print(f"  seed {row.seed}: OPT {row.opt}, cost {row.cost} "
                  f"({row.ratio:.2f}x)")
        for run_trace in exp.traces:
            print(format_trace(run_trace), file=sys.stderr)
        return 0 if (not exp.has_bound or exp.within_bound) else 1
    if args.name.startswith("threshold-"):
        kind = args.name.split("-", 1)[1]
        store = _experiment_store(args, "threshold", {"kind": kind})
        results = threshold_sweep(
            kind=kind, cases=((True, 0), (False, 0)),
            jobs=args.jobs, store=store,
        )
        for result in results:
            print(f"{kind}, matching={result.has_matching}: threshold "
                  f"{result.threshold}, optimum {result.optimum}, "
                  f"consistent={result.consistent_with_theorem}")
        return 0 if all(r.consistent_with_theorem for r in results) else 1
    if args.name == "privacy":
        from repro.experiments import privacy_experiment

        store = _experiment_store(args, "privacy", {
            "workload": "census-120-seed0", "epsilon": 1.0,
        })
        exp = privacy_experiment(
            backend=args.backend, timeout=args.timeout, trace=trace,
            jobs=args.jobs, store=store,
        )
        print(f"{exp.algorithm} on census n={exp.n}, ε={exp.epsilon:g}:")
        for point in exp.points:
            print(f"  k={point.k}: {point.stars} stars, "
                  f"re-identified {point.fraction_unique:.1%}, "
                  f"inference {point.inference_accuracy:.1%}, "
                  f"dp overhead {point.dp_overhead:.1%} of solve")
        drop = exp.reidentification_drop
        drop_text = "inf" if drop == float("inf") else f"{drop:.1f}"
        print(f"unique re-identification drop "
              f"k={min(p.k for p in exp.points)} -> "
              f"k={max(p.k for p in exp.points)}: {drop_text}x")
        return 0
    # k-sweep
    from repro.workloads import census_table, quasi_identifiers

    table = quasi_identifiers(census_table(120, seed=0))
    store = _experiment_store(args, "k_sweep", {
        "workload": "census-120-seed0",
    })
    for point in k_sweep(table, backend=args.backend,
                         timeout=args.timeout, trace=trace,
                         jobs=args.jobs, store=store):
        print(f"k={point.k}: {point.stars} stars, "
              f"precision {point.precision:.3f}, {point.classes} classes")
        if point.trace is not None:
            print(format_trace(point.trace), file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit status 2 means a ``--timeout`` expired inside an exact solver
    (no feasible incumbent exists mid-flight, so nothing can be
    released); iterative algorithms instead degrade gracefully and
    report the deadline on stderr.
    """
    from repro.artifacts import ArtifactMismatchError

    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except BudgetExceededError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ArtifactMismatchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _serve(args) -> int:
    """The ``serve`` command: run the service until shut down."""
    from repro.service import DEFAULT_PORT, AnonymizationService, serve

    service = AnonymizationService(
        max_entries=args.cache_size,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
        backend=args.backend,
        max_timeout=args.max_timeout,
        persistent_pool=not args.per_batch_pool,
        max_tasks_per_child=args.max_tasks_per_child,
        fault_injection=True if args.inject_faults else None,
        privacy_budget=args.privacy_budget,
    )
    port = DEFAULT_PORT if args.port is None else args.port
    try:
        serve(service, host=args.host, port=port, log=sys.stderr)
    except KeyboardInterrupt:
        print("kanon service interrupted", file=sys.stderr)
    return 0


def _render_pool(pool: dict) -> str:
    extras = ""
    if pool.get("mode") == "persistent":
        extras = (f", {pool['batches']} batches, "
                  f"{pool['tasks']} tasks, "
                  f"{pool['rebuilds']} rebuilds, "
                  f"{pool['recycled']} recycles")
    return f"{pool['mode']} ({pool['workers']} workers{extras})"


def _render_stats(stats: dict) -> None:
    """Print the ``--stats`` report (single server or merged fleet)."""
    cache = stats["cache"]
    print(f"uptime: {stats['uptime_seconds']:.1f}s  "
          f"backend: {stats['backend']}  jobs: {stats['jobs']}")
    solved = ""
    if "solved_instances" in stats:
        solved = f"  solved instances: {stats['solved_instances']}"
    print(f"requests: {stats['requests']}  "
          f"rejected: {stats['rejected']}  "
          f"coalesced: {stats['coalesced']}{solved}")
    print(f"cache: {cache['hits']} hits "
          f"({cache['memory_hits']} memory, {cache['disk_hits']} "
          f"disk), {cache['misses']} misses, "
          f"{cache['evictions']} evictions, "
          f"{cache['entries']}/{cache['max_entries']} resident")
    batches = stats["batches"]
    print(f"batches: {batches['count']} dispatched, "
          f"max size {batches['max_size']}, "
          f"mean size {batches['mean_size']:.2f}")
    privacy = stats.get("privacy")
    if privacy:
        budget = privacy.get("budget")
        ceiling = "unlimited" if budget is None else f"{budget:g}"
        spends = ", ".join(
            f"{dataset}: ε={spent:g}"
            for dataset, spent in (privacy.get("datasets") or {}).items()
        ) or "no ε spent"
        print(f"privacy budget: {ceiling}  ({spends})")
    pool = stats.get("pool")
    if pool:
        print(f"pool: {_render_pool(pool)}")
    router = stats.get("router")
    if not router:
        return
    counters = router.get("counters", {})
    print(f"router: {router['shards_alive']}/{router['shards_total']} "
          f"shards alive (routed {counters.get('routed', 0)}, "
          f"rerouted {counters.get('rerouted', 0)}, "
          f"failovers {counters.get('failovers', 0)}, "
          f"evicted {counters.get('evicted', 0)}, "
          f"rejoined {counters.get('rejoined', 0)})")
    for address, shard in sorted((stats.get("shards") or {}).items()):
        if "error" in shard:
            print(f"shard {address}: DEAD ({shard['error']})")
            continue
        shard_cache = shard.get("cache", {})
        line = (f"shard {address}: {shard_cache.get('hits', 0)} hits, "
                f"{shard_cache.get('misses', 0)} misses, "
                f"{shard.get('solved_instances', 0)} solved instances, "
                f"{shard_cache.get('entries', 0)}/"
                f"{shard_cache.get('max_entries', 0)} resident")
        pool = shard.get("pool")
        if pool:
            line += f", pool {_render_pool(pool)}"
        print(line)


def _submit(args) -> int:
    """The ``submit`` command: one request to a running service."""
    from repro.service import DEFAULT_PORT, ServiceClient, ServiceError

    port = DEFAULT_PORT if args.port is None else args.port
    client = ServiceClient(args.host, port, retries=max(0, args.retries))
    try:
        if args.ping:
            response = client.ping()
            router = response.get("router")
            if router:
                print(f"ok (protocol {response['protocol']}, router "
                      f"{router['shards_alive']}/{router['shards_total']} "
                      f"shards alive)")
            else:
                print(f"ok (protocol {response['protocol']})")
            return 0
        if args.stats:
            _render_stats(client.stats())
            return 0
        if args.shutdown:
            response = client.shutdown()
            for address, verdict in sorted(
                (response.get("shards") or {}).items()
            ):
                print(f"shard {address}: {verdict}", file=sys.stderr)
            print("server stopped", file=sys.stderr)
            return 0
        if args.input is None or (args.k is None and args.delta is None):
            print("error: submit needs an input CSV and -k (or --delta "
                  "STATE_KEY, or one of --stats / --ping / --shutdown)",
                  file=sys.stderr)
            return 2
        table = read_csv(args.input, header=not args.no_header)
        if args.delta is not None:
            response = client.delta(
                args.delta, table,
                k=args.k,
                header=not args.no_header,
                timeout=args.timeout,
                use_cache=not args.no_cache,
                fault=args.fault,
            )
            disposition = response.get("delta")
            if disposition:
                print(f"delta: +{disposition['rows_added']} rows "
                      f"({disposition['rows_total']} total), "
                      f"{disposition['untouched_groups']}/"
                      f"{disposition['groups']} groups untouched",
                      file=sys.stderr)
        else:
            privacy = {}
            if args.ldiv is not None:
                privacy["l"] = args.ldiv
            if args.tclose is not None:
                privacy["t"] = args.tclose
            if args.epsilon is not None:
                privacy["epsilon"] = args.epsilon
            if args.sensitive is not None:
                privacy["sensitive"] = args.sensitive
            response = client.anonymize(
                table, args.k,
                algorithm=args.algorithm,
                header=not args.no_header,
                timeout=args.timeout,
                use_cache=not args.no_cache,
                trace=args.trace,
                fault=args.fault,
                privacy=privacy or None,
            )
        dp = response.get("dp")
        if dp:
            print(f"dp: ε={dp['epsilon']:g} {dp['mechanism']} noise "
                  f"(scale {dp['scale']:g}) over {len(dp['classes'])} "
                  f"equivalence classes", file=sys.stderr)
        if response.get("state_key"):
            print(f"state key: {response['state_key']}", file=sys.stderr)
        plan = response.get("plan")
        if plan:
            print(f"plan: {response['algorithm']} ({plan['reason']})",
                  file=sys.stderr)
        if response.get("deadline_hit"):
            print("deadline hit: the server returned its best valid "
                  "release within the budget", file=sys.stderr)
        if args.trace and response.get("trace"):
            print(format_trace(response["trace"]), file=sys.stderr)
        solve = response.get("solve_seconds")
        timing = "" if solve is None else f" in {solve:.3f}s"
        print(f"cache: {response['cache']}  "
              f"({response['algorithm']}, k={response['k']}, "
              f"{response['stars']} stars{timing})", file=sys.stderr)
        if response.get("shard"):
            rerouted = " (rerouted)" if response.get("rerouted") else ""
            print(f"shard: {response['shard']}{rerouted}", file=sys.stderr)
        if args.output:
            write_csv(response["table"], args.output,
                      header=not args.no_header)
        else:
            sys.stdout.write(response["csv"])
        return 0
    except ServiceError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 2 if exc.code == "budget-exceeded" else 1
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach the service at {args.host}:{port} "
              f"({exc}); is `kanon serve` running?", file=sys.stderr)
        return 2
    finally:
        client.close()


def _route(args) -> int:
    """The ``route`` command: front a shard fleet until shut down."""
    from repro.service import DEFAULT_ROUTER_PORT, ShardRouter
    from repro.service.router import route

    try:
        router = ShardRouter(
            args.shards,
            vnodes=args.vnodes,
            backend=args.backend,
            health_interval=args.health_interval,
            ping_timeout=args.ping_timeout,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    port = DEFAULT_ROUTER_PORT if args.port is None else args.port
    try:
        route(router, host=args.host, port=port, log=sys.stderr)
    except KeyboardInterrupt:
        print("kanon router interrupted", file=sys.stderr)
    return 0


def _dispatch(args) -> int:
    if args.command == "algorithms":
        return _list_algorithms(args)
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "route":
        return _route(args)
    if args.command == "submit":
        return _submit(args)
    table = read_csv(args.input, header=not args.no_header)

    if args.command == "anonymize":
        if args.algorithm == "auto":
            from repro.planner import PlannedAnonymizer

            algorithm = PlannedAnonymizer()
        else:
            algorithm = registry.create(args.algorithm)
        trace = True if args.trace else None
        if args.ldiv is not None:
            from repro.privacy import LDiverseAnonymizer

            # the wrapper's template path splits off the last column,
            # anonymizes the rest, and reattaches it untouched — the
            # release keeps the input's schema
            algorithm = LDiverseAnonymizer(
                args.ldiv, inner=algorithm, backend=args.backend
            )
        result = algorithm.anonymize(
            table, args.k,
            backend=args.backend, timeout=args.timeout, trace=trace,
        )
        plan = result.extras.get("plan")
        if plan is not None:
            print(f"plan: {result.algorithm} ({plan['reason']})",
                  file=sys.stderr)
            if "fallback" in plan:
                fallback = plan["fallback"]
                print(f"plan fallback: {fallback['from']} failed "
                      f"({fallback['error']})", file=sys.stderr)
        if result.extras.get("deadline_hit"):
            print(
                "deadline hit: returning the best valid release found "
                "within the budget",
                file=sys.stderr,
            )
        if "trace" in result.extras:
            print(format_trace(result.extras["trace"]), file=sys.stderr)
        output = result.anonymized.to_csv(header=not args.no_header)
        if args.output:
            write_csv(result.anonymized, args.output, header=not args.no_header)
            print(
                f"{result.algorithm}: {result.stars} cells suppressed "
                f"({result.stars / max(1, table.total_cells()):.1%}) -> "
                f"{args.output}",
                file=sys.stderr,
            )
        else:
            sys.stdout.write(output)
        return 0

    if args.command == "check":
        level = anonymity_level(table)
        stars = suppressed_cell_count(table)
        print(f"rows: {table.n_rows}  degree: {table.degree}")
        print(f"anonymity level: {level}")
        print(f"suppressed cells: {stars}")
        if args.k is not None:
            for key, value in metric_report(table, args.k).items():
                print(f"{key}: {value}")
        return 0

    if args.command == "validate":
        from repro.validate import validate_release

        released = read_csv(args.released, header=not args.no_header)
        report = validate_release(table, released, args.k)
        print(report.summary())
        return 0 if report.ok else 1

    if args.command == "dossier":
        from repro.report import release_dossier

        released = read_csv(args.released, header=not args.no_header)
        sensitive = None
        if args.sensitive:
            sensitive = released.column(args.sensitive)
            keep = [a for a in released.attributes if a != args.sensitive]
            released = released.project(keep)
            table = table.project(keep)
        text = release_dossier(table, released, args.k, sensitive=sensitive)
        print(text)
        return 0 if text.splitlines()[0].endswith(f"APPROVED (k={args.k})") else 1

    if args.command == "attack":
        from repro.privacy import projection_attack

        released = read_csv(args.released, header=not args.no_header)
        aux: list = [col.strip() for col in args.aux.split(",") if col.strip()]
        sensitive = args.sensitive
        if args.no_header:
            # headerless tables have synthetic attribute names; accept
            # 0-based indices on the command line instead
            aux = [int(col) for col in aux]
            sensitive = int(sensitive) if sensitive is not None else None
        report = projection_attack(
            released, table, aux, sensitive=sensitive
        )
        if args.json:
            print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
            return 0
        print(f"targets: {report.targets}")
        print(f"uniquely re-identified: {report.unique} "
              f"({report.fraction_unique:.1%})")
        print(f"match-set size: min {report.min_match}, "
              f"mean {report.mean_match:.2f}")
        if sensitive is not None:
            print(f"sensitive-value inference accuracy: "
                  f"{report.inference_accuracy:.1%} "
                  f"({report.inference_correct}/{report.targets})")
        return 0

    # risk
    from repro.privacy import linkage_attack, risk_report

    if args.sensitive:
        # the sensitive column is released untouched and is NOT a
        # quasi-identifier — counting it would report a false max
        # prosecutor risk of 1.0 on any release with distinct values
        keep = [a for a in table.attributes if a != args.sensitive]
        if len(keep) == len(table.attributes):
            print(f"error: no column named {args.sensitive!r}",
                  file=sys.stderr)
            return 2
        table = table.project(keep)
    report = risk_report(table)
    print(f"classes: {report.class_count}")
    print(f"max prosecutor risk: {report.max_risk:.4f}")
    print(f"mean prosecutor risk: {report.mean_risk:.4f}")
    print(f"records at max risk: {report.records_at_max}")
    if args.external:
        external = read_csv(args.external, header=not args.no_header)
        if args.sensitive and args.sensitive in external.attributes:
            external = external.project(
                [a for a in external.attributes if a != args.sensitive]
            )
        counts = linkage_attack(
            table, external, list(range(external.n_rows))
        )
        pinned = sum(1 for c in counts.values() if c == 1)
        print(
            f"linkage attack: {pinned}/{external.n_rows} external records "
            f"match exactly one released record"
        )
        print(f"minimum match set size: {min(counts.values(), default=0)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
