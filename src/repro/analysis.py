"""Analytic utility of released tables: interval count queries.

The paper's motivation is that an analyst should still "spot interesting
trends" in the release.  A suppressed cell makes a row's membership in a
selection *uncertain*, so a count query over an anonymized table answers
with an interval:

* **certain** matches — rows whose retained cells satisfy every
  predicate conjunct;
* **possible** matches — rows that could satisfy it, where stars are
  read as wildcards.

The true count (on the original table) always lies in
``[certain, possible]`` — the fundamental soundness property, asserted
by the test suite — and the interval width measures the utility lost to
anonymization, which :func:`query_error_experiment` aggregates over
random workloads.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.alphabet import STAR
from repro.core.table import Table


@dataclass(frozen=True)
class IntervalCount:
    """An interval answer to a count query."""

    certain: int
    possible: int

    def __post_init__(self):
        if not 0 <= self.certain <= self.possible:
            raise ValueError("need 0 <= certain <= possible")

    @property
    def width(self) -> int:
        return self.possible - self.certain

    @property
    def midpoint(self) -> float:
        return (self.certain + self.possible) / 2

    def contains(self, true_count: int) -> bool:
        return self.certain <= true_count <= self.possible


def count_query(
    table: Table,
    predicate: Mapping[str | int, Hashable],
) -> IntervalCount:
    """Answer ``COUNT(*) WHERE attr = value AND ...`` on a release.

    :param predicate: attribute (name or index) -> required value.
    :returns: the interval of counts consistent with the stars.

    >>> t = Table([(1, STAR), (1, 2), (0, 2)], attributes=["a", "b"])
    >>> count_query(t, {"a": 1, "b": 2})
    IntervalCount(certain=1, possible=2)
    """
    columns = {
        (key if isinstance(key, int) else table.attribute_index(key)): value
        for key, value in predicate.items()
    }
    for j in columns:
        if not 0 <= j < table.degree:
            raise ValueError(f"attribute index {j} out of range")
    certain = 0
    possible = 0
    for row in table.rows:
        definite = True
        feasible = True
        for j, wanted in columns.items():
            cell = row[j]
            if cell is STAR:
                definite = False
            elif cell != wanted:
                feasible = False
                break
        if feasible:
            possible += 1
            if definite:
                certain += 1
    return IntervalCount(certain=certain, possible=possible)


@dataclass(frozen=True)
class QueryErrorReport:
    """Aggregate interval quality over a random query workload."""

    queries: int
    sound: int
    mean_width: float
    mean_relative_width: float

    @property
    def all_sound(self) -> bool:
        return self.sound == self.queries


def query_error_experiment(
    original: Table,
    released: Table,
    n_queries: int = 50,
    arity: int = 2,
    seed: int | np.random.Generator = 0,
) -> QueryErrorReport:
    """Random conjunctive count queries on original vs release.

    Predicates are sampled from the *original* table's values (so true
    counts are nonzero reasonably often).  Reports how many query
    intervals contain the truth (all must) and how wide they are,
    relative to the table size.
    """
    if original.n_rows != released.n_rows or original.degree != released.degree:
        raise ValueError("original and released tables must share shape")
    if arity < 1 or arity > original.degree:
        raise ValueError("arity must be in [1, degree]")
    if n_queries < 1:
        raise ValueError("need at least one query")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    n = original.n_rows
    sound = 0
    total_width = 0
    for _ in range(n_queries):
        source_row = original.rows[int(rng.integers(0, n))]
        attributes = rng.choice(original.degree, size=arity, replace=False)
        predicate = {int(j): source_row[int(j)] for j in attributes}
        truth = count_query(original, predicate)
        assert truth.width == 0, "a star-free table answers exactly"
        answer = count_query(released, predicate)
        if answer.contains(truth.certain):
            sound += 1
        total_width += answer.width
    return QueryErrorReport(
        queries=n_queries,
        sound=sound,
        mean_width=total_width / n_queries,
        mean_relative_width=total_width / n_queries / max(1, n),
    )
