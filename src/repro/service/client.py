"""Blocking client for the anonymization service.

Speaks the newline-delimited-JSON protocol of
:mod:`repro.service.server` over one persistent TCP connection.  Used
by the ``kanon submit`` CLI verb, the service tests, and the E19
throughput benchmark; third-party callers only need a socket and
``json`` to interoperate.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.core.table import Table
from repro.service.server import DEFAULT_PORT, ServiceError


class ServiceClient:
    """One connection to a running anonymization service.

    :param host: server address.
    :param port: server port.
    :param timeout: socket timeout in seconds for connect and replies
        (raise it for long solver budgets; ``None`` blocks forever).

    The connection opens lazily on the first request and is reused
    across calls; the client is also a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float | None = 60.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None

    # -- plumbing ------------------------------------------------------

    def _connect(self) -> None:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._file = self._sock.makefile("rwb")

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request object, return the raw response object."""
        self._connect()
        assert self._file is not None
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError(
                f"service at {self.host}:{self.port} closed the connection"
            )
        return json.loads(line)

    def _checked(self, payload: dict[str, Any]) -> dict[str, Any]:
        response = self.request(payload)
        if not response.get("ok"):
            raise ServiceError(
                response.get("code", "internal"),
                response.get("error", "service error"),
            )
        return response

    # -- the verbs -----------------------------------------------------

    def anonymize(
        self,
        table: "Table | str",
        k: int,
        *,
        algorithm: str = "center_cover",
        header: bool = True,
        timeout: float | None = None,
        use_cache: bool = True,
        trace: bool = False,
    ) -> dict[str, Any]:
        """Anonymize a :class:`Table` (or CSV text) on the server.

        Returns the response object; ``response["table"]`` is the
        released :class:`Table` parsed back from the wire, alongside
        ``stars``, ``cache`` (hit / coalesced / miss / bypass), and
        ``solve_seconds``.

        :raises ServiceError: on any rejected request (bad input,
            unknown algorithm, blown budget, infeasible instance).
        """
        csv = table.to_csv(header=header) if isinstance(table, Table) else table
        response = self._checked({
            "op": "anonymize",
            "csv": csv,
            "header": header,
            "k": k,
            "algorithm": algorithm,
            "timeout": timeout,
            "use_cache": use_cache,
            "trace": trace,
        })
        response["table"] = Table.from_csv(response["csv"], header=header)
        return response

    def stats(self) -> dict[str, Any]:
        """Server counters: cache hits/misses/evictions, batches, traces."""
        return self._checked({"op": "stats"})

    def ping(self) -> dict[str, Any]:
        """Health check (also reports the protocol version)."""
        return self._checked({"op": "ping"})

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to stop after acknowledging."""
        try:
            return self._checked({"op": "shutdown"})
        finally:
            self.close()

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Close the connection (reopens lazily on the next request)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "connected" if self._sock is not None else "idle"
        return f"ServiceClient({self.host}:{self.port}, {state})"
