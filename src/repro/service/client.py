"""Blocking client for the anonymization service.

Speaks the newline-delimited-JSON protocol of
:mod:`repro.service.server` over one persistent TCP connection.  Used
by the ``kanon submit`` CLI verb, the service tests, and the E19/E20
benchmarks; third-party callers only need a socket and ``json`` to
interoperate.

Robustness (protocol v2):

* every request carries an auto-incrementing ``id``; responses are
  matched by it, so a line left over from an earlier timed-out request
  is **discarded** instead of being mistaken for the current reply.
* a dead connection (reset, closed, failed write) is closed
  immediately — satellite of PR 5: the next call reconnects instead of
  failing forever on a half-dead socket.
* idempotent verbs (``anonymize``, ``delta``, ``ping``, ``stats``)
  retry through :class:`~repro.instrument.Backoff` with exponential
  delay and jitter; ``shutdown`` never retries (a retry could kill a
  freshly restarted server).
* route awareness (PR 9): ``fallbacks`` names alternate addresses —
  standby routers, or the shards themselves when no router runs — and
  a retry after a connection failure advances to the next address
  (sticky: later requests keep using the address that worked).

The counters on :attr:`ServiceClient.counters` (requests / retries /
reconnects / timeouts / failovers / stale lines discarded) make those
behaviours observable in tests and chaos runs.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Iterable

from repro.core.table import Table
from repro.instrument import Backoff
from repro.service.server import DEFAULT_PORT, ServiceError


class ServiceClient:
    """One connection to a running anonymization service.

    :param host: server address.
    :param port: server port.
    :param timeout: socket timeout in seconds for connect and replies
        (raise it for long solver budgets; ``None`` blocks forever).
    :param retries: reconnect-and-resend attempts (beyond the first)
        for **idempotent** requests that hit a connection error or
        timeout.  0 disables retrying; the dead socket is still closed
        so the next call reconnects.
    :param backoff: delay policy between retries (default
        ``Backoff()``: 50 ms doubling to 2 s, with jitter).
    :param rng: random source for the jitter (seed it in tests).
    :param fallbacks: alternate service addresses (``"host:port"``
        strings or ``(host, port)`` tuples) tried in order when the
        current address fails a connection attempt — e.g. a standby
        router, or the shard fleet itself when no router is running.
        Failover is sticky: once an address answers, later requests
        keep using it until it too fails.

    The connection opens lazily on the first request and is reused
    across calls; the client is also a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float | None = 60.0,
        *,
        retries: int = 2,
        backoff: Backoff | None = None,
        rng: random.Random | None = None,
        fallbacks: "Iterable[str | tuple[str, int]] | None" = None,
    ):
        if retries < 0:
            raise ValueError("retries cannot be negative")
        self._addresses: list[tuple[str, int]] = [(host, int(port))]
        for fallback in fallbacks or ():
            self._addresses.append(self._parse(fallback))
        self._current = 0
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff if backoff is not None else Backoff()
        self._rng = rng
        self._sock: socket.socket | None = None
        self._buffer = bytearray()
        self._next_id = 0
        self.counters: dict[str, int] = {
            "requests": 0,
            "retries": 0,
            "reconnects": 0,
            "timeouts": 0,
            "failovers": 0,
            "stale_lines_discarded": 0,
        }

    # -- plumbing ------------------------------------------------------

    @staticmethod
    def _parse(address: "str | tuple[str, int]") -> tuple[str, int]:
        if isinstance(address, tuple):
            return str(address[0]), int(address[1])
        host, separator, port_text = address.rpartition(":")
        if not separator or not host or not port_text.isdigit():
            raise ValueError(
                f"fallback address {address!r} is not of the form host:port"
            )
        return host, int(port_text)

    @property
    def host(self) -> str:
        """The host currently in use (moves on failover)."""
        return self._addresses[self._current][0]

    @property
    def port(self) -> int:
        """The port currently in use (moves on failover)."""
        return self._addresses[self._current][1]

    def _advance(self) -> None:
        """Fail over to the next configured address (round robin)."""
        if len(self._addresses) > 1:
            self.close()
            self._current = (self._current + 1) % len(self._addresses)
            self.counters["failovers"] += 1

    def _connect(self) -> None:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._buffer.clear()
            self.counters["reconnects"] += 1

    def _read_line(self) -> bytes:
        """One newline-terminated line from the socket.

        A manual buffer instead of ``socket.makefile`` so that a read
        timeout leaves the connection in a consistent state — the bytes
        received so far stay buffered, and the late response can be
        recognised (and discarded by ``id``) on the next request.
        """
        assert self._sock is not None
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[: newline + 1])
                del self._buffer[: newline + 1]
                return line
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ConnectionError(
                    f"service at {self.host}:{self.port} closed the "
                    "connection"
                )
            self._buffer.extend(chunk)

    def _exchange(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One send/receive round-trip, matching the response by id.

        Raises ``ConnectionError`` (after closing the dead socket) on
        anything that warrants a reconnect; raises ``socket.timeout``
        (``TimeoutError``) with the connection *kept* when the server is
        simply slow — the stale reply will be discarded by id later.
        """
        request_id = self._next_id
        self._next_id += 1
        payload = {**payload, "id": request_id}
        self._connect()
        assert self._sock is not None
        self._sock.settimeout(self.timeout)
        try:
            self._sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        except socket.timeout:
            # a send timeout leaves an unknown number of bytes on the
            # wire: the connection is unusable, not merely slow
            self.close()
            self.counters["timeouts"] += 1
            raise ConnectionError(
                f"timed out sending to {self.host}:{self.port}"
            ) from None
        except OSError as exc:
            self.close()
            raise ConnectionError(
                f"lost connection to {self.host}:{self.port}: {exc}"
            ) from exc
        while True:
            try:
                line = self._read_line()
            except socket.timeout:
                self.counters["timeouts"] += 1
                raise
            except ConnectionError:
                self.close()
                raise
            except OSError as exc:
                self.close()
                raise ConnectionError(
                    f"lost connection to {self.host}:{self.port}: {exc}"
                ) from exc
            try:
                response = json.loads(line)
                if not isinstance(response, dict):
                    raise ValueError("response is not a JSON object")
            except ValueError:
                # a garbled line means framing is lost for good
                self.close()
                raise ConnectionError(
                    f"service at {self.host}:{self.port} sent a "
                    "malformed response line"
                ) from None
            if response.get("id") == request_id:
                return response
            if "id" not in response:
                # a v1 server echoes nothing; pairing is positional
                return response
            # a late answer to an earlier timed-out request: drop it
            # and keep reading for ours
            self.counters["stale_lines_discarded"] += 1

    def request(
        self, payload: dict[str, Any], *, idempotent: bool = True
    ) -> dict[str, Any]:
        """Send one request object, return the raw response object.

        Connection errors and send timeouts are retried (reconnect,
        backoff with jitter, fresh request id) up to ``retries`` times —
        but only when *idempotent*; a non-idempotent request fails on
        the first error.  With ``fallbacks`` configured, each retry
        also advances to the next address (round robin).  Read timeouts raise ``TimeoutError`` with the
        connection kept open (the late reply is discarded by id later).
        """
        self.counters["requests"] += 1
        attempts = (self.retries if idempotent else 0) + 1
        for attempt in range(attempts):
            try:
                return self._exchange(payload)
            except ConnectionError:
                if attempt + 1 >= attempts:
                    raise
                self.counters["retries"] += 1
                self._advance()
                time.sleep(self.backoff.delay(attempt, rng=self._rng))
        raise AssertionError("unreachable")  # pragma: no cover

    def _checked(
        self, payload: dict[str, Any], *, idempotent: bool = True
    ) -> dict[str, Any]:
        response = self.request(payload, idempotent=idempotent)
        if not response.get("ok"):
            raise ServiceError(
                response.get("code", "internal"),
                response.get("error", "service error"),
            )
        return response

    # -- the verbs -----------------------------------------------------

    def anonymize(
        self,
        table: "Table | str",
        k: int,
        *,
        algorithm: str = "center_cover",
        header: bool = True,
        timeout: float | None = None,
        use_cache: bool = True,
        trace: bool = False,
        fault: str | None = None,
        privacy: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Anonymize a :class:`Table` (or CSV text) on the server.

        Returns the response object; ``response["table"]`` is the
        released :class:`Table` parsed back from the wire, alongside
        ``stars``, ``cache`` (hit / coalesced / miss / bypass), and
        ``solve_seconds``.

        *privacy* is the optional protocol privacy block — a dict with
        any of ``sensitive`` (column index), ``l`` (distinct
        l-diversity), ``t`` (t-closeness), ``epsilon`` (ε-DP noisy
        class histogram, returned under ``response["dp"]``).  Privacy
        requests are cached under privacy-aware keys and ε-releases are
        charged against the server's privacy budget.

        ``algorithm="auto"`` lets the server pick: the planner runs at
        admission, ``response["algorithm"]`` names the solver that
        actually ran, and ``response["plan"]`` carries the full
        :class:`~repro.planner.PlanDecision` dict.  The job is cached
        under the *resolved* algorithm, so an auto request and an
        explicit one for the same resolution share a cache entry.

        *fault* asks a chaos-enabled server to misbehave on purpose
        (``kill-worker``, ``delay:SECONDS``, ``drop-connection``);
        servers without fault injection reject it.

        :raises ServiceError: on any rejected request (bad input,
            unknown algorithm, blown budget, infeasible instance).
        """
        csv = table.to_csv(header=header) if isinstance(table, Table) else table
        payload = {
            "op": "anonymize",
            "csv": csv,
            "header": header,
            "k": k,
            "algorithm": algorithm,
            "timeout": timeout,
            "use_cache": use_cache,
            "trace": trace,
        }
        if fault is not None:
            payload["fault"] = fault
        if privacy is not None:
            payload["privacy"] = privacy
        response = self._checked(payload)
        response["table"] = Table.from_csv(response["csv"], header=header)
        return response

    def delta(
        self,
        state_key: str,
        rows: "Table | str",
        *,
        k: int | None = None,
        header: bool = True,
        timeout: float | None = None,
        use_cache: bool = True,
        fault: str | None = None,
    ) -> dict[str, Any]:
        """Append rows to a previously-solved incremental stream.

        *state_key* is the key a prior ``anonymize(...,
        algorithm="incremental")`` or ``delta`` response carried; *rows*
        is the appended delta only (not the full table).  Returns the
        grown release — ``response["table"]`` parsed back from the
        wire, a fresh ``state_key`` to continue the chain, and a
        ``delta`` disposition (``rows_added`` / ``rows_total`` /
        ``groups`` / ``untouched_groups``) on an actual solve (cache
        hits answer without one).

        The request is idempotent — replaying the same delta against
        the same state key yields the same release and the same next
        ``state_key`` — so it retries like ``anonymize`` does.

        :raises ServiceError: ``unknown-state`` when no state lives
            under *state_key* (wrong key, evicted memory-only cache, or
            a backend mismatch); ``bad-request`` on a k / degree /
            attribute mismatch with the stored stream.
        """
        csv = rows.to_csv(header=header) if isinstance(rows, Table) else rows
        payload = {
            "op": "delta",
            "state_key": state_key,
            "csv": csv,
            "header": header,
            "timeout": timeout,
            "use_cache": use_cache,
        }
        if k is not None:
            payload["k"] = k
        if fault is not None:
            payload["fault"] = fault
        response = self._checked(payload)
        response["table"] = Table.from_csv(response["csv"], header=header)
        return response

    def stats(self) -> dict[str, Any]:
        """Server counters: cache hits/misses/evictions, batches, pool."""
        return self._checked({"op": "stats"})

    def ping(self) -> dict[str, Any]:
        """Health check (also reports the protocol version)."""
        return self._checked({"op": "ping"})

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to stop after acknowledging (never retried)."""
        try:
            return self._checked({"op": "shutdown"}, idempotent=False)
        finally:
            self.close()

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Close the connection (reopens lazily on the next request)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._buffer.clear()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "connected" if self._sock is not None else "idle"
        return (
            f"ServiceClient({self.host}:{self.port}, {state}, "
            f"retries={self.retries})"
        )
