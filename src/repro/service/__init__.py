"""Request/response anonymization service: cache, server, client, router.

The front door for serving anonymization at scale: a stdlib-only
JSON-over-TCP server (:mod:`repro.service.server`) with per-request
admission control, request batching through the process-parallel
executor, and a two-tier content-addressed solution cache
(:mod:`repro.service.cache`).  ``kanon serve`` / ``kanon submit`` are
the CLI entry points; :class:`ServiceClient` is the programmatic one.

Fleets (PR 9): ``kanon route`` runs :class:`ShardRouter`
(:mod:`repro.service.router`) in front of many ``kanon serve`` shards,
consistent-hashing every request onto the shard that owns its
instance/state key via :class:`HashRing` (:mod:`repro.service.hashring`)
so no instance is ever solved twice across the fleet.  See
``docs/service.md`` for the protocol and the routing semantics.
"""

from repro.service.cache import CacheStats, SolutionCache
from repro.service.client import ServiceClient
from repro.service.hashring import HashRing
from repro.service.router import (
    DEFAULT_ROUTER_PORT,
    RouterServer,
    ShardRouter,
    merge_shard_stats,
    route,
)
from repro.service.server import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    AnonymizationService,
    ServiceError,
    ServiceServer,
    serve,
)

__all__ = [
    "AnonymizationService",
    "CacheStats",
    "DEFAULT_PORT",
    "DEFAULT_ROUTER_PORT",
    "HashRing",
    "PROTOCOL_VERSION",
    "RouterServer",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ShardRouter",
    "SolutionCache",
    "merge_shard_stats",
    "route",
    "serve",
]
