"""Request/response anonymization service: cache, server, client.

The front door for serving anonymization at scale: a stdlib-only
JSON-over-TCP server (:mod:`repro.service.server`) with per-request
admission control, request batching through the process-parallel
executor, and a two-tier content-addressed solution cache
(:mod:`repro.service.cache`).  ``kanon serve`` / ``kanon submit`` are
the CLI entry points; :class:`ServiceClient` is the programmatic one.
See ``docs/service.md`` for the protocol.
"""

from repro.service.cache import CacheStats, SolutionCache
from repro.service.client import ServiceClient
from repro.service.server import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    AnonymizationService,
    ServiceError,
    ServiceServer,
    serve,
)

__all__ = [
    "AnonymizationService",
    "CacheStats",
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SolutionCache",
    "serve",
]
