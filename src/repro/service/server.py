"""The anonymization service: batching asyncio front door for solvers.

Architecture (stdlib only — JSON lines over TCP):

* :class:`AnonymizationService` is the transport-free core.  It
  validates requests, resolves algorithms through the capability
  registry, enforces per-request :class:`~repro.instrument.TimeBudget`
  admission control, consults the two-tier
  :class:`~repro.service.cache.SolutionCache`, coalesces identical
  in-flight instances, and groups cache misses into **batches** that a
  dispatcher hands to the PR 3 process-parallel trial executor
  (:func:`repro.experiments.run_tasks`).
* :func:`serve` / :class:`ServiceServer` wrap the core in an asyncio
  TCP server speaking newline-delimited JSON (one request object per
  line, one response object per line, many per connection).
* :class:`~repro.service.client.ServiceClient` (and the ``kanon
  submit`` CLI verb) is the matching caller.

Request objects
---------------

``{"op": "anonymize", "csv": "...", "k": 3}`` plus optional
``algorithm`` (name or alias, default ``center_cover``), ``header``
(default true), ``timeout`` (seconds), ``use_cache`` (default true) and
``trace``.  Tables travel as CSV text — the same representation the CLI
reads and writes, with ``*`` marking suppressed cells.  ``algorithm:
"auto"`` resolves through :mod:`repro.planner` at admission: the job is
keyed and cached under the *resolved* algorithm (so auto and explicit
requests share cache entries) and the response carries the
:class:`~repro.planner.PlanDecision` under ``plan`` with ``algorithm``
naming the solver that ran.

``{"op": "delta", "state_key": "...", "csv": "..."}`` (a protocol v2
extension) appends rows to a previously-solved **incremental** stream:
the server restores the stored
:class:`~repro.algorithms.incremental.IncrementalState` snapshot, feeds
only the delta through the streaming engine, and returns the grown
release — untouched groups keep their frozen images byte-identical,
and a fresh ``state_key`` on the response continues the chain.  A
plain ``anonymize`` with ``algorithm: "incremental"`` starts a chain:
its response carries the first ``state_key``.

An ``anonymize`` request may carry an optional **privacy block**:
``{"privacy": {"sensitive": 2, "l": 2, "t": 0.3, "epsilon": 1.0}}`` —
``sensitive`` is the sensitive column's index (default: the last
column when ``l``/``t`` is present), ``l`` asks for distinct
l-diversity, ``t`` for t-closeness (mutually exclusive), and
``epsilon`` additionally releases an ε-DP noisy equivalence-class
histogram under the response's ``dp`` key.  The block is normalized at
admission (:func:`normalize_privacy`) and threaded into
:func:`~repro.artifacts.instance_key`, so cached entries never cross
privacy configurations — and the DP noise is seeded by the instance
key, so a cache hit re-releases byte-identical noise (which is why
hits spend no extra ε).  Fresh ε-releases are charged against the
service-wide :class:`~repro.privacy.dp.PrivacyAccountant` (per-dataset
sequential composition, ``privacy_budget`` constructor knob / ``kanon
serve --privacy-budget``); an exhausted dataset is rejected with code
``privacy-budget-exhausted``.

``{"op": "stats"}`` returns cache / batch / pool / trace counters plus
the privacy accountant's ledger; ``{"op": "ping"}`` health-checks;
``{"op": "shutdown"}`` stops the server after responding.

Responses carry ``ok`` plus either the solution (``csv``, ``stars``,
``algorithm``, ``k``, ``cache`` ∈ {``hit``, ``coalesced``, ``miss``,
``bypass``}, and — for privacy requests — ``privacy`` and optionally
``dp``) or ``error`` and a machine-readable ``code``
(``bad-request``, ``unknown-algorithm``, ``unknown-state``,
``budget-exceeded``, ``infeasible``, ``privacy-budget-exhausted``,
``internal``).

Protocol v2 (requests without these fields behave exactly like v1):

* **request correlation** — a request may carry an ``id`` (any JSON
  value); every response to it, success or error, echoes that ``id``
  verbatim.  A client whose socket timed out mid-request can therefore
  discard the late response by its stale ``id`` instead of permanently
  desyncing request/response pairing on the connection.
* **fault injection** — when (and only when) the service was started
  with it enabled, a request may carry a ``fault`` field
  (``kill-worker``, ``delay:SECONDS``, ``drop-connection``) that makes
  the server misbehave on purpose; see :class:`AnonymizationService`.

Caching semantics: results that hit their deadline
(``extras["deadline_hit"]``) are returned but **never cached** — a
budget-truncated release reflects that request's budget, not the
instance.  Budgets are armed at admission, so time spent queued counts
against the request and an already-expired job is rejected instead of
dispatched.

Worker-pool semantics: with ``jobs > 1`` the service owns a persistent
:class:`repro.experiments.WorkerPool` across batches (spawn once, solve
many), recycling workers after ``max_tasks_per_child``-many tasks each
and surviving worker crashes — a killed worker fails only its batch
(code ``internal``) and the pool rebuilds for the next one.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any

from repro import registry
from repro.algorithms.base import InfeasibleAnonymizationError
from repro.algorithms.incremental import (
    IncrementalAnonymizer,
    IncrementalState,
)
from repro.artifacts import instance_key, state_key, table_hash
from repro.core.anonymity import suppressed_cell_count
from repro.core.backend import default_backend_name
from repro.core.table import Table
from repro.experiments import WorkerPool, run_tasks
from repro.instrument import BudgetExceededError, TimeBudget, summarize_traces
from repro.privacy.dp import BudgetExhaustedError, PrivacyAccountant
from repro.service.cache import SolutionCache, is_cache_key

#: default TCP port (chosen as an unassigned registered port)
DEFAULT_PORT = 7683

#: protocol revision, reported by ``ping`` and ``stats``.  v2 adds
#: request-``id`` echoing (and, opt-in, fault injection); v1 requests
#: — no ``id`` field — are served unchanged.
PROTOCOL_VERSION = 2

#: environment switch for fault injection (constructor overrides)
FAULTS_ENV = "REPRO_SERVICE_FAULTS"

_TRUTHY = ("1", "true", "yes", "on")


class ServiceError(Exception):
    """A request the service rejected, carrying a machine-readable code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


# ----------------------------------------------------------------------
# The solver task (runs in pool workers — must stay picklable)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _SolveTask:
    csv: str
    header: bool
    k: int
    algorithm: str
    backend: str
    timeout: float | None
    trace: bool
    #: fault-injection marker (only ever set when the service was
    #: started with fault injection enabled)
    fault: str | None = None
    #: export the streaming engine's pre-finalize snapshot (set for
    #: ``incremental`` solves so the ``delta`` verb can continue them)
    capture_state: bool = False
    #: normalized privacy block as a sorted ``(field, value)`` tuple —
    #: tuple, not dict, so the frozen task stays hashable and picklable
    privacy: tuple | None = None
    #: deterministic DP noise seed, derived from the instance key so a
    #: re-solve of the same keyed instance re-releases the same noise
    dp_seed: int | None = None


@dataclass(frozen=True)
class _DeltaTask:
    """Continue a previously-solved incremental stream by a row delta.

    ``state`` is the stored :meth:`IncrementalState.as_dict` payload
    (plain JSON data, so the task stays picklable across the pool
    boundary).  ``timeout`` is carried for budget bookkeeping only —
    delta solves run to completion, the budget governs queueing and
    coalescing, not the engine (which is not an anytime algorithm).
    """

    state: dict
    csv: str
    header: bool
    k: int
    backend: str
    timeout: float | None
    trace: bool
    fault: str | None = None


def _kill_worker() -> None:
    if multiprocessing.parent_process() is not None:
        # a real pool worker: die the hard way, mid-batch, so
        # the owner sees a BrokenProcessPool (chaos testing)
        os._exit(1)  # pragma: no cover - runs in a spawned worker
    # inline mode has no worker to kill; fail like a crash would
    raise RuntimeError("fault injection: kill-worker")


def _solve_task(task: "_SolveTask | _DeltaTask") -> dict[str, Any]:
    """Solve one batched task; always returns a JSON-ready dict.

    Errors come back as ``{"error": ..., "code": ...}`` records instead
    of raising — one poisoned request inside a batch must not cancel its
    batchmates (the executor cancels the pool on a raised exception).
    """
    if isinstance(task, _DeltaTask):
        return _solve_delta(task)
    return _solve_instance(task)


def _solve_with_privacy(
    table: Table, algorithm, task: _SolveTask
) -> tuple[Any, dict[str, Any] | None]:
    """Run one privacy-wrapped solve; returns (result, dp-histogram).

    The sensitive column (when configured) is split off before the
    solve and reattached untouched afterwards, so the release keeps the
    request's full schema.  The ε-DP histogram is computed over the
    released quasi-identifier columns only — the sensitive column never
    enters the counts.
    """
    from repro.privacy.dp import noisy_class_histogram
    from repro.privacy.ldiversity import LDiverseAnonymizer
    from repro.privacy.sensitive import (
        reattach_sensitive, replace_release, split_sensitive,
    )
    from repro.privacy.tcloseness import TCloseAnonymizer

    privacy = dict(task.privacy or ())
    sensitive = privacy.get("sensitive")
    if sensitive is not None:
        identifiers, values, index = split_sensitive(table, sensitive)
        if "l" in privacy:
            wrapper: Any = LDiverseAnonymizer(privacy["l"], inner=algorithm)
        elif "t" in privacy:
            wrapper = TCloseAnonymizer(privacy["t"], inner=algorithm)
        else:
            wrapper = None
        if wrapper is not None:
            result = wrapper.anonymize_with_sensitive(
                identifiers, task.k, values, backend=task.backend,
                timeout=task.timeout, trace=task.trace,
            )
        else:
            result = algorithm.anonymize(
                identifiers, task.k, backend=task.backend,
                timeout=task.timeout, trace=task.trace,
            )
        qi_release = result.anonymized
        result = replace_release(
            result,
            reattach_sensitive(qi_release, values, index, table.attributes),
        )
    else:
        result = algorithm.anonymize(
            table, task.k, backend=task.backend, timeout=task.timeout,
            trace=task.trace,
        )
        qi_release = result.anonymized
    dp = None
    if "epsilon" in privacy:
        dp = noisy_class_histogram(
            qi_release, privacy["epsilon"], seed=task.dp_seed
        )
    return result, dp


def _solve_instance(task: _SolveTask) -> dict[str, Any]:
    """Solve one full instance from scratch."""
    started = time.perf_counter()
    dp = None
    try:
        if task.fault == "kill-worker":
            _kill_worker()
        table = Table.from_csv(task.csv, header=task.header)
        algorithm = registry.create(task.algorithm)
        if task.capture_state:
            algorithm.capture_state = True
        if task.privacy is not None:
            result, dp = _solve_with_privacy(table, algorithm, task)
        else:
            result = algorithm.anonymize(
                table, task.k, backend=task.backend, timeout=task.timeout,
                trace=task.trace,
            )
    except BudgetExceededError as exc:
        return {"error": str(exc), "code": "budget-exceeded"}
    except InfeasibleAnonymizationError as exc:
        return {"error": str(exc), "code": "infeasible"}
    except ValueError as exc:
        if task.privacy is not None:
            # e.g. "only 1 distinct sensitive value; no 2-diverse
            # release exists" — an infeasible *configuration*, not a bug
            return {"error": str(exc), "code": "infeasible"}
        return {"error": f"ValueError: {exc}", "code": "internal"}
    except Exception as exc:  # noqa: BLE001 - worker boundary
        return {"error": f"{type(exc).__name__}: {exc}", "code": "internal"}
    outcome = {
        "csv": result.anonymized.to_csv(header=task.header),
        "stars": result.stars,
        "algorithm": task.algorithm,
        "k": task.k,
        "backend": task.backend,
        "deadline_hit": bool(result.extras.get("deadline_hit")),
        "solve_seconds": time.perf_counter() - started,
        "trace": result.extras.get("trace"),
        "state": result.extras.get("incremental_state"),
        "cap_exceeded": bool(result.extras.get("cap_exceeded", False)),
    }
    if task.privacy is not None:
        outcome["privacy"] = dict(task.privacy)
        if dp is not None:
            outcome["dp"] = dp
    return outcome


def _solve_delta(task: _DeltaTask) -> dict[str, Any]:
    """Continue a stored stream: restore, insert the delta, finalize.

    The engine is deterministic, so restoring the pre-finalize snapshot
    of the prefix and inserting the delta is replay-equivalent to one
    cold run over all rows — which is exactly why the result may be
    cached under the *full* table's instance key.  The fresh snapshot
    (again pre-finalize) continues the chain.
    """
    started = time.perf_counter()
    try:
        if task.fault == "kill-worker":
            _kill_worker()
        state = IncrementalState.from_dict(task.state)
        engine = IncrementalAnonymizer.from_state(state)
        delta_table = Table.from_csv(task.csv, header=task.header)
        engine.insert(delta_table.rows)
        new_state = engine.export_state()
        engine.finalize()
        released = engine.released()
    except ValueError as exc:
        return {"error": str(exc), "code": "bad-request"}
    except Exception as exc:  # noqa: BLE001 - worker boundary
        return {"error": f"{type(exc).__name__}: {exc}", "code": "internal"}
    # group ids are stable (the group list only ever appends), so a
    # pre-delta group is untouched iff its released image — readable
    # off any of its original members — is byte-identical to the
    # frozen image the snapshot recorded
    untouched = sum(
        1 for gid, members in enumerate(state.groups)
        if released.rows[members[0]] == state.images[gid]
    )
    return {
        "csv": released.to_csv(header=task.header),
        "stars": suppressed_cell_count(released),
        "algorithm": "incremental",
        "k": task.k,
        "backend": task.backend,
        "deadline_hit": False,
        "solve_seconds": time.perf_counter() - started,
        "trace": None,
        "state": new_state.as_dict(),
        "cap_exceeded": engine.cap_exceeded,
        "delta": {
            "rows_added": delta_table.n_rows,
            "rows_total": engine.n_rows,
            "groups": len(engine.groups()),
            "untouched_groups": untouched,
        },
    }


# ----------------------------------------------------------------------
# The transport-free service core
# ----------------------------------------------------------------------

#: fields a request's ``privacy`` block may carry
PRIVACY_FIELDS = ("sensitive", "l", "t", "epsilon")


def normalize_privacy(privacy: Any, degree: int) -> dict[str, Any]:
    """Validate and canonicalize a request's ``privacy`` block.

    Returns a canonical dict (``sensitive`` resolved to a non-negative
    column index, ``t``/``epsilon`` as floats) whose form is identical
    on the server and the shard router — both feed it into
    :func:`~repro.artifacts.instance_key`, and routing is only correct
    if they key identically.  Raises :class:`ServiceError` (code
    ``bad-request``) on malformed blocks.
    """
    if not isinstance(privacy, dict):
        raise ServiceError(
            "bad-request", "'privacy' must be a JSON object"
        )
    unknown = sorted(set(privacy) - set(PRIVACY_FIELDS))
    if unknown:
        raise ServiceError(
            "bad-request",
            f"unknown privacy fields {unknown}; "
            f"expected a subset of {list(PRIVACY_FIELDS)}",
        )
    normalized: dict[str, Any] = {}
    l = privacy.get("l")  # noqa: E741 - the literature's name
    if l is not None:
        if not isinstance(l, int) or isinstance(l, bool) or l < 2:
            raise ServiceError(
                "bad-request", "privacy 'l' must be an integer >= 2"
            )
        normalized["l"] = l
    t = privacy.get("t")
    if t is not None:
        if l is not None:
            raise ServiceError(
                "bad-request",
                "choose one of privacy 'l' (l-diversity) or 't' "
                "(t-closeness), not both",
            )
        if (isinstance(t, bool) or not isinstance(t, (int, float))
                or not 0.0 <= float(t) <= 1.0):
            raise ServiceError(
                "bad-request", "privacy 't' must be a number in [0, 1]"
            )
        normalized["t"] = float(t)
    epsilon = privacy.get("epsilon")
    if epsilon is not None:
        if (isinstance(epsilon, bool)
                or not isinstance(epsilon, (int, float))
                or float(epsilon) <= 0):
            raise ServiceError(
                "bad-request",
                "privacy 'epsilon' must be a positive number",
            )
        normalized["epsilon"] = float(epsilon)
    if not normalized:
        raise ServiceError(
            "bad-request",
            "privacy block needs at least one of 'l', 't', or 'epsilon'",
        )
    sensitive = privacy.get("sensitive")
    if sensitive is None:
        # l-diversity/t-closeness need a sensitive column; default to
        # the CSV convention (last column).  ε-only requests noise the
        # whole released table's class counts — no split needed.
        if "l" in normalized or "t" in normalized:
            sensitive = degree - 1
    if sensitive is not None:
        if not isinstance(sensitive, int) or isinstance(sensitive, bool):
            raise ServiceError(
                "bad-request",
                "privacy 'sensitive' must be an integer column index",
            )
        index = sensitive + degree if sensitive < 0 else sensitive
        if not 0 <= index < degree:
            raise ServiceError(
                "bad-request",
                f"privacy 'sensitive' column {sensitive} out of range "
                f"for a table of degree {degree}",
            )
        if degree < 2:
            raise ServiceError(
                "bad-request",
                "a privacy split needs at least one quasi-identifier "
                "plus the sensitive column",
            )
        normalized["sensitive"] = index
    return normalized


@dataclass
class _Job:
    """One admitted anonymize/delta request waiting for its batch."""

    key: str
    task: "_SolveTask | _DeltaTask"
    budget: TimeBudget
    future: asyncio.Future = field(repr=False)
    op: str = "anonymize"
    #: where this job's continuation snapshot lives (incremental only)
    state_key: str | None = None
    #: planner decision echoed on the response (``algorithm: "auto"``
    #: requests only); the cache entry itself stays plan-free so auto
    #: and explicit requests share it byte-for-byte
    plan: dict | None = None
    #: ε to charge the privacy accountant when this job actually
    #: dispatches (None: not a DP request), and the dataset (table
    #: hash) the charge books against
    epsilon: float | None = None
    dataset: str | None = None


class AnonymizationService:
    """Validation, admission control, caching, coalescing, batching.

    :param cache: solution cache (a default in-memory one if omitted);
        ``max_entries`` / ``cache_dir`` configure the default.
    :param jobs: worker processes per dispatched batch (1 = solve
        in-line on the dispatcher thread).
    :param max_batch: most jobs dispatched per batch.
    :param batch_window: seconds the dispatcher waits to coalesce
        concurrent arrivals into one batch (0 disables the wait).
    :param backend: distance backend for all solves (default: the
        process default, i.e. ``REPRO_BACKEND``).
    :param default_timeout: budget applied to requests that send none.
    :param max_timeout: admission cap — requests asking for more are
        rejected up front rather than allowed to occupy workers.
    :param persistent_pool: with ``jobs > 1``, own one
        :class:`~repro.experiments.WorkerPool` across batches (the
        default) instead of spawning a throwaway executor per batch.
        A worker crash fails only its batch (code ``internal``); the
        pool rebuilds for the next one.
    :param max_tasks_per_child: recycle the persistent pool's workers
        after roughly this many tasks each (``None``: never).
    :param fault_injection: honour per-request ``fault`` fields
        (``kill-worker``, ``delay:SECONDS``, ``drop-connection``) —
        chaos-testing only, never enable in production.  ``None`` reads
        the ``REPRO_SERVICE_FAULTS`` environment variable.
    :param privacy_budget: per-dataset ε ceiling for the service-owned
        :class:`~repro.privacy.dp.PrivacyAccountant`; ``None`` tracks
        spends without enforcing a limit.
    """

    def __init__(
        self,
        cache: SolutionCache | None = None,
        *,
        max_entries: int = 256,
        cache_dir: str | None = None,
        jobs: int = 1,
        max_batch: int = 16,
        batch_window: float = 0.005,
        backend: str | None = None,
        default_timeout: float | None = None,
        max_timeout: float | None = None,
        persistent_pool: bool = True,
        max_tasks_per_child: int | None = None,
        fault_injection: bool | None = None,
        privacy_budget: float | None = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be a positive integer")
        if max_batch < 1:
            raise ValueError("max_batch must be a positive integer")
        self.cache = cache if cache is not None else SolutionCache(
            max_entries=max_entries, directory=cache_dir,
        )
        self.jobs = jobs
        self.max_batch = max_batch
        self.batch_window = batch_window
        self.backend = backend or default_backend_name()
        self.default_timeout = default_timeout
        self.max_timeout = max_timeout
        if fault_injection is None:
            fault_injection = (
                os.environ.get(FAULTS_ENV, "").strip().lower() in _TRUTHY
            )
        self.fault_injection = bool(fault_injection)
        self.accountant = PrivacyAccountant(privacy_budget)
        self._pool = (
            WorkerPool(jobs, max_tasks_per_child=max_tasks_per_child)
            if persistent_pool and jobs > 1 else None
        )
        self.started_at = time.time()
        self.requests: dict[str, int] = {}
        self.coalesced = 0
        self.rejected = 0
        self.planned = 0
        self.batches: list[int] = []
        self.traces: list[dict[str, Any]] = []
        #: distinct instance keys this process actually solved (misses
        #: and bypasses — never hits or coalesced followers); the shard
        #: router's no-duplicate-solves guarantee is audited fleet-wide
        #: by summing this over shards and comparing to unique instances
        self._solved_keys: set[str] = set()
        self._inflight: dict[str, asyncio.Future] = {}
        self._queue: asyncio.Queue[_Job] | None = None
        self._dispatcher: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Start the batch dispatcher (idempotent)."""
        if self._dispatcher is None:
            self._queue = asyncio.Queue()
            self._dispatcher = asyncio.ensure_future(self._dispatch_loop())

    async def stop(self) -> None:
        """Stop the dispatcher; queued jobs are failed, not abandoned."""
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._queue is not None:
            while not self._queue.empty():
                job = self._queue.get_nowait()
                if not job.future.done():
                    job.future.set_exception(
                        ServiceError("internal", "service shut down")
                    )
            self._queue = None
        if self._pool is not None:
            # workers are shut down but the pool object stays: a
            # restarted service (start() is idempotent) respawns lazily
            await asyncio.to_thread(self._pool.close)

    # -- request handling ----------------------------------------------

    async def handle(self, request: Any) -> dict[str, Any]:
        """Serve one request object; never raises on bad input.

        Protocol v2: a request-supplied ``id`` is echoed verbatim on
        the response, success or error, so clients can correlate
        responses with requests across timeouts.  v1 requests (no
        ``id``) get exactly the v1 response shape.
        """
        if not isinstance(request, dict):
            return _error("bad-request", "request must be a JSON object")
        op = request.get("op", "anonymize")
        self.requests[op] = self.requests.get(op, 0) + 1
        try:
            response = await self._handle_op(op, request)
        except ServiceError as exc:
            self.rejected += 1
            response = _error(exc.code, str(exc))
        if "id" in request:
            response["id"] = request["id"]
        return response

    async def _handle_op(self, op: str, request: dict) -> dict[str, Any]:
        self._check_fault(request)
        if op == "anonymize":
            return await self._handle_anonymize(request)
        if op == "delta":
            return await self._handle_delta(request)
        if op == "stats":
            return {"ok": True, "op": "stats", **self.stats()}
        if op == "ping":
            return {"ok": True, "op": "ping",
                    "protocol": PROTOCOL_VERSION}
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        raise ServiceError("bad-request", f"unknown op {op!r}")

    # -- fault injection (chaos testing) -------------------------------

    def _check_fault(self, request: dict) -> None:
        """Reject ``fault`` fields unless injection is switched on."""
        fault = request.get("fault")
        if fault is None:
            return
        if not self.fault_injection:
            raise ServiceError(
                "bad-request",
                "fault injection is not enabled on this server "
                "(start it with --inject-faults / fault_injection=True)",
            )
        self._parse_fault(fault)  # validates; raises on unknown kinds

    @staticmethod
    def _parse_fault(fault: Any) -> tuple[str, float | None]:
        if fault == "kill-worker":
            return ("kill-worker", None)
        if fault == "drop-connection":
            return ("drop-connection", None)
        if isinstance(fault, str) and fault.startswith("delay:"):
            try:
                seconds = float(fault.split(":", 1)[1])
            except ValueError:
                seconds = -1.0
            if seconds >= 0:
                return ("delay", seconds)
        raise ServiceError(
            "bad-request",
            f"unknown fault {fault!r}; expected kill-worker, "
            "delay:SECONDS, or drop-connection",
        )

    def connection_fault(self, request: Any) -> tuple[str, float | None] | None:
        """The connection-level fault a request asks for, if any.

        Consulted by the TCP front end *after* the response is built:
        ``("delay", seconds)`` postpones the write, ``("drop-connection",
        None)`` closes without answering.  Quietly ``None`` whenever
        injection is off or the field is absent/invalid (the request
        handler has already rejected those).
        """
        if not self.fault_injection or not isinstance(request, dict):
            return None
        fault = request.get("fault")
        if fault is None:
            return None
        try:
            kind, seconds = self._parse_fault(fault)
        except ServiceError:
            return None
        if kind in ("delay", "drop-connection"):
            return (kind, seconds)
        return None

    async def _handle_anonymize(self, request: dict) -> dict[str, Any]:
        return await self._run_job(self._admit(request), request)

    async def _handle_delta(self, request: dict) -> dict[str, Any]:
        return await self._run_job(self._admit_delta(request), request)

    async def _run_job(self, job: _Job, request: dict) -> dict[str, Any]:
        """Cache-check, coalesce, or queue one admitted job.

        Shared by ``anonymize`` and ``delta``: a delta job is keyed by
        the **grown** table's instance key, so an identical delta — or
        a from-scratch solve of the same full table — hits and
        coalesces against it exactly like any repeated instance.
        """
        use_cache = bool(request.get("use_cache", True))
        if job.task.fault is not None:
            # a fault-injected request must reach the solver to matter
            use_cache = False

        if use_cache:
            cached = self.cache.get(job.key)
            if cached is not None:
                response = _solution(cached, cache="hit", op=job.op)
                if job.state_key is not None and job.state_key in self.cache:
                    response["state_key"] = job.state_key
                if job.plan is not None:
                    response["plan"] = job.plan
                return response
            inflight = self._inflight.get(job.key)
            if inflight is not None:
                # identical instance already being solved: wait for it
                # — but only within THIS request's remaining budget,
                # not the leader's (which may be unlimited)
                self.coalesced += 1
                try:
                    outcome = await asyncio.wait_for(
                        asyncio.shield(inflight), job.budget.remaining()
                    )
                except asyncio.TimeoutError:
                    raise ServiceError(
                        "budget-exceeded",
                        f"request spent its {job.budget.seconds:g}s "
                        "budget waiting on an identical in-flight solve",
                    ) from None
                return self._finish(job, dict(outcome), cache="coalesced")

        if job.epsilon is not None:
            # a queued solve is a *fresh* ε-release: charge it now (the
            # charge is refunded if the solve errors out).  Cache hits
            # and coalesced followers re-release byte-identical noise
            # (the DP seed is the instance key), so they cost nothing.
            assert job.dataset is not None
            try:
                self.accountant.charge(job.dataset, job.epsilon)
            except BudgetExhaustedError as exc:
                raise ServiceError(
                    "privacy-budget-exhausted", str(exc)
                ) from None

        await self.start()
        assert self._queue is not None
        if use_cache:
            self._inflight[job.key] = job.future
        self._queue.put_nowait(job)
        try:
            outcome = await job.future
        finally:
            if self._inflight.get(job.key) is job.future:
                del self._inflight[job.key]
        return self._finish(
            job, dict(outcome), cache="miss" if use_cache else "bypass"
        )

    def _admit(self, request: dict) -> _Job:
        """Validate one anonymize request; raises :class:`ServiceError`.

        The budget is armed *here*: queueing delay counts against the
        request, and the dispatcher drops jobs whose budget expired
        before they reached a worker.
        """
        csv = request.get("csv")
        if not isinstance(csv, str) or not csv.strip():
            raise ServiceError(
                "bad-request", "anonymize needs a non-empty 'csv' string"
            )
        k = request.get("k")
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ServiceError(
                "bad-request", "'k' must be a positive integer"
            )
        timeout = self._admitted_timeout(request)
        header = bool(request.get("header", True))
        try:
            table = Table.from_csv(csv, header=header)
        except ValueError as exc:
            raise ServiceError("bad-request", f"bad csv: {exc}") from None
        name = request.get("algorithm", "center_cover")
        plan_dict = None
        if name == "auto":
            # resolve through the planner at admission: the job is
            # keyed (and cached) under the *resolved* algorithm, so an
            # explicit request for the same solver shares the entry
            from repro.planner import plan as plan_instance

            decision = plan_instance(table, k, budget=timeout)
            algorithm = decision.algorithm
            plan_dict = decision.to_dict()
            self.planned += 1
        else:
            try:
                algorithm = registry.get(name).name
            except KeyError:
                raise ServiceError(
                    "unknown-algorithm",
                    f"unknown algorithm {name!r}; see `kanon algorithms`",
                ) from None
        capture_state = algorithm == "incremental"
        privacy = None
        if request.get("privacy") is not None:
            privacy = normalize_privacy(request["privacy"], table.degree)
            if capture_state:
                raise ServiceError(
                    "bad-request",
                    "the 'privacy' block is not supported with the "
                    "incremental streaming algorithm",
                )
        key = instance_key(
            table, k, algorithm, self.backend, privacy=privacy
        )
        task = _SolveTask(
            csv=csv, header=header, k=k, algorithm=algorithm,
            backend=self.backend, timeout=timeout,
            trace=bool(request.get("trace", False)),
            fault=self._admitted_fault(request),
            capture_state=capture_state,
            privacy=(
                tuple(sorted(privacy.items()))
                if privacy is not None else None
            ),
            # seed the DP noise by the instance key: deterministic per
            # keyed instance, different across k/algorithm/privacy
            dp_seed=(
                int(key[:16], 16)
                if privacy is not None and "epsilon" in privacy else None
            ),
        )
        return _Job(
            key=key,
            task=task,
            budget=TimeBudget(timeout).start(),
            future=asyncio.get_running_loop().create_future(),
            state_key=(
                state_key(table, k, algorithm, self.backend)
                if capture_state else None
            ),
            plan=plan_dict,
            epsilon=(
                privacy.get("epsilon") if privacy is not None else None
            ),
            dataset=(
                table_hash(table)
                if privacy is not None and "epsilon" in privacy else None
            ),
        )

    def _admit_delta(self, request: dict) -> _Job:
        """Validate one delta request against its stored stream state.

        The job is keyed by the **grown** table's instance key (stored
        prefix rows + delta rows) and carries the grown table's
        ``state_key`` — the same keys a cold ``anonymize`` of the full
        table would use, so chains compose and repeated deltas hit.
        """
        key = request.get("state_key")
        if not is_cache_key(key):
            raise ServiceError(
                "bad-request",
                "delta needs a 'state_key' hex-digest string (the one a "
                "previous incremental solve returned)",
            )
        csv = request.get("csv")
        if not isinstance(csv, str) or not csv.strip():
            raise ServiceError(
                "bad-request", "delta needs a non-empty 'csv' string"
            )
        entry = self.cache.get(key)
        if entry is None:
            raise ServiceError(
                "unknown-state",
                f"no incremental state stored under {key!r} — solve the "
                "full table with algorithm 'incremental' first, or the "
                "state was evicted from a memory-only cache",
            )
        try:
            state = IncrementalState.from_dict(entry["state"])
            stored_backend = str(entry["backend"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                "unknown-state",
                f"state stored under {key!r} is unusable: {exc}",
            ) from None
        if stored_backend != self.backend:
            raise ServiceError(
                "unknown-state",
                f"state under {key!r} was computed under backend "
                f"{stored_backend!r}; this server runs {self.backend!r}",
            )
        k = request.get("k", state.k)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ServiceError(
                "bad-request", "'k' must be a positive integer"
            )
        if k != state.k:
            raise ServiceError(
                "bad-request",
                f"delta k={k} does not match the stored stream's "
                f"k={state.k} — changing k means re-solving from scratch",
            )
        timeout = self._admitted_timeout(request)
        header = bool(request.get("header", True))
        try:
            delta_table = Table.from_csv(csv, header=header)
        except ValueError as exc:
            raise ServiceError("bad-request", f"bad csv: {exc}") from None
        if delta_table.n_rows == 0:
            raise ServiceError(
                "bad-request", "delta carries no rows (header-only csv)"
            )
        if delta_table.degree != state.degree:
            raise ServiceError(
                "bad-request",
                f"delta rows have degree {delta_table.degree}; the "
                f"stream expects {state.degree}",
            )
        if (
            header
            and state.attributes is not None
            and delta_table.attributes != state.attributes
        ):
            raise ServiceError(
                "bad-request",
                f"delta attributes {delta_table.attributes!r} do not "
                f"match the stream's {state.attributes!r}",
            )
        full = Table(
            state.rows + delta_table.rows, attributes=state.attributes
        )
        task = _DeltaTask(
            state=entry["state"], csv=csv, header=header, k=k,
            backend=self.backend, timeout=timeout,
            trace=bool(request.get("trace", False)),
            fault=self._admitted_fault(request),
        )
        return _Job(
            key=instance_key(full, k, "incremental", self.backend),
            task=task,
            budget=TimeBudget(timeout).start(),
            future=asyncio.get_running_loop().create_future(),
            op="delta",
            state_key=state_key(full, k, "incremental", self.backend),
        )

    def _admitted_timeout(self, request: dict) -> float | None:
        """The request's validated budget, under the server cap."""
        timeout = request.get("timeout", self.default_timeout)
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise ServiceError(
                    "bad-request", "'timeout' must be a number of seconds"
                ) from None
            if timeout < 0:
                raise ServiceError(
                    "bad-request", "'timeout' cannot be negative"
                )
            if self.max_timeout is not None and timeout > self.max_timeout:
                raise ServiceError(
                    "bad-request",
                    f"timeout {timeout:g}s exceeds the server cap of "
                    f"{self.max_timeout:g}s",
                )
        elif self.max_timeout is not None:
            timeout = self.max_timeout
        return timeout

    def _admitted_fault(self, request: dict) -> str | None:
        """The worker-level fault marker, when injection is enabled."""
        fault = request.get("fault")
        return "kill-worker" if (
            self.fault_injection and fault == "kill-worker"
        ) else None

    def _finish(
        self, job: _Job, outcome: dict[str, Any], cache: str
    ) -> dict[str, Any]:
        """Turn a solver outcome into a response; cache and trace it.

        Incremental solves carry a continuation snapshot in
        ``outcome["state"]``; it is stored as its own cache entry under
        ``job.state_key`` (never inside the solution entry — solutions
        stay byte-compatible with pre-delta cache files) and the
        response advertises that key.  Per-request delta dispositions
        (``outcome["delta"]``) are answered but never cached: they
        describe the request's delta, not the instance.
        """
        if "error" in outcome:
            self.rejected += 1
            if job.epsilon is not None and cache in ("miss", "bypass"):
                # nothing was released: give the ε back (followers that
                # coalesced on this failure never charged)
                self.accountant.refund(job.dataset or "", job.epsilon)
            return _error(outcome["code"], outcome["error"])
        if cache in ("miss", "bypass"):
            self._solved_keys.add(job.key)
        trace = outcome.pop("trace", None)
        if trace is not None and cache in ("miss", "bypass"):
            # one solve, one recorded trace — coalesced followers share
            # the leader's solve and must not re-append its trace
            self.traces.append(trace)
        state = outcome.pop("state", None)
        delta_info = outcome.pop("delta", None)
        if cache == "miss" and not outcome.get("deadline_hit"):
            # deadline-degraded releases reflect the budget, not the
            # instance — never let them answer future requests
            if state is not None and job.state_key is not None:
                self.cache.put(job.state_key, {
                    "state": state,
                    "k": job.task.k,
                    "algorithm": "incremental",
                    "backend": job.task.backend,
                })
            self.cache.put(job.key, outcome)
        response = _solution(outcome, cache=cache, op=job.op)
        if (
            job.state_key is not None
            and state is not None
            and cache in ("miss", "coalesced")
            and not outcome.get("deadline_hit")
        ):
            # never advertised on a bypass: nothing was stored, so the
            # key would dangle (chains need the cache by construction)
            response["state_key"] = job.state_key
        if delta_info is not None:
            response["delta"] = delta_info
        if trace is not None:
            response["trace"] = trace
        if job.plan is not None:
            response["plan"] = job.plan
        return response

    # -- the batch dispatcher ------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            batch = [await self._queue.get()]
            deadline = time.monotonic() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0 and self._queue.empty():
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(
                            self._queue.get(), max(0.0, remaining)
                        )
                    )
                except asyncio.TimeoutError:
                    break
            await self._run_batch(batch)

    async def _run_batch(self, batch: list[_Job]) -> None:
        """Dispatch one batch to the trial executor (in a thread)."""
        ready: list[_Job] = []
        for job in batch:
            if job.future.done():
                continue  # caller went away (connection dropped)
            if job.budget.expired():
                # admission control: the budget ran out in the queue
                job.future.set_result({
                    "error": (
                        f"request spent its {job.budget.seconds:g}s "
                        f"budget queued before dispatch"
                    ),
                    "code": "budget-exceeded",
                })
                continue
            ready.append(job)
        if not ready:
            return
        self.batches.append(len(ready))
        keys, tasks = self._merge_jobs(ready)
        try:
            outcomes = await asyncio.to_thread(
                run_tasks, _solve_task, tasks,
                min(self.jobs, len(keys)), pool=self._pool,
            )
        except Exception as exc:  # noqa: BLE001 - executor boundary
            for job in ready:
                if not job.future.done():
                    job.future.set_exception(
                        ServiceError("internal", str(exc))
                    )
            return
        by_key = dict(zip(keys, outcomes))
        for job in ready:
            if not job.future.done():
                job.future.set_result(by_key[job.key])

    @staticmethod
    def _merge_jobs(
        ready: list[_Job],
    ) -> tuple[list[str], list["_SolveTask | _DeltaTask"]]:
        """Deduplicate a batch by instance key, one task per key.

        Key-sharers solve once, under the **loosest** budget in the
        group — unlimited if any sharer is unlimited, else the largest
        remaining allowance.  (Solving under the first arrival's budget
        would let a stranger's tight deadline fail, or
        deadline-degrade, everyone else's identical request.)  Tracing
        and fault markers are likewise merged with "any sharer asked"
        semantics.  The merge is shape-preserving (``dataclasses.
        replace``), so anonymize and delta tasks both pass through —
        and since a delta job is keyed by its *grown* table, a delta
        can share a key with a cold solve of the same full table, in
        which case the first arrival's task shape wins (both produce
        the same release, by replay equivalence).
        """
        groups: dict[str, list[_Job]] = {}
        for job in ready:
            groups.setdefault(job.key, []).append(job)
        keys = list(groups)
        tasks: list[_SolveTask | _DeltaTask] = []
        for key in keys:
            sharers = groups[key]
            base = sharers[0].task
            if any(not job.budget.limited for job in sharers):
                timeout = None
            else:
                timeout = max(job.budget.remaining() for job in sharers)
            tasks.append(replace(
                base,
                timeout=timeout,
                trace=any(job.task.trace for job in sharers),
                fault=next(
                    (job.task.fault for job in sharers if job.task.fault),
                    None,
                ),
            ))
        return keys, tasks

    # -- introspection -------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Counters for the ``stats`` endpoint (JSON-ready)."""
        sizes = self.batches
        return {
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.time() - self.started_at,
            "backend": self.backend,
            "jobs": self.jobs,
            "max_batch": self.max_batch,
            "batch_window": self.batch_window,
            "requests": dict(self.requests),
            "rejected": self.rejected,
            "coalesced": self.coalesced,
            "planned": self.planned,
            "solved_instances": len(self._solved_keys),
            "cache": self.cache.as_dict(),
            "privacy": self.accountant.as_dict(),
            "batches": {
                "count": len(sizes),
                "max_size": max(sizes) if sizes else 0,
                "mean_size": sum(sizes) / len(sizes) if sizes else 0.0,
            },
            "pool": self._pool.stats() if self._pool is not None else {
                "mode": "per-batch" if self.jobs > 1 else "inline",
                "workers": self.jobs,
            },
            "traces": summarize_traces(self.traces),
        }


def _error(code: str, message: str) -> dict[str, Any]:
    return {"ok": False, "code": code, "error": message}


def _solution(
    outcome: dict[str, Any], cache: str, op: str = "anonymize"
) -> dict[str, Any]:
    response = {
        "ok": True,
        "op": op,
        "cache": cache,
        "csv": outcome["csv"],
        "stars": outcome["stars"],
        "algorithm": outcome["algorithm"],
        "k": outcome["k"],
        "backend": outcome["backend"],
        "deadline_hit": outcome.get("deadline_hit", False),
        "solve_seconds": outcome.get("solve_seconds"),
    }
    if "cap_exceeded" in outcome:
        response["cap_exceeded"] = outcome["cap_exceeded"]
    for extra in ("privacy", "dp"):
        if extra in outcome:
            response[extra] = outcome[extra]
    return response


# ----------------------------------------------------------------------
# The TCP front end (newline-delimited JSON)
# ----------------------------------------------------------------------

#: refuse request lines beyond this size (64 MiB) instead of buffering
#: unbounded input from one connection
MAX_LINE_BYTES = 64 * 1024 * 1024


async def _handle_connection(
    service: AnonymizationService,
    stop: asyncio.Event,
    connections: set,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    connections.add(writer)
    try:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionResetError, ValueError):
                break  # reset, or a request line beyond MAX_LINE_BYTES
            if not line:
                break
            if not line.strip():
                continue
            request: Any = None
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                response = _error("bad-request", f"bad JSON: {exc}")
            else:
                response = await service.handle(request)
            fault = service.connection_fault(request)
            if fault is not None:
                kind, seconds = fault
                if kind == "drop-connection":
                    break  # hang up without answering (chaos testing)
                if kind == "delay" and seconds:
                    await asyncio.sleep(seconds)
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()
            if (
                isinstance(request, dict)
                and request.get("op") == "shutdown"
                and response.get("ok")
            ):
                stop.set()
                break
    except asyncio.CancelledError:
        pass  # server teardown closed this connection mid-read
    finally:
        connections.discard(writer)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def serve_async(
    service: AnonymizationService | None = None,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    ready: "threading.Event | None" = None,
    bound: list | None = None,
    log=None,
    **service_options: Any,
) -> None:
    """Run the TCP server until a ``shutdown`` request arrives.

    ``ready`` / ``bound`` let an embedding thread learn the bound
    address (pass ``port=0`` for an ephemeral port); *log* is a text
    stream for one-line startup/shutdown notices.
    """
    service = service or AnonymizationService(**service_options)
    stop = asyncio.Event()
    connections: set = set()
    await service.start()
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(service, stop, connections, r, w),
        host, port, limit=MAX_LINE_BYTES,
    )
    address = server.sockets[0].getsockname()[:2]
    if bound is not None:
        bound.extend(address)
    if ready is not None:
        ready.set()
    if log is not None:
        print(
            f"kanon service listening on {address[0]}:{address[1]} "
            f"(backend={service.backend}, jobs={service.jobs}, "
            f"cache={service.cache.max_entries} entries)",
            file=log, flush=True,
        )
    async with server:
        await stop.wait()
        # drop lingering idle connections so their reader tasks end
        # cleanly before the loop is torn down
        for open_writer in list(connections):
            open_writer.close()
        await asyncio.sleep(0)
    await service.stop()
    if log is not None:
        print("kanon service stopped", file=log, flush=True)


def serve(
    service: AnonymizationService | None = None,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    **options: Any,
) -> None:
    """Blocking entry point: serve until shut down (``kanon serve``)."""
    asyncio.run(serve_async(service, host, port, **options))


class ServiceServer:
    """An in-process server on a background thread (tests, notebooks).

    >>> from repro.service import ServiceClient, ServiceServer
    >>> server = ServiceServer()
    >>> host, port = server.start()
    >>> client = ServiceClient(host, port)
    >>> client.ping()["ok"]
    True
    >>> server.stop()
    """

    def __init__(
        self,
        service: AnonymizationService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service or AnonymizationService()
        self._host = host
        self._port = port
        self._thread: threading.Thread | None = None
        self.address: tuple[str, int] | None = None

    def start(self, timeout: float = 10.0) -> tuple[str, int]:
        """Start serving; returns the bound ``(host, port)``."""
        if self._thread is not None:
            assert self.address is not None
            return self.address
        ready = threading.Event()
        bound: list = []
        self._thread = threading.Thread(
            target=serve,
            args=(self.service, self._host, self._port),
            kwargs={"ready": ready, "bound": bound},
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("service thread failed to start")
        self.address = (bound[0], bound[1])
        return self.address

    def stop(self, timeout: float = 10.0) -> None:
        """Request shutdown over the wire and join the thread."""
        if self._thread is None:
            return
        from repro.service.client import ServiceClient

        assert self.address is not None
        try:
            ServiceClient(*self.address).shutdown()
        except OSError:
            pass  # already gone
        self._thread.join(timeout)
        self._thread = None
        self.address = None

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
