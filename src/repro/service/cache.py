"""Two-tier solution cache for the anonymization service.

Optimal k-anonymity is NP-hard and even the approximation algorithms are
super-linear, so the cheapest request a production service can serve is
one it has already solved.  :class:`SolutionCache` keeps finished
solutions keyed by :func:`repro.artifacts.instance_key` — the content
hash of (table, k, canonical algorithm name, backend name) — in two
tiers:

* an in-memory **LRU** bounded by ``max_entries`` (evictions counted,
  never silent), and
* an optional **disk** tier (one JSON document per key under
  ``directory``) that survives restarts and absorbs memory evictions;
  a disk hit is promoted back into memory.

Cache-key semantics worth spelling out:

* Two tables differing in *any* cell, in attribute names, or in column
  order hash differently — the key is built on the full relation
  content, not a sketch.
* The distance backend is part of the key.  The backends are
  parity-tested, but a cache must never *assume* bit-identical output
  across implementations, so ``python`` and ``numpy`` entries stay
  separate even for identical tables.
* Deadline-degraded results (``extras["deadline_hit"]``) must not be
  stored: a budget-truncated release is a property of that request's
  budget, not of the instance.  The service layer enforces this; the
  cache itself stores whatever it is given.

Counters (hits / memory hits / disk hits / misses / evictions / stores /
corrupt) are live on :attr:`SolutionCache.stats` and surface through the
service's ``stats`` endpoint.

Disk-tier robustness: stores are atomic (tmp-then-rename via
:func:`repro.io.write_json`), and an entry that can't be parsed back —
a torn write from a crash predating atomicity, manual truncation, disk
corruption — is quarantined to ``<key>.json.corrupt`` and treated as a
miss, so one bad file can never poison its key or crash a lookup.

>>> cache = SolutionCache(max_entries=2)
>>> cache.put("a", {"stars": 4})
>>> cache.get("a")
{'stars': 4}
>>> cache.get("b") is None
True
>>> cache.stats.as_dict()["hits"], cache.stats.as_dict()["misses"]
(1, 1)
"""

from __future__ import annotations

import re
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.io import read_json, write_json

#: keys are hex digests from :func:`repro.artifacts.instance_key` /
#: :func:`repro.artifacts.state_key`; the disk tier refuses anything
#: else so cache files can never escape the cache directory or collide
#: with its bookkeeping.
_KEY_RE = re.compile(r"^[0-9a-f]{8,64}$")


def is_cache_key(key: object) -> bool:
    """True iff *key* is a well-formed instance/state-key digest.

    The service uses this to reject malformed client-supplied keys
    (``delta`` requests carry one) *before* they reach the disk tier,
    which would raise on them.
    """
    return isinstance(key, str) and bool(_KEY_RE.match(key))


@dataclass
class CacheStats:
    """Live hit/miss/eviction counters for one :class:`SolutionCache`.

    ``hits`` is the total (memory + disk); ``evictions`` counts entries
    pushed out of the memory LRU (they remain on disk when a disk tier
    is configured).
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    #: unreadable disk entries quarantined and served as misses
    corrupt: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready counter snapshot (what ``stats`` endpoints emit)."""
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "hit_rate": self.hit_rate,
        }


@dataclass
class SolutionCache:
    """In-memory LRU with an optional on-disk second tier.

    :param max_entries: memory-tier capacity; least-recently-used
        entries are evicted (and counted) beyond it.
    :param directory: disk-tier location (one ``<key>.json`` per entry);
        ``None`` disables the disk tier.  Created on first store.

    Values must be JSON-serializable dicts — they round-trip through the
    disk tier and over the service's wire protocol.
    """

    max_entries: int = 256
    directory: str | Path | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _memory: OrderedDict[str, dict[str, Any]] = field(
        default_factory=OrderedDict
    )

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("max_entries must be a positive integer")
        if self.directory is not None:
            self.directory = Path(self.directory)

    # ------------------------------------------------------------------

    def _disk_path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        if not _KEY_RE.match(key):
            raise ValueError(
                f"cache key {key!r} is not an instance-key digest"
            )
        return Path(self.directory) / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached solution for *key*, or ``None`` on a miss.

        Memory first, then disk; a disk hit is promoted into the memory
        LRU so repeated traffic stays off the filesystem.  An
        unreadable disk entry (torn write, truncation, wrong shape) is
        **quarantined and counted as a miss** — a bad file must never
        poison its key, let alone crash the caller.
        """
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return entry
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                entry = read_json(path)
                if not isinstance(entry, dict):
                    raise ValueError(
                        f"cache entry is {type(entry).__name__}, "
                        "not a JSON object"
                    )
            except (ValueError, OSError):
                # json.JSONDecodeError and UnicodeDecodeError are both
                # ValueError subclasses; OSError covers vanished files
                self._quarantine(path)
                self.stats.corrupt += 1
                self.stats.misses += 1
                return None
            self.stats.disk_hits += 1
            self._admit(key, entry)
            return entry
        self.stats.misses += 1
        return None

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a bad entry aside (``<key>.json.corrupt``) or drop it."""
        try:
            path.replace(path.with_name(path.name + ".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass  # racing unlink/rename: the entry is gone either way

    def put(self, key: str, value: dict[str, Any]) -> None:
        """Store a solution under *key* in both tiers.

        The disk write is atomic (tmp-then-rename), so a crash mid-put
        leaves the previous entry — or nothing — never a torn file.
        """
        path = self._disk_path(key)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            write_json(path, value, atomic=True)
        self._admit(key, value)
        self.stats.stores += 1

    def _admit(self, key: str, value: dict[str, Any]) -> None:
        """Insert into the memory LRU, evicting beyond capacity."""
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def __contains__(self, key: str) -> bool:
        """Membership probe across both tiers, agreeing with :meth:`get`.

        A disk entry only counts as present when it would actually be
        *served*: an unreadable file (torn write, truncation, wrong
        shape) is quarantined on the spot — exactly as ``get`` would —
        and reported absent, so ``key in cache`` can never promise an
        entry that ``get`` would then refuse.  The probe never touches
        the hit/miss counters (``corrupt`` is bumped when a bad entry is
        found, since the quarantine really happened).
        """
        if key in self._memory:
            return True
        path = self._disk_path(key)
        if path is None or not path.exists():
            return False
        try:
            entry = read_json(path)
            if not isinstance(entry, dict):
                raise ValueError(
                    f"cache entry is {type(entry).__name__}, "
                    "not a JSON object"
                )
        except (ValueError, OSError):
            self._quarantine(path)
            self.stats.corrupt += 1
            return False
        return True

    def __len__(self) -> int:
        """Entries currently resident in the memory tier."""
        return len(self._memory)

    def clear(self) -> None:
        """Drop the memory tier (disk entries, if any, are kept)."""
        self._memory.clear()

    def as_dict(self) -> dict[str, Any]:
        """Stats plus configuration — the ``stats`` endpoint's view."""
        return {
            **self.stats.as_dict(),
            "entries": len(self._memory),
            "max_entries": self.max_entries,
            "disk": str(self.directory) if self.directory else None,
        }

    def __repr__(self) -> str:
        tier = f", disk={str(self.directory)!r}" if self.directory else ""
        return (
            f"SolutionCache(entries={len(self._memory)}/"
            f"{self.max_entries}{tier})"
        )
