"""Consistent-hash shard router: one front door over many shards.

One ``kanon serve`` process is the fleet's ceiling — its worker pool
parallelizes a batch, but its solution cache, its admission queue, and
its event loop all live in one process.  ``kanon route`` scales the
service *horizontally*: N independent ``kanon serve`` shards sit behind
a thin asyncio router that speaks the same protocol-v2 JSON-lines
dialect to clients and consistent-hashes every job onto the shard that
owns it, so each shard holds a disjoint slice of the solution cache and
**no instance is ever solved twice across the fleet**.

Routing keys (:meth:`ShardRouter.routing_key`):

* ``anonymize`` routes on :func:`repro.artifacts.instance_key` over the
  parsed table, ``k``, the *resolved* algorithm (aliases canonicalized
  through the registry, ``auto`` resolved through the planner — so an
  auto request and the explicit request it resolves to land on the same
  shard and share its cache entry), and the router's backend;
* ``anonymize`` with ``algorithm: "incremental"`` routes on
  :func:`repro.artifacts.state_key` instead, placing the solve on the
  shard that must later serve ``delta`` requests against its snapshot;
* ``delta`` routes on the request's own ``state_key`` — snapshot
  affinity: the ring owner of that key is the shard that captured it.
  (See ``docs/service.md`` for the locality caveat on long chains: each
  delta's *response* carries a fresh key that may hash elsewhere, and a
  snapshot lives only on the shard that solved it, so a continuation
  landing on a different shard is answered with an honest
  ``unknown-state`` rather than a silent re-solve.)
* a request the router cannot key (malformed csv, unknown algorithm,
  missing fields) is still forwarded — to the first alive shard in
  ring order — so validation errors come from exactly one place: the
  shard's admission logic.

Fleet behaviour:

* **health checks** — a background task pings every shard each
  ``health_interval`` seconds; a failed ping evicts the shard from the
  ring (its keys flow to their next ring owners), a later successful
  ping rejoins it (the keys flow back — consistent hashing keeps both
  moves minimal);
* **per-request failover** — a connection failure while forwarding
  evicts the shard immediately and retries the next owner in the key's
  ring preference order; the response then carries ``rerouted: true``.
  Every proxied response carries ``shard: "host:port"``;
* **fan-out ops** — ``stats`` queries every alive shard concurrently
  and merges the counters (:func:`merge_shard_stats`), answering the
  single-server stats shape plus a ``router`` section and per-shard
  sections; ``shutdown`` stops **every** shard (alive or not — a dead
  one may have silently returned) and then the router itself;
* when every shard is gone, requests fail with code ``unavailable``.

The router holds no solve state of its own — routing is a pure function
of (request, ring membership), so a bounced router resumes correct
routing immediately and routers can be stacked for availability.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro import registry
from repro.artifacts import instance_key, state_key
from repro.core.backend import default_backend_name
from repro.core.table import Table
from repro.instrument import Counters
from repro.service.cache import is_cache_key
from repro.service.hashring import DEFAULT_VNODES, HashRing
from repro.service.server import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    _error,
)

#: default router TCP port (one below a shard's default 7683 family)
DEFAULT_ROUTER_PORT = 7690


def parse_address(address: "str | tuple[str, int]") -> tuple[str, int]:
    """Normalize ``"host:port"`` / ``(host, port)`` into ``(host, port)``.

    >>> parse_address("127.0.0.1:7683")
    ('127.0.0.1', 7683)
    >>> parse_address(("localhost", 7684))
    ('localhost', 7684)
    """
    if isinstance(address, tuple):
        host, port = address
        return str(host), int(port)
    host, separator, port_text = address.rpartition(":")
    if not separator or not host:
        raise ValueError(
            f"shard address {address!r} is not of the form host:port"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"shard address {address!r} has a non-numeric port"
        ) from None
    return host, port


def format_address(address: "str | tuple[str, int]") -> str:
    """The canonical ``host:port`` ring-node name for *address*."""
    host, port = parse_address(address)
    return f"{host}:{port}"


@dataclass
class ShardState:
    """The router's live view of one shard."""

    address: str
    alive: bool = True
    #: consecutive failed pings / forwards since the last success
    failures: int = 0
    #: monotonic timestamp of the last completed health check
    checked_at: float | None = None

    def as_dict(self) -> dict[str, Any]:
        return {"alive": self.alive, "failures": self.failures}


def merge_shard_stats(per_shard: dict[str, dict]) -> dict[str, Any]:
    """Aggregate per-shard ``stats`` payloads into the fleet view.

    Returns the single-server stats *shape* (so every existing stats
    consumer works unchanged against a router): summed ``cache`` /
    ``requests`` / ``rejected`` / ``coalesced`` / ``planned`` /
    ``solved_instances`` counters, summed ``jobs``, batch shape with a
    size-weighted mean, the fleet-wide ``hit_rate`` recomputed from the
    summed counters, and ``backend`` collapsed when uniform (else the
    sorted comma-joined set).  The ``privacy`` ledger sums per-dataset
    ε spends across shards (sequential composition holds fleet-wide)
    and keeps ``budget`` when uniform.  Pure and transport-free on
    purpose — unit-tested in isolation.
    """
    cache_sums = ("hits", "memory_hits", "disk_hits", "misses",
                  "evictions", "stores", "corrupt", "entries",
                  "max_entries")
    merged_cache: dict[str, Any] = {name: 0 for name in cache_sums}
    requests: dict[str, int] = {}
    merged: dict[str, Any] = {
        "protocol": PROTOCOL_VERSION,
        "uptime_seconds": 0.0,
        "jobs": 0,
        "rejected": 0,
        "coalesced": 0,
        "planned": 0,
        "solved_instances": 0,
    }
    backends: set[str] = set()
    batch_count = 0
    batch_max = 0
    batch_jobs = 0.0
    privacy_budgets: set = set()
    privacy_spent: dict[str, float] = {}
    for stats in per_shard.values():
        privacy = stats.get("privacy") or {}
        privacy_budgets.add(privacy.get("budget"))
        for dataset, spent in (privacy.get("datasets") or {}).items():
            # ε spends sum across shards: each shard's ledger only saw
            # the releases it served (sequential composition fleet-wide)
            privacy_spent[dataset] = (
                privacy_spent.get(dataset, 0.0) + float(spent)
            )
        backends.add(str(stats.get("backend", "?")))
        merged["uptime_seconds"] = max(
            merged["uptime_seconds"], float(stats.get("uptime_seconds", 0.0))
        )
        merged["jobs"] += int(stats.get("jobs", 0))
        for name in ("rejected", "coalesced", "planned",
                     "solved_instances"):
            merged[name] += int(stats.get(name, 0))
        for op, count in (stats.get("requests") or {}).items():
            requests[op] = requests.get(op, 0) + int(count)
        cache = stats.get("cache") or {}
        for name in cache_sums:
            merged_cache[name] += int(cache.get(name, 0))
        batches = stats.get("batches") or {}
        count = int(batches.get("count", 0))
        batch_count += count
        batch_max = max(batch_max, int(batches.get("max_size", 0)))
        batch_jobs += count * float(batches.get("mean_size", 0.0))
    lookups = merged_cache["hits"] + merged_cache["misses"]
    merged_cache["hit_rate"] = (
        merged_cache["hits"] / lookups if lookups else 0.0
    )
    merged_cache["disk"] = None
    merged["backend"] = (
        backends.pop() if len(backends) == 1 else ",".join(sorted(backends))
    )
    merged["requests"] = requests
    merged["cache"] = merged_cache
    merged["batches"] = {
        "count": batch_count,
        "max_size": batch_max,
        "mean_size": batch_jobs / batch_count if batch_count else 0.0,
    }
    merged["privacy"] = {
        "budget": (
            privacy_budgets.pop() if len(privacy_budgets) == 1 else None
        ),
        "datasets": {
            dataset: round(spent, 12)
            for dataset, spent in sorted(privacy_spent.items())
        },
    }
    return merged


class ShardRouter:
    """The transport-free routing core (see the module docstring).

    :param shards: the fleet — ``host:port`` strings or tuples.
    :param vnodes: virtual nodes per shard on the hash ring.
    :param backend: backend name baked into routing keys; must match
        the shards' backend for router-side keys to equal shard-side
        cache keys (default: the process default, ``REPRO_BACKEND``).
    :param health_interval: seconds between background ping sweeps
        (0 disables the sweep; per-request failover still evicts).
    :param ping_timeout: budget for one health-check ping.
    :param connect_timeout: budget for opening a forward connection —
        forwards themselves are never timed out by the router (solver
        budgets belong to shard admission control).
    """

    def __init__(
        self,
        shards: Iterable[str | tuple[str, int]],
        *,
        vnodes: int = DEFAULT_VNODES,
        backend: str | None = None,
        health_interval: float = 1.0,
        ping_timeout: float = 2.0,
        connect_timeout: float = 5.0,
    ):
        addresses = [format_address(shard) for shard in shards]
        if not addresses:
            raise ValueError("a router needs at least one shard address")
        if len(set(addresses)) != len(addresses):
            raise ValueError("duplicate shard addresses")
        if health_interval < 0:
            raise ValueError("health_interval cannot be negative")
        self.ring = HashRing(addresses, vnodes=vnodes)
        self.shards = {addr: ShardState(addr) for addr in addresses}
        self.backend = backend or default_backend_name()
        self.health_interval = health_interval
        self.ping_timeout = ping_timeout
        self.connect_timeout = connect_timeout
        self.started_at = time.time()
        self.counters = Counters(
            "requests", "routed", "rerouted", "failovers", "unroutable",
            "health_checks", "evicted", "rejoined",
        )
        self._health_task: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Start the periodic health sweep (idempotent)."""
        if self._health_task is None and self.health_interval > 0:
            self._health_task = asyncio.ensure_future(self._health_loop())

    async def stop(self) -> None:
        """Stop the health sweep."""
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None

    # -- routing keys --------------------------------------------------

    def routing_key(self, request: dict) -> str | None:
        """The consistent-hash key for *request*, or ``None``.

        ``None`` means the request cannot be keyed (malformed table,
        unknown algorithm, missing fields) — the caller forwards it to
        a deterministic shard so the *shard's* admission logic produces
        the protocol error, keeping validation single-sourced.
        """
        op = request.get("op", "anonymize")
        if op == "delta":
            key = request.get("state_key")
            return key if is_cache_key(key) else None
        if op != "anonymize":
            return None
        try:
            table = Table.from_csv(
                request["csv"], header=bool(request.get("header", True))
            )
            k = request["k"]
            if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                return None
            name = request.get("algorithm", "center_cover")
            if name == "auto":
                from repro.planner import plan as plan_instance

                timeout = request.get("timeout")
                budget = float(timeout) if timeout is not None else None
                name = plan_instance(table, k, budget=budget).algorithm
            else:
                name = registry.get(name).name
            privacy = request.get("privacy")
            if privacy is not None:
                # normalize exactly as shard admission does — routing
                # is only correct if router and shard key identically
                # (a malformed block raises: unroutable, the shard's
                # admission produces the protocol error)
                from repro.service.server import normalize_privacy

                privacy = normalize_privacy(privacy, table.degree)
                if name == "incremental":
                    return None  # shards reject privacy + incremental
        except Exception:  # noqa: BLE001 - unroutable, not invalid
            return None
        if name == "incremental":
            # snapshot affinity: the shard that solves this stream is
            # the one later `delta` requests (keyed by state_key) reach
            return state_key(table, k, name, self.backend)
        return instance_key(table, k, name, self.backend, privacy=privacy)

    def _preference(self, key: str | None) -> list[str]:
        """Alive shards to try, in order, for routing key *key*."""
        if key is not None:
            return self.ring.owners(key)
        # unroutable: any deterministic alive shard will do — the ring
        # order for a fixed sentinel spreads nothing but stays stable
        return sorted(self.ring.nodes)

    # -- membership ----------------------------------------------------

    def _evict(self, address: str) -> None:
        state = self.shards[address]
        state.failures += 1
        if state.alive:
            state.alive = False
            self.ring.remove(address)
            self.counters.bump("evicted")

    def _rejoin(self, address: str) -> None:
        state = self.shards[address]
        state.failures = 0
        if not state.alive:
            state.alive = True
            self.ring.add(address)
            self.counters.bump("rejoined")

    @property
    def alive(self) -> list[str]:
        """Alive shard addresses, sorted."""
        return sorted(self.ring.nodes)

    # -- the wire to one shard -----------------------------------------

    async def _exchange(
        self, address: str, line: bytes, timeout: float | None = None
    ) -> dict[str, Any]:
        """One request/response round trip with the shard at *address*.

        A fresh connection per forward: every in-flight request gets
        its own stream into the shard's asyncio front end (a shard
        serves each connection serially, so sharing one would serialize
        the fleet), and failover never has to reason about half-dead
        pooled sockets.  Opening the connection is bounded by
        ``connect_timeout``; *timeout*, when given (health pings),
        bounds the response wait too — forwards are otherwise never
        timed out by the router, since solve budgets belong to shard
        admission control.  Raises ``ConnectionError`` on any
        transport, timeout, or framing failure.
        """
        host, port = parse_address(address)
        writer = None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port, limit=MAX_LINE_BYTES),
                self.connect_timeout,
            )

            async def round_trip() -> bytes:
                writer.write(line)
                await writer.drain()
                return await reader.readline()

            if timeout is not None:
                raw = await asyncio.wait_for(round_trip(), timeout)
            else:
                raw = await round_trip()
            if not raw:
                raise ConnectionError(f"shard {address} closed the stream")
            response = json.loads(raw)
            if not isinstance(response, dict):
                raise ConnectionError(
                    f"shard {address} sent a malformed response"
                )
            return response
        except asyncio.TimeoutError:
            raise ConnectionError(f"shard {address} timed out") from None
        except (OSError, ValueError) as exc:
            raise ConnectionError(f"shard {address}: {exc}") from exc
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (OSError, ConnectionError):
                    pass

    # -- request handling ----------------------------------------------

    async def handle(self, request: Any) -> dict[str, Any]:
        """Serve one client request object; never raises on bad input."""
        if not isinstance(request, dict):
            return _error("bad-request", "request must be a JSON object")
        self.counters.bump("requests")
        op = request.get("op", "anonymize")
        if op == "ping":
            response = self._ping_response()
        elif op == "stats":
            response = await self._stats_response()
        elif op == "shutdown":
            response = await self._shutdown_response()
        else:
            response = await self._forward(request)
        if "id" in request:
            response["id"] = request["id"]
        return response

    def _ping_response(self) -> dict[str, Any]:
        return {
            "ok": True,
            "op": "ping",
            "protocol": PROTOCOL_VERSION,
            "router": {
                "shards_alive": len(self.ring),
                "shards_total": len(self.shards),
            },
        }

    def router_stats(self) -> dict[str, Any]:
        """The router's own section of the ``stats`` payload."""
        return {
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.time() - self.started_at,
            "backend": self.backend,
            "vnodes": self.ring.vnodes,
            "shards_alive": len(self.ring),
            "shards_total": len(self.shards),
            "health_interval": self.health_interval,
            "counters": self.counters.as_dict(),
            "shards": {
                addr: state.as_dict()
                for addr, state in sorted(self.shards.items())
            },
        }

    async def _stats_response(self) -> dict[str, Any]:
        """Fan ``stats`` out to every alive shard and merge."""
        line = json.dumps({"op": "stats"}).encode("utf-8") + b"\n"
        alive = self.alive
        outcomes = await asyncio.gather(
            *(self._exchange(addr, line) for addr in alive),
            return_exceptions=True,
        )
        per_shard: dict[str, dict] = {}
        reachable: dict[str, dict] = {}
        for addr, outcome in zip(alive, outcomes):
            if isinstance(outcome, BaseException):
                self._evict(addr)
                per_shard[addr] = {"error": str(outcome)}
            else:
                reachable[addr] = outcome
                per_shard[addr] = outcome
        for addr, state in self.shards.items():
            if not state.alive and addr not in per_shard:
                per_shard[addr] = {"error": "shard is marked dead"}
        merged = merge_shard_stats(reachable)
        return {
            "ok": True,
            "op": "stats",
            **merged,
            "router": self.router_stats(),
            "shards": per_shard,
        }

    async def _shutdown_response(self) -> dict[str, Any]:
        """Stop **every** shard — alive or marked dead — then report.

        A dead-marked shard may have come back without a health sweep
        noticing, and an orphaned shard keeps burning its cache and its
        port; shutdown is the one op that must reach the whole fleet,
        never just the ring owner of some key.  The transport stops the
        router itself after this response is written.
        """
        line = json.dumps({"op": "shutdown"}).encode("utf-8") + b"\n"
        addresses = sorted(self.shards)
        outcomes = await asyncio.gather(
            *(self._exchange(addr, line) for addr in addresses),
            return_exceptions=True,
        )
        report: dict[str, str] = {}
        for addr, outcome in zip(addresses, outcomes):
            if isinstance(outcome, BaseException):
                report[addr] = f"error: {outcome}"
            elif outcome.get("ok"):
                report[addr] = "ok"
            else:
                report[addr] = f"error: {outcome.get('error', 'refused')}"
        return {"ok": True, "op": "shutdown", "shards": report}

    async def _forward(self, request: dict) -> dict[str, Any]:
        """Route one solve-shaped request, failing over around the ring."""
        key = self.routing_key(request)
        if key is None:
            self.counters.bump("unroutable")
        preference = self._preference(key)
        if not preference:
            return _error(
                "unavailable",
                f"no shards alive (0/{len(self.shards)} reachable)",
            )
        line = json.dumps(request).encode("utf-8") + b"\n"
        first = preference[0]
        last_error = "unreachable"
        for address in preference:
            if address not in self.ring:
                continue  # evicted by a concurrent request's failover
            try:
                response = await self._exchange(address, line)
            except ConnectionError as exc:
                # connection-level failure only: a shard that ANSWERS
                # with an error is healthy and must not be evicted
                last_error = str(exc)
                self._evict(address)
                self.counters.bump("failovers")
                continue
            self.counters.bump("routed")
            self.shards[address].failures = 0
            response["shard"] = address
            if address != first:
                response["rerouted"] = True
                self.counters.bump("rerouted")
            return response
        return _error(
            "unavailable",
            f"all {len(preference)} ring owner(s) failed "
            f"(last: {last_error})",
        )

    # -- health checks -------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            await self.check_shards()

    async def check_shards(self) -> dict[str, bool]:
        """Ping every shard once; evict the dead, rejoin the recovered.

        Returns ``{address: alive}`` after the sweep (also handy for
        tests and for a deterministic pre-flight check from
        :func:`route_async` startup).
        """
        line = json.dumps({"op": "ping"}).encode("utf-8") + b"\n"
        addresses = sorted(self.shards)
        outcomes = await asyncio.gather(
            *(
                self._exchange(addr, line, timeout=self.ping_timeout)
                for addr in addresses
            ),
            return_exceptions=True,
        )
        now = time.monotonic()
        verdict: dict[str, bool] = {}
        for addr, outcome in zip(addresses, outcomes):
            self.counters.bump("health_checks")
            self.shards[addr].checked_at = now
            healthy = (
                not isinstance(outcome, BaseException)
                and bool(outcome.get("ok"))
            )
            if healthy:
                self._rejoin(addr)
            else:
                self._evict(addr)
            verdict[addr] = healthy
        return verdict


# ----------------------------------------------------------------------
# The TCP front end (same JSON-lines framing as the shard server)
# ----------------------------------------------------------------------


async def _handle_connection(
    router: ShardRouter,
    stop: asyncio.Event,
    connections: set,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    connections.add(writer)
    try:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionResetError, ValueError):
                break  # reset, or a request line beyond MAX_LINE_BYTES
            if not line:
                break
            if not line.strip():
                continue
            request: Any = None
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                response = _error("bad-request", f"bad JSON: {exc}")
            else:
                response = await router.handle(request)
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()
            if (
                isinstance(request, dict)
                and request.get("op") == "shutdown"
                and response.get("ok")
            ):
                stop.set()
                break
    except asyncio.CancelledError:
        pass  # router teardown closed this connection mid-read
    finally:
        connections.discard(writer)
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def route_async(
    router: "ShardRouter | None" = None,
    host: str = "127.0.0.1",
    port: int = DEFAULT_ROUTER_PORT,
    *,
    shards: Sequence[str] | None = None,
    ready: "threading.Event | None" = None,
    bound: list | None = None,
    log=None,
    **router_options: Any,
) -> None:
    """Run the router's TCP front end until a ``shutdown`` arrives.

    Mirrors :func:`repro.service.server.serve_async`: ``ready`` /
    ``bound`` report the bound address (``port=0`` for ephemeral), *log*
    takes one-line startup/shutdown notices.  Construct the
    :class:`ShardRouter` yourself or pass ``shards=[...]`` plus options.
    """
    if router is None:
        router = ShardRouter(shards or (), **router_options)
    stop = asyncio.Event()
    connections: set = set()
    await router.start()
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(router, stop, connections, r, w),
        host, port, limit=MAX_LINE_BYTES,
    )
    address = server.sockets[0].getsockname()[:2]
    if bound is not None:
        bound.extend(address)
    if ready is not None:
        ready.set()
    if log is not None:
        print(
            f"kanon router listening on {address[0]}:{address[1]} over "
            f"{len(router.shards)} shard(s) "
            f"(vnodes={router.ring.vnodes}, backend={router.backend})",
            file=log, flush=True,
        )
    async with server:
        await stop.wait()
        for open_writer in list(connections):
            open_writer.close()
        await asyncio.sleep(0)
    await router.stop()
    if log is not None:
        print("kanon router stopped", file=log, flush=True)


def route(
    router: "ShardRouter | None" = None,
    host: str = "127.0.0.1",
    port: int = DEFAULT_ROUTER_PORT,
    **options: Any,
) -> None:
    """Blocking entry point: route until shut down (``kanon route``)."""
    asyncio.run(route_async(router, host, port, **options))


class RouterServer:
    """An in-process router on a background thread (tests, notebooks).

    Mirror of :class:`repro.service.server.ServiceServer`; ``stop()``
    sends ``shutdown`` over the wire, which — by design — also stops
    every shard behind the router.
    """

    def __init__(
        self,
        router: "ShardRouter | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **router_options: Any,
    ):
        self.router = router or ShardRouter(**router_options)
        self._host = host
        self._port = port
        self._thread: threading.Thread | None = None
        self.address: tuple[str, int] | None = None

    def start(self, timeout: float = 10.0) -> tuple[str, int]:
        """Start routing; returns the bound ``(host, port)``."""
        if self._thread is not None:
            assert self.address is not None
            return self.address
        ready = threading.Event()
        bound: list = []
        self._thread = threading.Thread(
            target=route,
            args=(self.router, self._host, self._port),
            kwargs={"ready": ready, "bound": bound},
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("router thread failed to start")
        self.address = (bound[0], bound[1])
        return self.address

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the fleet down over the wire and join the thread."""
        if self._thread is None:
            return
        from repro.service.client import ServiceClient

        assert self.address is not None
        try:
            ServiceClient(*self.address).shutdown()
        except OSError:
            pass  # already gone
        self._thread.join(timeout)
        self._thread = None
        self.address = None

    def __enter__(self) -> "RouterServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
