"""Consistent-hash ring with virtual nodes for shard routing.

The multi-node service (:mod:`repro.service.router`) scales the
solution cache horizontally by giving every ``kanon serve`` shard a
slice of the key space: a request for instance key *x* always lands on
``ring.owner(x)``, so no instance is ever solved — or cached — twice
across the fleet.  A plain ``hash(key) % n_shards`` would do that too,
but membership changes (a shard dies, a shard rejoins) would remap
almost *every* key and throw the whole fleet's cache away.  The
consistent-hash ring bounds the damage:

* each node is placed on a 64-bit ring at ``vnodes`` pseudo-random
  points (its *virtual nodes*), which evens out the arc lengths so the
  key shares stay balanced without coordination;
* a key is owned by the first node point at or after the key's own hash
  (wrapping at the top), so **removing** a node only remaps the keys it
  owned, and **adding** one only steals keys that now hash to the new
  node — every other key keeps its owner (tested as a hypothesis
  property in ``tests/test_hashring.py``);
* :meth:`HashRing.owners` yields the distinct nodes in ring order from
  a key's position — the natural *failover preference list*: when the
  owner is unreachable, the next entry is exactly the node that would
  own the key once the dead one is evicted.

Everything is derived from SHA-256 over the node/key strings, so
placement is deterministic across processes, platforms, and restarts —
a restarted router with the same membership routes identically.

>>> ring = HashRing(["a:1", "b:2", "c:3"])
>>> ring.owner("some-instance-key") in ring.nodes
True
>>> ring.owners("some-instance-key")[0] == ring.owner("some-instance-key")
True
>>> before = ring.owner("some-instance-key")
>>> victim = next(n for n in sorted(ring.nodes) if n != before)
>>> ring.remove(victim)  # removing a non-owner never remaps the key
True
>>> ring.owner("some-instance-key") == before
True
"""

from __future__ import annotations

import bisect
import hashlib
from collections import Counter
from typing import Iterable

#: default virtual nodes per physical node — 64 keeps the expected
#: max/min share ratio across a small fleet under ~1.5 while costing
#: only a few KiB of sorted points per node
DEFAULT_VNODES = 64


def ring_hash(data: str) -> int:
    """Deterministic 64-bit position on the ring for *data*.

    SHA-256 truncated to the first 8 bytes: stable across processes and
    platforms (unlike the builtin ``hash``, which is salted per
    process), uniform enough that vnode arcs balance.
    """
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over string-named nodes.

    :param nodes: initial members (any iterable of strings — for the
        shard router these are ``host:port`` addresses).
    :param vnodes: virtual nodes per member; more vnodes mean better
        balance at slightly more memory and ``add``/``remove`` work.

    Membership is a set (adding a present node, or removing an absent
    one, is a counted no-op returning ``False``) and lookups are
    O(log(nodes * vnodes)) via bisection over one sorted point list.
    """

    def __init__(
        self, nodes: Iterable[str] = (), *, vnodes: int = DEFAULT_VNODES
    ):
        if vnodes < 1:
            raise ValueError("vnodes must be a positive integer")
        self.vnodes = vnodes
        #: sorted (position, node) points; ties (astronomically rare)
        #: break on the node string so iteration order stays total
        self._points: list[tuple[int, str]] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------

    @property
    def nodes(self) -> frozenset[str]:
        """Current members (unordered)."""
        return frozenset(self._nodes)

    def add(self, node: str) -> bool:
        """Add *node*; ``False`` (and no change) when already present."""
        if not isinstance(node, str) or not node:
            raise ValueError("a ring node must be a non-empty string")
        if node in self._nodes:
            return False
        self._nodes.add(node)
        for i in range(self.vnodes):
            bisect.insort(self._points, (ring_hash(f"{node}#{i}"), node))
        return True

    def remove(self, node: str) -> bool:
        """Remove *node*; ``False`` (and no change) when absent."""
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]
        return True

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # -- lookups -------------------------------------------------------

    def owner(self, key: str) -> str:
        """The node owning *key* (the first point at/after its hash).

        :raises LookupError: on an empty ring.
        """
        if not self._points:
            raise LookupError("the ring has no nodes")
        index = bisect.bisect_left(self._points, (ring_hash(key), ""))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._points[index][1]

    def owners(self, key: str, count: int | None = None) -> list[str]:
        """Distinct nodes in ring order from *key*'s position.

        The first entry is :meth:`owner`; each later entry is the node
        that would own *key* if every earlier entry left the ring — the
        failover preference order.  *count* truncates the list (default:
        all members).  Empty ring: empty list.
        """
        if count is None:
            count = len(self._nodes)
        if count <= 0 or not self._points:
            return []
        start = bisect.bisect_left(self._points, (ring_hash(key), ""))
        preference: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in seen:
                seen.add(node)
                preference.append(node)
                if len(preference) >= count:
                    break
        return preference

    def distribution(self, keys: Iterable[str]) -> dict[str, int]:
        """``{node: owned-key count}`` over *keys* (0s included).

        A balance probe for tests, benchmarks, and capacity planning —
        e.g. the E24 benchmark uses it to build a perfectly balanced
        disjoint-instance workload for a concrete fleet.
        """
        counts: Counter[str] = Counter({node: 0 for node in self._nodes})
        for key in keys:
            counts[self.owner(key)] += 1
        return dict(counts)

    def __repr__(self) -> str:
        return (
            f"HashRing({len(self._nodes)} nodes x {self.vnodes} vnodes)"
        )
