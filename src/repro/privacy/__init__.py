"""Privacy analysis extensions.

k-anonymity bounds *identity* disclosure; the follow-up literature adds
attribute-disclosure guards (l-diversity, t-closeness), semantic
guarantees (ε-differential privacy), and quantitative re-identification
risk models.  This package supplies all of them, as the "beyond the
paper" extension layer:

* :mod:`repro.privacy.ldiversity` — distinct l-diversity on a sensitive
  attribute, plus an anonymizer wrapper that enforces it.
* :mod:`repro.privacy.tcloseness` — t-closeness under total variation,
  plus the matching repair wrapper.
* :mod:`repro.privacy.dp` — ε-DP noisy release of equivalence-class
  counts and the :class:`PrivacyAccountant` budget ledger.
* :mod:`repro.privacy.attack` — empirical projection-linkage adversary
  harness (:func:`projection_attack`).
* :mod:`repro.privacy.risk` — prosecutor/journalist re-identification
  risk of a released table, and a linkage-attack simulator against an
  adversary's external table.
* :mod:`repro.privacy.sensitive` — split/reattach helpers for the
  "last column is sensitive" release convention.
"""

from repro.privacy.attack import AttackReport, projection_attack
from repro.privacy.dp import (
    BudgetExhaustedError,
    PrivacyAccountant,
    geometric_noise,
    laplace_noise,
    noisy_class_histogram,
    noisy_histogram,
)
from repro.privacy.ldiversity import (
    LDiverseAnonymizer,
    diversity_level,
    entropy_diversity_level,
    is_entropy_l_diverse,
    is_l_diverse,
)
from repro.privacy.risk import (
    RiskReport,
    journalist_risk,
    linkage_attack,
    prosecutor_risk,
    risk_report,
)
from repro.privacy.sensitive import reattach_sensitive, split_sensitive
from repro.privacy.tcloseness import (
    TCloseAnonymizer,
    closeness_level,
    is_t_close,
    total_variation,
)

__all__ = [
    "AttackReport",
    "BudgetExhaustedError",
    "LDiverseAnonymizer",
    "PrivacyAccountant",
    "RiskReport",
    "TCloseAnonymizer",
    "closeness_level",
    "diversity_level",
    "entropy_diversity_level",
    "geometric_noise",
    "is_entropy_l_diverse",
    "is_l_diverse",
    "is_t_close",
    "journalist_risk",
    "laplace_noise",
    "linkage_attack",
    "noisy_class_histogram",
    "noisy_histogram",
    "projection_attack",
    "prosecutor_risk",
    "reattach_sensitive",
    "risk_report",
    "split_sensitive",
    "total_variation",
]
