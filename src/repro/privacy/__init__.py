"""Privacy analysis extensions.

k-anonymity bounds *identity* disclosure; the follow-up literature adds
attribute-disclosure guards (l-diversity) and quantitative
re-identification risk models.  This package supplies both, as the
"beyond the paper" extension layer:

* :mod:`repro.privacy.ldiversity` — distinct l-diversity on a sensitive
  attribute, plus an anonymizer wrapper that enforces it.
* :mod:`repro.privacy.risk` — prosecutor/journalist re-identification
  risk of a released table, and a linkage-attack simulator against an
  adversary's external table.
"""

from repro.privacy.ldiversity import (
    LDiverseAnonymizer,
    diversity_level,
    entropy_diversity_level,
    is_entropy_l_diverse,
    is_l_diverse,
)
from repro.privacy.risk import (
    RiskReport,
    journalist_risk,
    linkage_attack,
    prosecutor_risk,
    risk_report,
)
from repro.privacy.tcloseness import (
    TCloseAnonymizer,
    closeness_level,
    is_t_close,
    total_variation,
)

__all__ = [
    "LDiverseAnonymizer",
    "RiskReport",
    "TCloseAnonymizer",
    "closeness_level",
    "diversity_level",
    "entropy_diversity_level",
    "is_entropy_l_diverse",
    "is_l_diverse",
    "is_t_close",
    "journalist_risk",
    "linkage_attack",
    "prosecutor_risk",
    "risk_report",
    "total_variation",
]
