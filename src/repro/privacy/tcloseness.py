"""t-closeness (Li, Li & Venkatasubramanian 2007) for categorical
sensitive attributes.

l-diversity counts distinct values but ignores their *distribution*: a
class that is 98% "HIV" / 2% "Flu" is 2-diverse yet leaks strongly.
t-closeness requires each class's sensitive-value distribution to be
within distance ``t`` of the table-wide distribution.

For categorical attributes with the uniform ground metric, the earth
mover's distance degenerates to **total variation distance**
``0.5 * sum |p_i - q_i|``, which is what this module computes — exact,
no optimization needed.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Sequence

from repro.algorithms.base import Anonymizer
from repro.core.anonymity import equivalence_classes
from repro.core.table import Table
from repro.privacy.ldiversity import (
    privacy_wrapper_applicable,
    privacy_wrapper_cost,
)
from repro.privacy.sensitive import (
    reattach_sensitive,
    replace_release,
    split_sensitive,
)
from repro.registry import register


def total_variation(p: dict[Hashable, float], q: dict[Hashable, float]) -> float:
    """``TV(p, q) = 0.5 * sum |p(v) - q(v)|`` over the union support."""
    support = set(p) | set(q)
    return 0.5 * sum(abs(p.get(v, 0.0) - q.get(v, 0.0)) for v in support)


def _distribution(values: Sequence[Hashable]) -> dict[Hashable, float]:
    counts = Counter(values)
    total = sum(counts.values())
    return {value: count / total for value, count in counts.items()}


def closeness_level(table: Table, sensitive: Sequence[Hashable]) -> float:
    """The smallest ``t`` for which the release is t-close.

    This is the maximum, over equivalence classes, of the total
    variation distance between the class's sensitive distribution and
    the global one.  0.0 means every class mirrors the global mix.
    """
    if len(sensitive) != table.n_rows:
        raise ValueError("one sensitive value per row required")
    if table.n_rows == 0:
        return 0.0
    global_dist = _distribution(sensitive)
    worst = 0.0
    for indices in equivalence_classes(table).values():
        class_dist = _distribution([sensitive[i] for i in indices])
        worst = max(worst, total_variation(class_dist, global_dist))
    return worst


def is_t_close(table: Table, sensitive: Sequence[Hashable], t: float) -> bool:
    """t-closeness predicate under the total-variation (uniform EMD)
    metric.

    >>> released = Table([(1,), (1,), (2,), (2,)])
    >>> is_t_close(released, ["flu", "hep", "flu", "hep"], 0.0)
    True
    """
    if not 0.0 <= t <= 1.0:
        raise ValueError("t must lie in [0, 1]")
    return closeness_level(table, sensitive) <= t + 1e-12


@register(
    "tclose",
    kind="heuristic",
    summary="t-closeness repair over a partition-based inner "
            "(last column sensitive)",
    aliases=("tcloseness",),
    factory=lambda: TCloseAnonymizer(0.5),
    applicable=privacy_wrapper_applicable,
    cost_model=privacy_wrapper_cost,
)
class TCloseAnonymizer(Anonymizer):
    """Enforce t-closeness on top of a partition-based k-anonymizer.

    Repair loop: while some group's sensitive distribution is farther
    than ``t`` from the global one, merge the worst group with its
    nearest neighbour (by group-image distance) and re-suppress.
    Merging strictly reduces the group count, and a single all-rows
    group has distance 0, so the loop always terminates with a valid,
    t-close, k-anonymous release — at a suppression cost that grows as
    ``t`` shrinks (the privacy/utility dial).

    Like every :class:`~repro.algorithms.base.Anonymizer`, the plain
    :meth:`anonymize` template path treats the *last* column as
    sensitive and returns a release with the input's full schema.
    """

    def __init__(self, t: float, inner=None,
                 backend=None, budget=None, trace=None):
        from repro.algorithms.center_cover import CenterCoverAnonymizer

        super().__init__(backend=backend, budget=budget, trace=trace)
        if not 0.0 <= t <= 1.0:
            raise ValueError("t must lie in [0, 1]")
        self._t = t
        self._inner = inner if inner is not None else CenterCoverAnonymizer()
        self.name = f"{self._inner.name}+tclose{t:g}"

    def anonymize_with_sensitive(self, table: Table, k: int, sensitive,
                                 *, backend=None, timeout=None, trace=None):
        from repro.core.distance import distance, group_image_of
        from repro.core.partition import Partition, anonymize_partition

        self._check_feasible(table, k)
        if len(sensitive) != table.n_rows:
            raise ValueError("one sensitive value per row required")
        if table.n_rows == 0:
            return self._empty_result(table, k)
        base = self._inner.anonymize(
            table, k,
            backend=backend if backend is not None else self.backend,
            timeout=timeout if timeout is not None else self.budget,
            trace=trace if trace is not None else self.trace,
        )
        if base.partition is None:
            raise ValueError(
                f"{self._inner.name} is not partition-based; cannot repair"
            )
        global_dist = _distribution(sensitive)
        groups = [set(g) for g in base.partition.groups]

        def divergence(group: set[int]) -> float:
            return total_variation(
                _distribution([sensitive[i] for i in group]), global_dist
            )

        while len(groups) > 1:
            worst = max(range(len(groups)), key=lambda g: divergence(groups[g]))
            if divergence(groups[worst]) <= self._t + 1e-12:
                break
            image = group_image_of(table, groups[worst])
            nearest = min(
                (g for g in range(len(groups)) if g != worst),
                key=lambda g: (
                    distance(image, group_image_of(table, groups[g])), g
                ),
            )
            groups[worst] |= groups[nearest]
            del groups[nearest]

        k_max = max([2 * k - 1] + [len(g) for g in groups])
        partition = Partition(
            [frozenset(g) for g in groups], table.n_rows, k, k_max=k_max
        )
        anonymized, suppressor = anonymize_partition(table, partition)
        assert is_t_close(anonymized, sensitive, self._t)
        from repro.algorithms.base import AnonymizationResult

        return AnonymizationResult(
            anonymized=anonymized,
            suppressor=suppressor,
            partition=partition,
            algorithm=self.name,
            k=k,
            extras={
                "t": self._t,
                "base_stars": base.stars,
                "groups_merged": len(base.partition.groups) - len(groups),
            },
        )

    def _anonymize(self, table: Table, k: int, run):
        """Last-column-sensitive convention, mirroring
        :class:`~repro.privacy.ldiversity.LDiverseAnonymizer`: anonymize
        the quasi-identifiers, reattach the untouched sensitive column,
        and release a table with the input's schema."""
        identifiers, sensitive, index = split_sensitive(table, -1)
        result = self.anonymize_with_sensitive(
            identifiers, k, sensitive,
            timeout=run.budget, trace=run.enabled,
        )
        return replace_release(
            result,
            reattach_sensitive(
                result.anonymized, sensitive, index, table.attributes
            ),
        )
