"""Empirical adversary harness: projection/intersection linkage.

:func:`repro.privacy.risk.linkage_attack` simulates one fixed adversary
(full external table plus identities).  This module generalizes it: the
adversary knows an arbitrary subset of attributes (*auxiliary columns*)
for every target and intersects that knowledge with the released table.
The resulting match sets quantify, empirically, what a release leaks:

* **fraction uniquely re-identified** — targets whose match set is a
  single record;
* **min/mean match-set size** — how narrow the candidate sets are (a
  k-anonymous release over the auxiliary columns guarantees ≥ k);
* **sensitive-value inference accuracy** — majority vote over the match
  set's sensitive values versus the target's true value (homogeneity
  attacks succeed here even when re-identification fails, which is the
  gap l-diversity closes).

Matching follows the release's suppression semantics: a starred cell
matches any auxiliary value, so suppression only ever *grows* match
sets (privacy paid for in utility).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.alphabet import STAR
from repro.core.table import Table


@dataclass(frozen=True)
class AttackReport:
    """Outcome of a projection linkage attack on a release."""

    targets: int
    unique: int
    fraction_unique: float
    min_match: int
    mean_match: float
    inference_correct: int
    inference_accuracy: float

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (CLI ``--json`` and experiment records)."""
        return {
            "targets": self.targets,
            "unique": self.unique,
            "fraction_unique": self.fraction_unique,
            "min_match": self.min_match,
            "mean_match": self.mean_match,
            "inference_correct": self.inference_correct,
            "inference_accuracy": self.inference_accuracy,
        }


def _resolve_columns(
    table: Table, columns: Sequence[int | str]
) -> list[int]:
    indices = []
    for column in columns:
        if isinstance(column, str):
            indices.append(table.attribute_index(column))
        else:
            index = int(column)
            if not 0 <= index < table.degree:
                raise ValueError(
                    f"auxiliary column {column} out of range for a "
                    f"table of degree {table.degree}"
                )
            indices.append(index)
    if len(set(indices)) != len(indices):
        raise ValueError("auxiliary columns must be distinct")
    return indices


def projection_attack(
    released: Table,
    original: Table,
    aux: Sequence[int | str],
    *,
    sensitive: int | str | None = None,
) -> AttackReport:
    """Link every original row back into *released* via *aux* columns.

    The adversary holds, for each target (row of *original*), the true
    values of the auxiliary columns, and intersects them with the
    release: record ``r`` matches a target when every auxiliary cell of
    ``r`` is either :data:`~repro.core.alphabet.STAR` or equal to the
    target's value.  ``sensitive`` (optional, excluded from matching)
    names the column whose value the adversary then infers by majority
    vote over the match set.

    Both tables must share the schema (same degree, row ``i`` of
    *original* is the true record behind row ``i`` of *released* — the
    usual same-order release convention).
    """
    if released.degree != original.degree:
        raise ValueError("released and original tables must share schema")
    if released.n_rows != original.n_rows:
        raise ValueError(
            "released and original tables must have the same rows "
            "(same-order release convention)"
        )
    aux_indices = _resolve_columns(original, aux)
    if not aux_indices:
        raise ValueError("need at least one auxiliary column")
    sens_index: int | None = None
    if sensitive is not None:
        sens_index = _resolve_columns(original, [sensitive])[0]
        if sens_index in aux_indices:
            raise ValueError(
                "the sensitive column cannot be auxiliary knowledge"
            )

    n = original.n_rows
    if n == 0:
        return AttackReport(0, 0, 0.0, 0, 0.0, 0, 0.0)

    # Index the release once: auxiliary projection per record.
    released_aux = [
        tuple(row[j] for j in aux_indices) for row in released.rows
    ]
    match_total = 0
    min_match = n + 1
    unique = 0
    inferred = 0
    for i, target_row in enumerate(original.rows):
        knowledge = tuple(target_row[j] for j in aux_indices)
        matches = [
            r
            for r, cells in enumerate(released_aux)
            if all(
                cell is STAR or cell == known
                for cell, known in zip(cells, knowledge)
            )
        ]
        size = len(matches)
        match_total += size
        min_match = min(min_match, size)
        if size == 1:
            unique += 1
        if sens_index is not None and size > 0:
            votes = Counter(
                released.rows[r][sens_index] for r in matches
            )
            guess, _ = max(
                sorted(votes.items(), key=lambda kv: repr(kv[0])),
                key=lambda kv: kv[1],
            )
            if guess == target_row[sens_index]:
                inferred += 1
    return AttackReport(
        targets=n,
        unique=unique,
        fraction_unique=unique / n,
        min_match=min_match if min_match <= n else 0,
        mean_match=match_total / n,
        inference_correct=inferred,
        inference_accuracy=inferred / n if sens_index is not None else 0.0,
    )
