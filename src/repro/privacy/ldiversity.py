"""Distinct l-diversity (Machanavajjhala et al. 2006) on top of the
paper's suppression model.

A k-anonymous release still leaks the sensitive value when an
equivalence class is *homogeneous* (every member shares the diagnosis).
Distinct l-diversity additionally requires every class to contain at
least ``l`` distinct sensitive values.

:class:`LDiverseAnonymizer` enforces it constructively: anonymize the
quasi-identifiers with any partition-based algorithm, then repair
classes with fewer than ``l`` distinct sensitive values by merging them
with their nearest (by group-image distance) repairable neighbour and
re-suppressing.  Merging only ever coarsens groups, so k-anonymity is
preserved; the loop terminates because each merge reduces the group
count.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from repro.algorithms.base import Anonymizer, AnonymizationResult
from repro.core.distance import distance, group_image_of
from repro.core.partition import Partition, anonymize_partition
from repro.core.table import Table
from repro.privacy.sensitive import (
    reattach_sensitive,
    replace_release,
    split_sensitive,
)
from repro.registry import register


def privacy_wrapper_applicable(n: int, m: int, sigma: int, k: int) -> bool:
    """Need k rows and at least one quasi-identifier plus the sensitive
    column; repair also needs >= 2 distinct sensitive values (sigma is
    the per-attribute alphabet proxy the planner feeds us)."""
    return n >= k and m >= 2 and sigma >= 2


def privacy_wrapper_cost(n: int, m: int, sigma: int, k: int) -> float:
    """Inner polynomial solve plus the merge-repair loop: a constant
    factor over the plain heuristics, so ``auto`` only ever picks a
    privacy wrapper when nothing cheaper is applicable."""
    return float(n) * n * m * 4.0


def diversity_level(
    table: Table,
    sensitive: Sequence[Hashable],
) -> int:
    """The largest ``l`` such that the release is distinct-l-diverse.

    :param table: the released (anonymized) quasi-identifier table.
    :param sensitive: the sensitive value of each row, released
        alongside (not part of the anonymized attributes).
    """
    from repro.core.anonymity import equivalence_classes

    if len(sensitive) != table.n_rows:
        raise ValueError("one sensitive value per row required")
    if table.n_rows == 0:
        return 0
    return min(
        len({sensitive[i] for i in indices})
        for indices in equivalence_classes(table).values()
    )


def is_l_diverse(
    table: Table,
    sensitive: Sequence[Hashable],
    l: int,  # noqa: E741 - l is the literature's name
) -> bool:
    """Distinct l-diversity: every class shows >= l sensitive values."""
    if l < 1:
        raise ValueError("l must be a positive integer")
    if table.n_rows == 0:
        return True
    return diversity_level(table, sensitive) >= l


def entropy_diversity_level(
    table: Table,
    sensitive: Sequence[Hashable],
) -> float:
    """The largest ``l`` for which the release is *entropy* l-diverse.

    Entropy l-diversity (Machanavajjhala et al.) requires every class's
    sensitive-value entropy to be at least ``log(l)``; equivalently the
    effective ``l`` is ``exp(min-class entropy)``.  Stricter than the
    distinct count: a 98%/2% class has 2 distinct values but effective
    ``l`` barely above 1.
    """
    import math
    from collections import Counter

    from repro.core.anonymity import equivalence_classes

    if len(sensitive) != table.n_rows:
        raise ValueError("one sensitive value per row required")
    if table.n_rows == 0:
        return 0.0
    worst = math.inf
    for indices in equivalence_classes(table).values():
        counts = Counter(sensitive[i] for i in indices)
        total = sum(counts.values())
        entropy = -sum(
            (c / total) * math.log(c / total) for c in counts.values()
        )
        worst = min(worst, entropy)
    return math.exp(worst)


def is_entropy_l_diverse(
    table: Table,
    sensitive: Sequence[Hashable],
    l: float,  # noqa: E741 - l is the literature's name
) -> bool:
    """Entropy l-diversity predicate (min class entropy >= log l)."""
    if l < 1:
        raise ValueError("l must be at least 1")
    if table.n_rows == 0:
        return True
    return entropy_diversity_level(table, sensitive) >= l - 1e-12


@register(
    "ldiverse",
    kind="heuristic",
    summary="distinct l-diversity repair over a partition-based inner "
            "(last column sensitive)",
    aliases=("ldiv",),
    factory=lambda: LDiverseAnonymizer(2),
    applicable=privacy_wrapper_applicable,
    cost_model=privacy_wrapper_cost,
)
class LDiverseAnonymizer(Anonymizer):
    """Enforce distinct l-diversity by merging undiverse groups.

    :param l: the diversity parameter (l <= k makes no sense below 2).
    :param inner: the partition-based anonymizer doing the geometric
        work (default: the paper's Theorem 4.2 algorithm).

    :raises ValueError: at anonymize time, if the whole table has fewer
        than ``l`` distinct sensitive values (no release can be
        l-diverse).
    """

    def __init__(self, l: int, inner: Anonymizer | None = None,  # noqa: E741
                 backend=None, budget=None, trace=None):
        from repro.algorithms.center_cover import CenterCoverAnonymizer

        super().__init__(backend=backend, budget=budget, trace=trace)
        if l < 1:
            raise ValueError("l must be a positive integer")
        self._l = l
        self._inner = inner if inner is not None else CenterCoverAnonymizer()
        self.name = f"{self._inner.name}+ldiv{l}"

    def anonymize_with_sensitive(
        self,
        table: Table,
        k: int,
        sensitive: Sequence[Hashable],
        *,
        backend=None,
        timeout=None,
        trace=None,
    ) -> AnonymizationResult:
        """k-anonymize *table* so that every class also carries >= l
        distinct values of *sensitive*.

        ``backend`` / ``timeout`` / ``trace`` are per-call overrides
        forwarded to the inner anonymizer (falling back to this
        instance's configuration), mirroring
        :meth:`~repro.algorithms.base.Anonymizer.anonymize`.
        """
        self._check_feasible(table, k)
        if len(sensitive) != table.n_rows:
            raise ValueError("one sensitive value per row required")
        if table.n_rows == 0:
            return self._empty_result(table, k)
        if len(set(sensitive)) < self._l:
            raise ValueError(
                f"only {len(set(sensitive))} distinct sensitive values; "
                f"no {self._l}-diverse release exists"
            )
        base = self._inner.anonymize(
            table, k,
            backend=backend if backend is not None else self.backend,
            timeout=timeout if timeout is not None else self.budget,
            trace=trace if trace is not None else self.trace,
        )
        if base.partition is None:
            raise ValueError(
                f"{self._inner.name} is not partition-based; cannot repair"
            )
        groups = [set(g) for g in base.partition.groups]

        def distinct(group: set[int]) -> int:
            return len({sensitive[i] for i in group})

        while len(groups) > 1:
            bad = next(
                (idx for idx, g in enumerate(groups) if distinct(g) < self._l),
                None,
            )
            if bad is None:
                break
            image_bad = group_image_of(table, groups[bad])
            best = min(
                (idx for idx in range(len(groups)) if idx != bad),
                key=lambda idx: (
                    distance(image_bad, group_image_of(table, groups[idx])),
                    idx,
                ),
            )
            groups[bad] |= groups[best]
            del groups[best]
        if len(groups) == 1 and distinct(groups[0]) < self._l:
            raise AssertionError("checked above: the table is l-diversifiable")

        k_max = max([2 * k - 1] + [len(g) for g in groups])
        partition = Partition(
            [frozenset(g) for g in groups], table.n_rows, k, k_max=k_max
        )
        anonymized, suppressor = anonymize_partition(table, partition)
        assert is_l_diverse(anonymized, sensitive, self._l)
        return AnonymizationResult(
            anonymized=anonymized,
            suppressor=suppressor,
            partition=partition,
            algorithm=self.name,
            k=k,
            extras={
                "l": self._l,
                "base_stars": base.stars,
                "groups_merged": len(base.partition.groups) - len(groups),
            },
        )

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        """Without a sensitive column, treat the *last* attribute as
        sensitive and anonymize the rest (a common CSV convention).

        The sensitive column is reattached untouched, so the release
        has the **same schema** as the input (k-anonymity is judged on
        the quasi-identifier columns only).
        """
        identifiers, sensitive, index = split_sensitive(table, -1)
        # run.backend is bound to the combined table; the inner anonymizer
        # works on the projection and resolves its own, but shares the
        # armed deadline and tracing decision.
        result = self.anonymize_with_sensitive(
            identifiers, k, sensitive,
            timeout=run.budget, trace=run.enabled,
        )
        return replace_release(
            result,
            reattach_sensitive(
                result.anonymized, sensitive, index, table.attributes
            ),
        )
