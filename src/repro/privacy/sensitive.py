"""Splitting a table into quasi-identifiers plus one sensitive column.

The privacy wrappers (:mod:`repro.privacy.ldiversity`,
:mod:`repro.privacy.tcloseness`), the service's privacy block, and the
CLI all follow the same convention: the sensitive attribute is released
*untouched* next to the suppressed quasi-identifiers, and never counts
toward k-anonymity.  These helpers keep the split/reattach round trip
in one place so every caller produces a release with the **same schema
as its input** (see the l-diversity degree bug this fixed).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Hashable, Sequence

from repro.core.table import Table


def split_sensitive(
    table: Table,
    sensitive: int | str,
) -> tuple[Table, tuple[Hashable, ...], int]:
    """Split *table* into (quasi-identifiers, sensitive values, index).

    ``sensitive`` names the sensitive attribute by index or by name;
    negative indices count from the end (so ``-1`` is the conventional
    "last column is sensitive").  The remaining columns, in their
    original order, form the quasi-identifier projection.

    >>> t = Table([(1, "a", "flu"), (2, "b", "cold")],
    ...           attributes=("age", "zip", "diagnosis"))
    >>> qi, values, index = split_sensitive(t, "diagnosis")
    >>> qi.attributes, values, index
    (('age', 'zip'), ('flu', 'cold'), 2)
    """
    if table.degree < 2:
        raise ValueError(
            "need at least one quasi-identifier plus a sensitive column"
        )
    if isinstance(sensitive, str):
        index = table.attribute_index(sensitive)
    else:
        index = int(sensitive)
        if index < 0:
            index += table.degree
        if not 0 <= index < table.degree:
            raise ValueError(
                f"sensitive column {sensitive} out of range for a table "
                f"of degree {table.degree}"
            )
    values = table.column(index)
    identifiers = table.project(
        [j for j in range(table.degree) if j != index]
    )
    return identifiers, values, index


def reattach_sensitive(
    identifiers: Table,
    values: Sequence[Hashable],
    index: int,
    attributes: Sequence[str] | None = None,
) -> Table:
    """Re-insert the untouched sensitive *values* at column *index*.

    The inverse of :func:`split_sensitive`: given the anonymized
    quasi-identifier projection, rebuild a release with the original
    schema.  ``attributes`` (when given) names the full released table.

    >>> qi = Table([("*", "a"), ("*", "b")], attributes=("age", "zip"))
    >>> release = reattach_sensitive(qi, ("flu", "cold"), 2,
    ...                              ("age", "zip", "diagnosis"))
    >>> release.rows
    (('*', 'a', 'flu'), ('*', 'b', 'cold'))
    """
    if len(values) != identifiers.n_rows:
        raise ValueError("one sensitive value per row required")
    if not 0 <= index <= identifiers.degree:
        raise ValueError(
            f"reattachment index {index} out of range for a release "
            f"of degree {identifiers.degree}"
        )
    rows = [
        row[:index] + (value,) + row[index:]
        for row, value in zip(identifiers.rows, values)
    ]
    if attributes is None:
        attributes = tuple(
            f"c{j}" for j in range(identifiers.degree + 1)
        )
    return Table(rows, attributes=tuple(attributes))


def replace_release(result, anonymized: Table):
    """An :class:`~repro.algorithms.base.AnonymizationResult` identical
    to *result* but releasing *anonymized* (the reattached full-schema
    table); partition, suppressor, and extras carry over unchanged."""
    return dataclasses.replace(result, anonymized=anonymized)
