"""Re-identification risk of a released table.

Standard disclosure-risk models over equivalence classes:

* **prosecutor risk** — the adversary knows their target IS in the
  release; the chance of picking the right record in the target's class
  is ``1/|class|``, so per-record risk is the reciprocal class size.
* **journalist risk** — the adversary links against an external
  population table; risk is governed by the matching population class.
* **linkage attack** — simulate it: given the adversary's external
  knowledge (a projection of the original table plus identities), count
  how many records are uniquely (or narrowly) pinned down.

k-anonymity caps prosecutor risk at exactly ``1/k`` — the quantitative
content of the paper's privacy parameter — which the test suite asserts
for every algorithm.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.core.alphabet import STAR
from repro.core.anonymity import equivalence_classes
from repro.core.table import Table


@dataclass(frozen=True)
class RiskReport:
    """Summary of re-identification risk for a released table."""

    max_risk: float
    mean_risk: float
    records_at_max: int
    class_count: int

    def meets_k(self, k: int) -> bool:
        """True iff the release caps prosecutor risk at 1/k."""
        return self.max_risk <= 1.0 / k + 1e-12


def prosecutor_risk(table: Table) -> list[float]:
    """Per-record prosecutor risk: 1 / (its equivalence class size)."""
    risks = [0.0] * table.n_rows
    for indices in equivalence_classes(table).values():
        risk = 1.0 / len(indices)
        for i in indices:
            risks[i] = risk
    return risks


def risk_report(table: Table) -> RiskReport:
    """Aggregate prosecutor risk over the release."""
    if table.n_rows == 0:
        return RiskReport(0.0, 0.0, 0, 0)
    risks = prosecutor_risk(table)
    max_risk = max(risks)
    return RiskReport(
        max_risk=max_risk,
        mean_risk=sum(risks) / len(risks),
        records_at_max=sum(1 for r in risks if r == max_risk),
        class_count=len(equivalence_classes(table)),
    )


def journalist_risk(released: Table, population: Table) -> list[float]:
    """Per-record journalist risk against a *population* table.

    The journalist model: the adversary does not know their target is in
    the release; they link a released record against everyone in the
    population, and the re-identification chance is one over the number
    of population individuals consistent with it.  Since the population
    is star-free and larger than the sample, journalist risk is at most
    the prosecutor risk.

    :param released: the anonymized sample.
    :param population: star-free table of the whole population (same
        schema).
    :returns: one risk value per released record; 0.0 for a record no
        population member matches (an impossible record).
    :raises ValueError: on schema mismatch, or if the population table
        contains suppressed cells (a starred population row would
        silently match nothing and understate the risk as 0.0).
    """
    if population.degree != released.degree:
        raise ValueError("population must share the released schema")
    for i, row in enumerate(population.rows):
        if any(cell is STAR for cell in row):
            raise ValueError(
                f"population table must be star-free (row {i} contains "
                "a suppressed cell)"
            )
    risks = []
    for row in released.rows:
        matches = sum(
            1 for candidate in population.rows if _matches(row, candidate)
        )
        risks.append(1.0 / matches if matches else 0.0)
    return risks


def _matches(anonymized_row, known_row) -> bool:
    """Does the adversary's known record fit the released row?

    A released cell matches if it is suppressed (anything fits a star)
    or equal to the known value.
    """
    return all(
        cell is STAR or cell == known
        for cell, known in zip(anonymized_row, known_row)
    )


def linkage_attack(
    released: Table,
    external: Table,
    identities: Sequence[Hashable],
) -> dict[Hashable, int]:
    """Simulate a linkage attack.

    The adversary holds *external* — original quasi-identifier values
    for the individuals in *identities* (same row order) — and tries to
    locate each individual in the *released* table.

    :returns: mapping identity -> number of released records consistent
        with that individual's known values.  A count of 1 is a
        re-identification; k-anonymity guarantees counts >= k for
        individuals present in the release.
    :raises ValueError: on shape mismatches.
    """
    if external.degree != released.degree:
        raise ValueError("external table must share the released schema")
    if len(identities) != external.n_rows:
        raise ValueError("one identity per external row required")
    result: dict[Hashable, int] = {}
    for identity, known in zip(identities, external.rows):
        result[identity] = sum(
            1 for row in released.rows if _matches(row, known)
        )
    return result
