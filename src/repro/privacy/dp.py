"""ε-differentially-private noisy release of equivalence-class counts.

Suppression-based k-anonymity (the paper's model) is a *syntactic*
guarantee: it caps re-identification risk but composes badly and says
nothing about aggregate outputs.  This module adds the standard
semantic complement — an ε-DP post-pass that releases the equivalence
class **histogram** of a suppressed table under calibrated noise:

* :func:`laplace_noise` — the continuous Laplace mechanism
  (Dwork et al. 2006), scale ``sensitivity / epsilon``;
* :func:`geometric_noise` — the two-sided geometric (discrete Laplace)
  mechanism (Ghosh/Roughgarden/Sundararajan 2009), integer-valued and
  exactly ε-DP for counting queries;
* :func:`noisy_histogram` / :func:`noisy_class_histogram` — apply one
  mechanism to class counts.  A histogram query has L1 sensitivity 1
  (one row moves one unit of count between bins), so a single ε covers
  the whole released vector.

Everything is **seedable and deterministic**: mechanisms draw from a
caller-supplied :class:`random.Random`, so the service can cache a
noisy release and re-serve the *same* noise on cache hits (re-releasing
identical output consumes no extra budget under sequential
composition).

:class:`PrivacyAccountant` tracks that budget: a per-dataset ledger
under sequential composition (spends add; :class:`BudgetExhaustedError`
once a dataset would exceed the configured ε budget).  The
anonymization service owns one accountant across requests.
"""

from __future__ import annotations

import math
import random
from collections.abc import Mapping, Sequence
from threading import Lock
from typing import Any

from repro.core.anonymity import equivalence_classes
from repro.core.table import Table

#: Mechanisms understood by :func:`noisy_histogram`.
MECHANISMS = ("laplace", "geometric")

#: Absolute tolerance for budget arithmetic (floats accumulate).
_BUDGET_EPS = 1e-12


class BudgetExhaustedError(RuntimeError):
    """A release would push a dataset past its ε budget."""


def laplace_noise(scale: float, rng: random.Random) -> float:
    """One draw from Laplace(0, *scale*) via the inverse CDF.

    >>> rng = random.Random(7)
    >>> round(laplace_noise(1.0, rng), 6) == round(
    ...     laplace_noise(1.0, random.Random(7)), 6)
    True
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    u = rng.random() - 0.5
    return -scale * math.copysign(1.0, u) * math.log1p(-2.0 * abs(u))


def geometric_noise(epsilon: float, rng: random.Random) -> int:
    """One draw from the two-sided geometric distribution.

    The difference of two geometric variables with success probability
    ``1 - exp(-epsilon)``: integer-valued, symmetric around 0, and the
    exactly-ε-DP mechanism for sensitivity-1 counting queries.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    alpha = math.exp(-epsilon)

    def _geometric() -> int:
        # P(X = n) = (1 - alpha) * alpha**n for n = 0, 1, 2, ...
        u = rng.random()
        if u >= 1.0 - _BUDGET_EPS:  # guard log(0)
            u = 1.0 - _BUDGET_EPS
        return int(math.log1p(-u) / math.log(alpha)) if alpha > 0 else 0

    return _geometric() - _geometric()


def noisy_histogram(
    counts: Mapping[Any, int] | Sequence[int],
    epsilon: float,
    *,
    mechanism: str = "laplace",
    seed: int | None = None,
    sensitivity: float = 1.0,
) -> dict[Any, float]:
    """Noise a histogram under ε-DP.

    ``counts`` maps bins to non-negative counts (a sequence is treated
    as bins ``0..len-1``).  A histogram has L1 sensitivity
    ``sensitivity`` (default 1: one individual shifts one unit between
    bins), so every bin is noised with the full ε.  ``seed`` makes the
    draw deterministic.

    >>> h = noisy_histogram({"a": 10, "b": 4}, 1.0, seed=0)
    >>> h == noisy_histogram({"a": 10, "b": 4}, 1.0, seed=0)
    True
    >>> sorted(h) == ["a", "b"]
    True
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if sensitivity <= 0:
        raise ValueError("sensitivity must be positive")
    if mechanism not in MECHANISMS:
        raise ValueError(
            f"unknown mechanism {mechanism!r}; choose from {MECHANISMS}"
        )
    if not isinstance(counts, Mapping):
        counts = {i: c for i, c in enumerate(counts)}
    rng = random.Random(seed)
    scaled_eps = epsilon / sensitivity
    noisy: dict[Any, float] = {}
    # Deterministic iteration order => deterministic noise per bin.
    for bin_ in sorted(counts, key=repr):
        count = counts[bin_]
        if count < 0:
            raise ValueError("histogram counts must be non-negative")
        if mechanism == "laplace":
            noisy[bin_] = float(count) + laplace_noise(
                sensitivity / epsilon, rng
            )
        else:
            noisy[bin_] = float(count + geometric_noise(scaled_eps, rng))
    return noisy


def noisy_class_histogram(
    table: Table,
    epsilon: float,
    *,
    mechanism: str = "laplace",
    seed: int | None = None,
) -> dict[str, Any]:
    """ε-DP noisy equivalence-class histogram of a released table.

    Returns a JSON-ready dict: the mechanism, ε, noise scale, and one
    entry per equivalence class (keyed by the class's suppressed row
    pattern, ``*`` for stars) holding its noisy count.  Released
    alongside the suppressed table, this gives callers calibrated
    aggregate statistics without further privacy loss beyond ε.
    """
    classes = equivalence_classes(table)
    # STAR reprs as "*", so suppressed cells serialize naturally.
    counts = {
        "|".join(str(cell) for cell in key): len(indices)
        for key, indices in classes.items()
    }
    noisy = noisy_histogram(
        counts, epsilon, mechanism=mechanism, seed=seed
    )
    return {
        "epsilon": float(epsilon),
        "mechanism": mechanism,
        "scale": 1.0 / float(epsilon),
        "classes": {bin_: round(value, 6) for bin_, value in noisy.items()},
    }


class PrivacyAccountant:
    """Per-dataset ε ledger under sequential composition.

    The service owns one accountant across requests: every *fresh* DP
    release of a dataset spends its ε (cache hits re-release the same
    noise and spend nothing).  ``budget=None`` means unlimited — the
    ledger still tracks spends so ``stats`` can report them.

    >>> acct = PrivacyAccountant(budget=1.0)
    >>> acct.charge("tbl", 0.4); acct.charge("tbl", 0.6)
    >>> acct.spent("tbl")
    1.0
    >>> acct.charge("tbl", 0.1)
    Traceback (most recent call last):
        ...
    repro.privacy.dp.BudgetExhaustedError: dataset 'tbl': \
charging 0.1 would spend 1.1 of budget 1
    """

    def __init__(self, budget: float | None = None):
        if budget is not None and budget <= 0:
            raise ValueError("budget must be positive (or None)")
        self.budget = float(budget) if budget is not None else None
        self._spent: dict[str, float] = {}
        self._lock = Lock()

    def charge(self, dataset: str, epsilon: float) -> None:
        """Spend *epsilon* on *dataset*, atomically.

        Raises :class:`BudgetExhaustedError` — without mutating the
        ledger — when the charge would exceed the budget.
        """
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        with self._lock:
            spent = self._spent.get(dataset, 0.0)
            total = spent + float(epsilon)
            if (self.budget is not None
                    and total > self.budget + _BUDGET_EPS):
                raise BudgetExhaustedError(
                    f"dataset {dataset!r}: charging {epsilon:g} would "
                    f"spend {total:g} of budget {self.budget:g}"
                )
            self._spent[dataset] = total

    def refund(self, dataset: str, epsilon: float) -> None:
        """Return *epsilon* to *dataset* (floored at zero spend).

        For callers that charge optimistically before a release and
        learn the release never happened (e.g. the solve errored).
        """
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        with self._lock:
            spent = self._spent.get(dataset, 0.0) - float(epsilon)
            if spent <= _BUDGET_EPS:
                self._spent.pop(dataset, None)
            else:
                self._spent[dataset] = spent

    def spent(self, dataset: str) -> float:
        """Total ε spent on *dataset* so far."""
        with self._lock:
            return self._spent.get(dataset, 0.0)

    def remaining(self, dataset: str) -> float | None:
        """ε left for *dataset* (``None`` when the budget is unlimited)."""
        with self._lock:
            if self.budget is None:
                return None
            return max(0.0, self.budget - self._spent.get(dataset, 0.0))

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready ledger snapshot for the service's ``stats``."""
        with self._lock:
            return {
                "budget": self.budget,
                "datasets": {
                    dataset: round(spent, 12)
                    for dataset, spent in sorted(self._spent.items())
                },
            }
