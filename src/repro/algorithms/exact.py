"""Exact optimal k-anonymity (exponential time — for ground truth).

The problem is NP-hard (Theorem 3.1), so exact solvers necessarily take
exponential time; they exist to provide ``OPT(V)`` on the small instances
against which the approximation experiments measure ratios.

* :func:`optimal_anonymization` — dynamic programming over row subsets.
  Sound because WLOG optimal partitions use groups of size at most
  ``2k - 1`` (Section 4.1: splitting a group never increases ANON).
* :func:`brute_force_optimal` — enumerate *all* partitions into groups of
  size >= k (restricted-growth strings); cross-checks the DP on tiny n.
* :func:`optimal_attribute_suppression` — exact solver for
  k-ANONYMITY-ON-ATTRIBUTES (Theorem 3.2's problem): the minimum number
  of whole columns to suppress.
"""

from __future__ import annotations

from itertools import combinations

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.distance import disagreeing_coordinates
from repro.core.partition import Partition
from repro.core.table import Table
from repro.registry import register
from repro.theory import exact_bound

_INF = float("inf")


def optimal_anonymization(
    table: Table, k: int, group_max: int | None = None, backend=None,
    budget=None,
) -> tuple[int, Partition]:
    """Exact ``OPT(V)`` and an optimal (k, 2k-1)-partition by subset DP.

    Delegates to the shared engine
    :func:`repro.algorithms.partition_dp.minimum_cost_partition` with
    ``ANON(S) = |S| * |disagreeing coordinates|`` as the group cost —
    sound because splitting a group never increases ANON (Section 4.1's
    WLOG), so groups of size at most ``2k - 1`` suffice.

    Runtime roughly ``O(2^n * C(n, 2k-1))`` — use only for n up to ~16.

    :param budget: optional wall-clock allowance (seconds or a
        :class:`~repro.instrument.TimeBudget`), forwarded to the DP
        engine.
    :raises ValueError: if ``0 < n < k``.
    :raises repro.instrument.BudgetExceededError: if *budget* expires
        before the optimum is proven.
    """
    from repro.algorithms.partition_dp import minimum_cost_partition
    from repro.core.backend import get_backend

    n = table.n_rows
    if k < 1:
        raise ValueError("k must be positive")
    if n == 0:
        return 0, Partition([], 0, k)
    if n < k:
        raise ValueError(f"{n} rows cannot be {k}-anonymized")
    resolved = get_backend(table, backend)

    def group_cost(members: tuple[int, ...]) -> float:
        return resolved.anon_cost(members)

    opt, groups = minimum_cost_partition(n, k, group_cost,
                                         group_max=group_max, budget=budget)
    upper = min((2 * k - 1) if group_max is None else group_max, n)
    return int(opt), Partition(groups, n, k, k_max=upper)


def brute_force_optimal(table: Table, k: int) -> int:
    """``OPT(V)`` by enumerating every partition into groups of size >= k.

    Exponential in the worst way (Bell-number growth) — only for n <= 10,
    as an independent cross-check of :func:`optimal_anonymization`.
    """
    n = table.n_rows
    if k < 1:
        raise ValueError("k must be positive")
    if n == 0:
        return 0
    if n < k:
        raise ValueError(f"{n} rows cannot be {k}-anonymized")
    rows = table.rows
    best = _INF

    def extend(assignment: list[int], n_blocks: int) -> None:
        nonlocal best
        i = len(assignment)
        if i == n:
            sizes = [0] * n_blocks
            for block in assignment:
                sizes[block] += 1
            if all(size >= k for size in sizes):
                cost = 0
                for block in range(n_blocks):
                    members = [rows[j] for j in range(n) if assignment[j] == block]
                    cost += len(members) * len(disagreeing_coordinates(members))
                if cost < best:
                    best = cost
            return
        for block in range(n_blocks):
            assignment.append(block)
            extend(assignment, n_blocks)
            assignment.pop()
        assignment.append(n_blocks)
        extend(assignment, n_blocks + 1)
        assignment.pop()

    extend([0], 1)
    assert best != _INF
    return int(best)


@register(
    "exact_dp",
    kind="exact",
    bound=exact_bound,
    bound_label="1 — provably optimal",
    aliases=("exact", "partition_dp"),
    summary="subset-DP exact optimum (the partition-DP engine); n <= ~16",
)
class ExactAnonymizer(Anonymizer):
    """Anonymizer facade over :func:`optimal_anonymization`.

    A time budget makes the solver fail fast instead of hanging: the
    subset DP has no feasible incumbent mid-flight, so on expiry it
    raises :class:`~repro.instrument.BudgetExceededError`.
    """

    name = "exact_dp"

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        if table.n_rows == 0:
            return self._empty_result(table, k)
        with run.phase("dp"):
            opt, partition = optimal_anonymization(
                table, k, backend=run.backend, budget=run.budget
            )
        result = self._result_from_partition(table, k, partition,
                                             {"opt": opt}, run=run)
        assert result.stars == opt
        return result


def optimal_attribute_suppression(table: Table, k: int) -> tuple[int, frozenset[int]]:
    """Exact k-ANONYMITY-ON-ATTRIBUTES: fewest whole columns to star.

    Searches subsets of columns by increasing suppression count, checking
    whether the projection onto the *kept* columns is k-anonymous.
    ``O(2^m * n)`` — Theorem 3.2 says no polynomial algorithm is expected.
    For wider tables use
    :func:`optimal_attribute_suppression_branch_bound`, which prunes via
    the anti-monotonicity of feasibility.

    :returns: ``(count, suppressed_column_indices)``.
    :raises ValueError: if ``0 < n < k`` (even suppressing everything
        cannot reach k-anonymity).
    """
    from collections import Counter

    n, m = table.n_rows, table.degree
    if k < 1:
        raise ValueError("k must be positive")
    if n == 0:
        return 0, frozenset()
    if n < k:
        raise ValueError(f"{n} rows cannot be {k}-anonymized")
    rows = table.rows
    for suppressed_count in range(m + 1):
        for suppressed in combinations(range(m), suppressed_count):
            hidden = set(suppressed)
            kept = [j for j in range(m) if j not in hidden]
            counts = Counter(tuple(row[j] for j in kept) for row in rows)
            if all(c >= k for c in counts.values()):
                return suppressed_count, frozenset(suppressed)
    raise AssertionError("suppressing all attributes is always k-anonymous for n >= k")


def optimal_attribute_suppression_branch_bound(
    table: Table, k: int
) -> tuple[int, frozenset[int]]:
    """Exact attribute suppression for wider tables, by branch and bound.

    Feasibility ("the projection onto this kept set is k-anonymous") is
    *downward-closed*: dropping kept columns coarsens the equivalence
    classes, so subsets of feasible kept-sets stay feasible.  The search
    therefore walks kept-sets depth-first (include/exclude the next
    column), pruning branches whose kept set is already infeasible —
    no superset can recover — and branches that cannot beat the
    incumbent's kept-count.

    Columns are ordered by ascending distinct-value count so cheap,
    likely-keepable columns are decided first (better early incumbents).

    :returns: same contract as :func:`optimal_attribute_suppression`.
    """
    from collections import Counter

    n, m = table.n_rows, table.degree
    if k < 1:
        raise ValueError("k must be positive")
    if n == 0:
        return 0, frozenset()
    if n < k:
        raise ValueError(f"{n} rows cannot be {k}-anonymized")
    rows = table.rows
    order = sorted(
        range(m), key=lambda j: (len({row[j] for row in rows}), j)
    )

    def feasible(kept: tuple[int, ...]) -> bool:
        counts = Counter(tuple(row[j] for j in kept) for row in rows)
        return all(c >= k for c in counts.values())

    best_kept: tuple[int, ...] = ()
    assert feasible(())  # the empty projection is always k-anonymous

    def dfs(index: int, kept: tuple[int, ...]) -> None:
        nonlocal best_kept
        if len(kept) + (m - index) <= len(best_kept):
            return  # cannot beat the incumbent
        if index == m:
            if len(kept) > len(best_kept):
                best_kept = kept
            return
        column = order[index]
        extended = kept + (column,)
        if feasible(extended):
            dfs(index + 1, extended)
        dfs(index + 1, kept)

    dfs(0, ())
    suppressed = frozenset(range(m)) - frozenset(best_kept)
    return len(suppressed), suppressed
