"""Greedy k-member clustering (Byun et al. 2007), suppression flavour.

A locality-aware baseline: repeatedly seed a cluster with the record
farthest from the previous seed, then grow it one record at a time,
always adding the record that increases the cluster's ANON cost least,
until the cluster has ``k`` members.  Remaining records (fewer than k)
are each appended to the cluster whose ANON cost they increase least.

Cluster growth runs on the backend's incremental
:class:`~repro.core.backend.MutableGroupStats` — each candidate is
scored by an O(m) what-if query instead of re-scanning the cluster.
"""

from __future__ import annotations

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.partition import Partition
from repro.core.table import Table
from repro.registry import register


@register(
    "kmember",
    kind="heuristic",
    summary="greedy k-member clustering (furthest-first seeding)",
)
class KMemberAnonymizer(Anonymizer):
    """Greedy k-member clustering.

    Deterministic: the first seed is row 0; later seeds are the
    unassigned record farthest from the last cluster's seed (ties to the
    smallest index).

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (0, 1), (5, 5), (5, 6)])
    >>> result = KMemberAnonymizer().anonymize(t, 2)
    >>> result.stars
    4
    """

    name = "kmember"

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        n = table.n_rows
        if n == 0:
            return self._empty_result(table, k)
        backend = run.backend
        unassigned = set(range(n))
        clusters = []
        seeds: list[int] = []
        while len(unassigned) >= k:
            if clusters:
                prev_seed = seeds[-1]
                seed = max(
                    unassigned,
                    key=lambda i: (backend.distance(prev_seed, i), -i),
                )
            else:
                seed = min(unassigned)
            stats = backend.group_stats([seed])
            seeds.append(seed)
            unassigned.remove(seed)
            while len(stats) < k:
                best = min(
                    unassigned,
                    key=lambda i: (stats.cost_if_add(i), i),
                )
                stats.add(best)
                unassigned.remove(best)
            clusters.append(stats)
        for leftover in sorted(unassigned):
            target = min(
                range(len(clusters)),
                key=lambda c: (
                    clusters[c].cost_if_add(leftover) - clusters[c].cost,
                    c,
                ),
            )
            clusters[target].add(leftover)
        k_max = max([2 * k - 1] + [len(c) for c in clusters])
        partition = Partition(
            [c.members for c in clusters], n, k, k_max=k_max
        )
        run.count("clusters", len(clusters))
        return self._result_from_partition(
            table, k, partition, {"clusters": len(clusters)}, run=run
        )
