"""Greedy k-member clustering (Byun et al. 2007), suppression flavour.

A locality-aware baseline: repeatedly seed a cluster with the record
farthest from the previous seed, then grow it one record at a time,
always adding the record that increases the cluster's ANON cost least,
until the cluster has ``k`` members.  Remaining records (fewer than k)
are each appended to the cluster whose ANON cost they increase least.
"""

from __future__ import annotations

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.distance import disagreeing_coordinates, distance
from repro.core.partition import Partition
from repro.core.table import Table


def _cost_with(rows, members: list[int], extra: int) -> int:
    vectors = [rows[i] for i in members] + [rows[extra]]
    return len(vectors) * len(disagreeing_coordinates(vectors))


class KMemberAnonymizer(Anonymizer):
    """Greedy k-member clustering.

    Deterministic: the first seed is row 0; later seeds are the
    unassigned record farthest from the last cluster's seed (ties to the
    smallest index).

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (0, 1), (5, 5), (5, 6)])
    >>> result = KMemberAnonymizer().anonymize(t, 2)
    >>> result.stars
    4
    """

    name = "kmember"

    def anonymize(self, table: Table, k: int) -> AnonymizationResult:
        self._check_feasible(table, k)
        n = table.n_rows
        if n == 0:
            return self._empty_result(table, k)
        rows = table.rows
        unassigned = set(range(n))
        clusters: list[list[int]] = []
        seed = 0
        while len(unassigned) >= k:
            if clusters:
                prev_seed = clusters[-1][0]
                seed = max(
                    unassigned,
                    key=lambda i: (distance(rows[prev_seed], rows[i]), -i),
                )
            else:
                seed = min(unassigned)
            cluster = [seed]
            unassigned.remove(seed)
            while len(cluster) < k:
                best = min(
                    unassigned,
                    key=lambda i: (_cost_with(rows, cluster, i), i),
                )
                cluster.append(best)
                unassigned.remove(best)
            clusters.append(cluster)
        for leftover in sorted(unassigned):
            target = min(
                range(len(clusters)),
                key=lambda c: (
                    _cost_with(rows, clusters[c], leftover)
                    - len(clusters[c])
                    * len(disagreeing_coordinates([rows[i] for i in clusters[c]])),
                    c,
                ),
            )
            clusters[target].append(leftover)
        k_max = max([2 * k - 1] + [len(c) for c in clusters])
        partition = Partition(
            [frozenset(c) for c in clusters], n, k, k_max=k_max
        )
        return self._result_from_partition(
            table, k, partition, {"clusters": len(clusters)}
        )
