"""Datafly-style greedy whole-attribute suppression (Sweeney 1998/2002).

Datafly repeatedly generalizes the attribute with the most distinct
values; restricted to the paper's suppression model this becomes: star
the whole column with the most distinct values until the table is
k-anonymous, then suppress the residual outlier rows entirely (Datafly's
record-suppression step) if that is cheaper than starring yet another
column.

This is simultaneously (a) a practical baseline and (b) a greedy
heuristic for k-ANONYMITY-ON-ATTRIBUTES, whose exact counterpart is
:func:`repro.algorithms.exact.optimal_attribute_suppression`.
"""

from __future__ import annotations

from collections import Counter

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.suppressor import Suppressor
from repro.core.table import Table
from repro.registry import register


def greedy_attribute_suppression(table: Table, k: int) -> frozenset[int]:
    """Columns chosen by the most-distinct-values-first greedy rule.

    Stars columns until the projection onto the kept columns is
    k-anonymous; returns the set of starred column indices.  A greedy
    (not optimal) solution to Theorem 3.2's problem.
    """
    if k < 1:
        raise ValueError("k must be positive")
    n, m = table.n_rows, table.degree
    if 0 < n < k:
        raise ValueError(f"{n} rows cannot be {k}-anonymized")
    rows = table.rows
    suppressed: set[int] = set()
    while True:
        kept = [j for j in range(m) if j not in suppressed]
        counts = Counter(tuple(row[j] for j in kept) for row in rows)
        if not counts or all(c >= k for c in counts.values()):
            return frozenset(suppressed)
        assert kept, "a fully suppressed table is k-anonymous for n >= k"
        distinct = {j: len({row[j] for row in rows}) for j in kept}
        victim = max(kept, key=lambda j: (distinct[j], -j))
        suppressed.add(victim)


@register(
    "datafly",
    kind="heuristic",
    summary="whole-column suppression plus outlier-row removal",
)
class DataflyAnonymizer(Anonymizer):
    """Datafly restricted to suppression, with outlier-row suppression.

    Procedure: greedily star whole columns while more than ``k`` rows
    violate k-anonymity; once at most ``max_outliers`` (default ``k``)
    rows violate, star those rows completely instead (cheaper than
    another full column on wide tables).
    """

    name = "datafly"

    def __init__(self, max_outliers: int | None = None, backend=None,
                 budget=None, trace=None):
        super().__init__(backend=backend, budget=budget, trace=trace)
        self._max_outliers = max_outliers

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        n, m = table.n_rows, table.degree
        if n == 0:
            return self._empty_result(table, k)
        max_outliers = k if self._max_outliers is None else self._max_outliers
        rows = table.rows
        suppressed_cols: set[int] = set()
        while True:
            kept = [j for j in range(m) if j not in suppressed_cols]
            counts = Counter(tuple(row[j] for j in kept) for row in rows)
            violating = [
                i for i, row in enumerate(rows)
                if counts[tuple(row[j] for j in kept)] < k
            ]
            if not violating:
                outliers: list[int] = []
                break
            if len(violating) <= max_outliers or not kept:
                outliers = violating
                break
            distinct = {j: len({row[j] for row in rows}) for j in kept}
            victim = max(kept, key=lambda j: (distinct[j], -j))
            suppressed_cols.add(victim)

        starred: dict[int, set[int]] = {
            i: set(suppressed_cols) for i in range(n) if suppressed_cols
        }
        for i in outliers:
            starred[i] = set(range(m))

        # Fully starring outlier rows shrinks their old classes, which can
        # create new violations (including an undersized all-star class);
        # repeat Datafly's record-suppression step until stable.  Each pass
        # strictly increases the number of stars, so it terminates — in the
        # worst case with the everything-starred table, which is
        # k-anonymous for n >= k.
        from repro.core.alphabet import STAR
        from repro.core.anonymity import (
            equivalence_classes,
            is_k_anonymous,
            violating_rows,
        )

        full_row = set(range(m))
        while True:
            suppressor = Suppressor(starred, n_rows=n, degree=m)
            anonymized = suppressor.apply(table)
            if is_k_anonymous(anonymized, k):
                break
            progress = False
            for i in violating_rows(anonymized, k):
                if starred.get(i) != full_row:
                    starred[i] = set(full_row)
                    progress = True
            if not progress:
                # Only the all-star class itself is undersized: absorb just
                # enough rows from another class to fill it, preferring a
                # donor that stays k-anonymous (or empties) after donating.
                classes = equivalence_classes(anonymized)
                have = 0
                donors = []
                for record, indices in classes.items():
                    if all(value is STAR for value in record):
                        have = len(indices)
                    else:
                        donors.append(indices)
                need = k - have
                assert need > 0 and donors, (
                    "no progress implies an undersized all-star class"
                )
                donors.sort(key=lambda idx: (len(idx), idx))
                chosen = next(
                    (d for d in donors if len(d) == need or len(d) - need >= k),
                    donors[-1],
                )
                for i in chosen[:need] if len(chosen) - need >= k else chosen:
                    starred[i] = set(full_row)

        return AnonymizationResult(
            anonymized=anonymized,
            suppressor=suppressor,
            partition=None,
            algorithm=self.name,
            k=k,
            extras={
                "suppressed_columns": sorted(suppressed_cols),
                "suppressed_rows": len(outliers),
            },
        )
