"""The Reduce procedure (Section 4.2.2): cover -> partition.

``Reduce`` repeatedly eliminates double coverage: if a vector ``v`` lies
in two chosen sets, either it is removed from a set that has more than
``k`` members (removal only shrinks diameters), or — when both sets have
exactly ``k`` members — the two sets are merged (the union has at most
``2k - 1`` members since ``v`` is shared, and by the triangle inequality
of Figure 1 the union's diameter is at most the sum of the two
diameters).  Either way the diameter sum never increases, and each step
removes a membership or a set, so at most ``|V|`` repetitions suffice.
"""

from __future__ import annotations

from collections import deque

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.partition import Cover, Partition
from repro.core.table import Table
from repro.registry import register


def reduce_cover(cover: Cover) -> Partition:
    """Convert a (k, *)-cover into a (k, *)-partition per Section 4.2.2.

    The resulting partition covers the same rows, has groups of size at
    least ``k``, and (as the paper proves and the tests verify) its
    diameter sum never exceeds the cover's.

    >>> from repro.core.partition import Cover
    >>> c = Cover([{0, 1}, {1, 2}], n_rows=3, k=2)
    >>> sorted(len(g) for g in reduce_cover(c).groups)
    [3]
    """
    k = cover.k
    groups: list[set[int] | None] = [set(g) for g in cover.groups]
    owners: dict[int, set[int]] = {}
    for gid, group in enumerate(groups):
        assert group is not None
        for v in group:
            owners.setdefault(v, set()).add(gid)

    worklist: deque[int] = deque(
        v for v in sorted(owners) if len(owners[v]) >= 2
    )

    while worklist:
        v = worklist.popleft()
        gids = owners[v]
        if len(gids) < 2:
            continue
        i, j = sorted(gids)[:2]
        set_i, set_j = groups[i], groups[j]
        assert set_i is not None and set_j is not None
        if len(set_i) > k or len(set_j) > k:
            # Remove v from the larger set (ties resolved toward the
            # later set); the larger set strictly exceeds k, so it stays
            # feasible, and removing an element never grows a diameter.
            target = i if len(set_i) > len(set_j) else j
            target_set = groups[target]
            assert target_set is not None
            target_set.remove(v)
            owners[v].discard(target)
        else:
            # Both sets have exactly k members: replace them with their
            # union (size <= 2k - 1 because v is in both).
            for u in set_j:
                owners[u].discard(j)
                if u not in set_i:
                    set_i.add(u)
                    owners[u].add(i)
                if len(owners[u]) >= 2:
                    worklist.append(u)
            groups[j] = None
        if len(owners[v]) >= 2:
            worklist.append(v)

    final = [frozenset(g) for g in groups if g]
    k_max = max(
        [2 * k - 1] + [len(g) for g in final]
    )
    return Partition(final, cover.n_rows, k, k_max=k_max)


def reduce_and_shrink(table: Table, cover: Cover, backend=None) -> Partition:
    """Reduce, then split any group larger than ``2k - 1``.

    The splitting step implements the Section 4.1 WLOG argument so the
    output is a genuine (k, 2k-1)-partition, as Corollary 4.1's cost
    accounting requires.  Splitting never increases ANON cost (subgroups
    disagree on no more coordinates than the parent group).
    """
    from repro.core.partition import split_into_small_groups

    partition = reduce_cover(cover)
    if all(len(g) <= 2 * cover.k - 1 for g in partition.groups):
        return Partition(partition.groups, cover.n_rows, cover.k)
    small = split_into_small_groups(table, partition.groups, cover.k,
                                    backend=backend)
    return Partition(small, cover.n_rows, cover.k)


@register(
    "reduce_cover",
    kind="heuristic",
    summary="every row's tightest k-ball, then Reduce — no greedy phase",
)
class ReduceCoverAnonymizer(Anonymizer):
    """Showcase Reduce as a standalone algorithm.

    Phase 1 of the paper's cover algorithms picks balls *greedily*; this
    heuristic skips the greedy selection entirely: it takes **every**
    row's tightest ball of at least ``k`` members (the row plus its
    ``k - 1`` nearest neighbours, extended through distance ties) as a
    massively redundant cover, and lets the Section 4.2.2 ``Reduce``
    procedure do all the work of eliminating the double coverage.
    ``O(n^2 m)`` for the distances plus near-linear Reduce — cheaper
    than the greedy cover's lazy-ratio loop, with no approximation
    guarantee.

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (0, 1), (5, 5), (5, 5)])
    >>> result = ReduceCoverAnonymizer().anonymize(t, 2)
    >>> result.is_valid(t)
    True
    """

    name = "reduce_cover"

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        if table.n_rows == 0:
            return self._empty_result(table, k)
        n = table.n_rows
        backend = run.backend
        with run.phase("cover"):
            balls: set[frozenset[int]] = set()
            for c in range(n):
                # the tightest distance-defined ball of >= k members:
                # the radius of c's k-th bucketed neighbor, queried
                # against the backend's radius-bucketed index (ties are
                # included by construction; the full distance matrix is
                # never materialized)
                _, dists = backend.neighbor_order(c)
                radius = dists[min(k, n) - 1]
                balls.add(frozenset(backend.neighbors_within(c, radius)))
            groups = sorted(balls, key=sorted)
            k_max = max([2 * k - 1] + [len(g) for g in groups])
            cover = Cover(groups, n, k, k_max=k_max)
        with run.phase("reduce"):
            partition = reduce_and_shrink(table, cover, backend=backend)
        run.count("cover_sets", len(groups))
        extras = {
            "cover_sets": len(groups),
            "partition_groups": len(partition.groups),
        }
        return self._result_from_partition(table, k, partition, extras,
                                           run=run)
