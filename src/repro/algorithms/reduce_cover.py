"""The Reduce procedure (Section 4.2.2): cover -> partition.

``Reduce`` repeatedly eliminates double coverage: if a vector ``v`` lies
in two chosen sets, either it is removed from a set that has more than
``k`` members (removal only shrinks diameters), or — when both sets have
exactly ``k`` members — the two sets are merged (the union has at most
``2k - 1`` members since ``v`` is shared, and by the triangle inequality
of Figure 1 the union's diameter is at most the sum of the two
diameters).  Either way the diameter sum never increases, and each step
removes a membership or a set, so at most ``|V|`` repetitions suffice.
"""

from __future__ import annotations

from collections import deque

from repro.core.partition import Cover, Partition
from repro.core.table import Table


def reduce_cover(cover: Cover) -> Partition:
    """Convert a (k, *)-cover into a (k, *)-partition per Section 4.2.2.

    The resulting partition covers the same rows, has groups of size at
    least ``k``, and (as the paper proves and the tests verify) its
    diameter sum never exceeds the cover's.

    >>> from repro.core.partition import Cover
    >>> c = Cover([{0, 1}, {1, 2}], n_rows=3, k=2)
    >>> sorted(len(g) for g in reduce_cover(c).groups)
    [3]
    """
    k = cover.k
    groups: list[set[int] | None] = [set(g) for g in cover.groups]
    owners: dict[int, set[int]] = {}
    for gid, group in enumerate(groups):
        assert group is not None
        for v in group:
            owners.setdefault(v, set()).add(gid)

    worklist: deque[int] = deque(
        v for v in sorted(owners) if len(owners[v]) >= 2
    )

    while worklist:
        v = worklist.popleft()
        gids = owners[v]
        if len(gids) < 2:
            continue
        i, j = sorted(gids)[:2]
        set_i, set_j = groups[i], groups[j]
        assert set_i is not None and set_j is not None
        if len(set_i) > k or len(set_j) > k:
            # Remove v from the larger set (ties resolved toward the
            # later set); the larger set strictly exceeds k, so it stays
            # feasible, and removing an element never grows a diameter.
            target = i if len(set_i) > len(set_j) else j
            target_set = groups[target]
            assert target_set is not None
            target_set.remove(v)
            owners[v].discard(target)
        else:
            # Both sets have exactly k members: replace them with their
            # union (size <= 2k - 1 because v is in both).
            for u in set_j:
                owners[u].discard(j)
                if u not in set_i:
                    set_i.add(u)
                    owners[u].add(i)
                if len(owners[u]) >= 2:
                    worklist.append(u)
            groups[j] = None
        if len(owners[v]) >= 2:
            worklist.append(v)

    final = [frozenset(g) for g in groups if g]
    k_max = max(
        [2 * k - 1] + [len(g) for g in final]
    )
    return Partition(final, cover.n_rows, k, k_max=k_max)


def reduce_and_shrink(table: Table, cover: Cover, backend=None) -> Partition:
    """Reduce, then split any group larger than ``2k - 1``.

    The splitting step implements the Section 4.1 WLOG argument so the
    output is a genuine (k, 2k-1)-partition, as Corollary 4.1's cost
    accounting requires.  Splitting never increases ANON cost (subgroups
    disagree on no more coordinates than the parent group).
    """
    from repro.core.partition import split_into_small_groups

    partition = reduce_cover(cover)
    if all(len(g) <= 2 * cover.k - 1 for g in partition.groups):
        return Partition(partition.groups, cover.n_rows, cover.k)
    small = split_into_small_groups(table, partition.groups, cover.k,
                                    backend=backend)
    return Partition(small, cover.n_rows, cover.k)
