"""Nearest-neighbour-chain ordering baseline.

`SortedChunkAnonymizer` exploits lexicographic locality;
`GreedyChainAnonymizer` exploits *metric* locality: starting from row 0,
repeatedly append the unvisited row closest (in the Definition 4.1
metric) to the last visited one, producing a short Hamiltonian-path-like
tour, then chunk consecutive runs into groups of size [k, 2k-1].

O(n^2) time, no parameters, surprisingly competitive with the
clustering algorithms on locality-rich data — a useful middle rung
between sorting and real clustering in the E8 comparison.
"""

from __future__ import annotations

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.algorithms.baselines import chunk_indices
from repro.core.backend import get_backend
from repro.core.partition import Partition
from repro.core.table import Table
from repro.registry import register


def nearest_neighbour_order(table: Table, backend=None) -> list[int]:
    """A greedy short tour over the rows (start at row 0)."""
    n = table.n_rows
    if n == 0:
        return []
    dist = get_backend(table, backend).distance_matrix()
    visited = [False] * n
    order = [0]
    visited[0] = True
    current = 0
    for _ in range(n - 1):
        row = dist[current]
        nxt = min(
            (i for i in range(n) if not visited[i]),
            key=lambda i: (row[i], i),
        )
        order.append(nxt)
        visited[nxt] = True
        current = nxt
    return order


@register(
    "greedy_chain",
    kind="heuristic",
    aliases=("chain",),
    summary="nearest-neighbour tour chunked into consecutive groups",
)
class GreedyChainAnonymizer(Anonymizer):
    """Nearest-neighbour tour + consecutive chunking.

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (9, 9), (0, 1), (9, 8)])
    >>> GreedyChainAnonymizer().anonymize(t, 2).stars
    4
    """

    name = "greedy_chain"

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        if table.n_rows == 0:
            return self._empty_result(table, k)
        with run.phase("tour"):
            order = nearest_neighbour_order(table, backend=run.backend)
        partition = Partition(chunk_indices(order, k), table.n_rows, k)
        return self._result_from_partition(table, k, partition, run=run)
