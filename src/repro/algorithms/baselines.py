"""Trivial baseline anonymizers for the comparison benchmarks.

These put the paper's algorithms in context: the random and sorted
chunkers cost nothing to run but ignore geometry entirely (random) or use
only lexicographic locality (sorted); suppress-everything is the always
feasible worst case with exactly ``n * m`` stars.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.partition import Partition
from repro.core.suppressor import Suppressor
from repro.core.table import Table
from repro.registry import register


def chunk_indices(indices: Sequence[int], k: int) -> list[frozenset[int]]:
    """Chop an index sequence into consecutive groups of size in [k, 2k-1].

    Full chunks of size ``k``; the final ``< k`` remainder (if any) is
    absorbed into the last chunk, which therefore has size at most
    ``2k - 1``.

    >>> [sorted(g) for g in chunk_indices(range(7), 3)]
    [[0, 1, 2], [3, 4, 5, 6]]
    """
    if k < 1:
        raise ValueError("k must be positive")
    indices = list(indices)
    if not indices:
        return []
    if len(indices) < k:
        raise ValueError(f"{len(indices)} rows cannot form a group of size {k}")
    groups = [indices[i: i + k] for i in range(0, len(indices), k)]
    if len(groups[-1]) < k:
        groups[-2].extend(groups[-1])
        groups.pop()
    return [frozenset(g) for g in groups]


@register(
    "random_partition",
    kind="baseline",
    aliases=("random",),
    summary="shuffle + chunk; the geometry-blind baseline",
)
class RandomPartitionAnonymizer(Anonymizer):
    """Shuffle the rows, then chunk — the geometry-blind baseline."""

    name = "random_partition"

    def __init__(self, seed: int | np.random.Generator = 0, backend=None):
        super().__init__(backend=backend)
        self._rng = np.random.default_rng(seed)

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        if table.n_rows == 0:
            return self._empty_result(table, k)
        order = list(range(table.n_rows))
        self._rng.shuffle(order)
        partition = Partition(chunk_indices(order, k), table.n_rows, k)
        return self._result_from_partition(table, k, partition, run=run)


@register(
    "sorted_chunk",
    kind="baseline",
    aliases=("sorted",),
    summary="lexicographic sort + chunk; cheap locality baseline",
)
class SortedChunkAnonymizer(Anonymizer):
    """Sort rows lexicographically, then chunk consecutive runs.

    A surprisingly strong cheap baseline on tables with correlated
    attributes; the classic first move of syntactic anonymizers.
    """

    name = "sorted_chunk"

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        if table.n_rows == 0:
            return self._empty_result(table, k)
        rows = table.rows
        order = sorted(
            range(table.n_rows),
            key=lambda i: tuple(str(value) for value in rows[i]),
        )
        partition = Partition(chunk_indices(order, k), table.n_rows, k)
        return self._result_from_partition(table, k, partition, run=run)


@register(
    "suppress_everything",
    kind="baseline",
    summary="star every cell; the n*m sanity ceiling",
)
class SuppressEverythingAnonymizer(Anonymizer):
    """Star every cell: always k-anonymous (for n >= k), cost ``n * m``.

    The paper's objective upper bound; useful as a sanity ceiling in the
    benchmark tables.
    """

    name = "suppress_everything"

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        if table.n_rows == 0:
            return self._empty_result(table, k)
        coords = range(table.degree)
        suppressor = Suppressor(
            {i: coords for i in range(table.n_rows)},
            n_rows=table.n_rows,
            degree=table.degree,
        )
        return AnonymizationResult(
            anonymized=suppressor.apply(table),
            suppressor=suppressor,
            partition=None,
            algorithm=self.name,
            k=k,
            extras={},
        )
