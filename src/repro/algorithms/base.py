"""Common interface for anonymization algorithms."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.core.anonymity import is_k_anonymous, suppressed_cell_count
from repro.core.partition import Cover, Partition, anonymize_partition
from repro.core.suppressor import Suppressor
from repro.core.table import Table


class InfeasibleAnonymizationError(ValueError):
    """Raised when no k-anonymization exists (fewer than k rows)."""


@dataclass(frozen=True)
class AnonymizationResult:
    """The output of an anonymization algorithm.

    :ivar anonymized: the released table ``t(V)``.
    :ivar suppressor: the suppressor ``t`` that produced it.
    :ivar partition: the (k, *)-partition inducing the suppression, when
        the algorithm is partition-based (None for e.g. Datafly).
    :ivar algorithm: the producing algorithm's name.
    :ivar k: the anonymity parameter.
    :ivar extras: algorithm-specific diagnostics (iteration counts,
        cover sizes, bound values, ...).
    """

    anonymized: Table
    suppressor: Suppressor
    partition: Partition | None
    algorithm: str
    k: int
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def stars(self) -> int:
        """Number of suppressed cells — the paper's objective value."""
        return suppressed_cell_count(self.anonymized)

    def is_valid(self, original: Table) -> bool:
        """True iff the output is a k-anonymous suppression of *original*."""
        try:
            Suppressor.from_tables(original, self.anonymized)
        except ValueError:
            return False
        return is_k_anonymous(self.anonymized, self.k)


class Anonymizer(abc.ABC):
    """Abstract base: produce a k-anonymous suppression of a table.

    Every anonymizer accepts a ``backend=`` argument — ``None`` (honour
    the ``REPRO_BACKEND`` environment variable), a backend name
    (``"python"`` / ``"numpy"``), or a
    :class:`repro.core.backend.DistanceBackend` instance — and routes
    all metric work (distances, diameters, ANON costs, group images)
    through it instead of ad-hoc tuple-level loops.
    """

    #: short machine-readable identifier, overridden by subclasses
    name: str = "abstract"

    def __init__(self, backend=None):
        #: backend selector: None, a name, or a DistanceBackend instance
        self.backend = backend

    @abc.abstractmethod
    def anonymize(self, table: Table, k: int) -> AnonymizationResult:
        """Return a k-anonymization of *table*.

        :raises InfeasibleAnonymizationError: if ``0 < n < k``.
        """

    # ------------------------------------------------------------------
    # Shared plumbing for subclasses
    # ------------------------------------------------------------------

    def _backend_for(self, table: Table):
        """The resolved :class:`DistanceBackend` for *table*."""
        from repro.core.backend import get_backend

        return get_backend(table, getattr(self, "backend", None))

    def _check_feasible(self, table: Table, k: int) -> None:
        if k < 1:
            raise ValueError("k must be a positive integer")
        if 0 < table.n_rows < k:
            raise InfeasibleAnonymizationError(
                f"{table.n_rows} rows cannot be {k}-anonymized"
            )

    def _result_from_partition(
        self,
        table: Table,
        k: int,
        partition: Cover,
        extras: dict[str, Any] | None = None,
    ) -> AnonymizationResult:
        """Anonymize along a partition and wrap the result."""
        if not isinstance(partition, Partition):
            partition = Partition(
                partition.groups, partition.n_rows, partition.k,
                k_max=partition.k_max,
            )
        anonymized, suppressor = anonymize_partition(
            table, partition, backend=self._backend_for(table)
        )
        return AnonymizationResult(
            anonymized=anonymized,
            suppressor=suppressor,
            partition=partition,
            algorithm=self.name,
            k=k,
            extras=extras or {},
        )

    def _empty_result(self, table: Table, k: int) -> AnonymizationResult:
        """Result for the zero-row table (vacuously k-anonymous)."""
        suppressor = Suppressor({}, n_rows=0, degree=table.degree)
        return AnonymizationResult(
            anonymized=table,
            suppressor=suppressor,
            partition=None,
            algorithm=self.name,
            k=k,
            extras={},
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
