"""Common interface for anonymization algorithms."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.core.anonymity import is_k_anonymous, suppressed_cell_count
from repro.core.partition import Cover, Partition, anonymize_partition
from repro.core.suppressor import Suppressor
from repro.core.table import Table


class InfeasibleAnonymizationError(ValueError):
    """Raised when no k-anonymization exists (fewer than k rows)."""


@dataclass(frozen=True)
class AnonymizationResult:
    """The output of an anonymization algorithm.

    :ivar anonymized: the released table ``t(V)``.
    :ivar suppressor: the suppressor ``t`` that produced it.
    :ivar partition: the (k, *)-partition inducing the suppression, when
        the algorithm is partition-based (None for e.g. Datafly).
    :ivar algorithm: the producing algorithm's name.
    :ivar k: the anonymity parameter.
    :ivar extras: algorithm-specific diagnostics (iteration counts,
        cover sizes, bound values, ...).
    """

    anonymized: Table
    suppressor: Suppressor
    partition: Partition | None
    algorithm: str
    k: int
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def stars(self) -> int:
        """Number of suppressed cells — the paper's objective value."""
        return suppressed_cell_count(self.anonymized)

    def is_valid(self, original: Table) -> bool:
        """True iff the output is a k-anonymous suppression of *original*."""
        try:
            Suppressor.from_tables(original, self.anonymized)
        except ValueError:
            return False
        return is_k_anonymous(self.anonymized, self.k)


class Anonymizer(abc.ABC):
    """Abstract base: produce a k-anonymous suppression of a table.

    Every anonymizer accepts a ``backend=`` argument — ``None`` (honour
    the ``REPRO_BACKEND`` environment variable), a backend name
    (``"python"`` / ``"numpy"`` / ``"bitpacked"``), or a
    :class:`repro.core.backend.DistanceBackend` instance — and routes
    all metric work (distances, diameters, ANON costs, group images)
    through it instead of ad-hoc tuple-level loops.

    :meth:`anonymize` is a template method: it resolves the backend,
    arms the wall-clock budget, opens a :class:`repro.instrument.Run`
    context, and delegates to the subclass's ``_anonymize``.  Tracing
    (``trace=True`` here or per call, or ``REPRO_TRACE=1`` in the
    environment) attaches a serializable run trace to
    ``result.extras["trace"]``; a budget (``budget=`` seconds or a
    :class:`repro.instrument.TimeBudget`) lets the iterative algorithms
    degrade gracefully on expiry (``extras["deadline_hit"]``) and makes
    the exact solvers raise
    :class:`repro.instrument.BudgetExceededError`.
    """

    #: short machine-readable identifier, overridden by subclasses
    name: str = "abstract"

    def __init__(self, backend=None, budget=None, trace=None):
        #: backend selector: None, a name, or a DistanceBackend instance
        self.backend = backend
        #: default wall-clock budget: None, seconds, or a TimeBudget
        self.budget = budget
        #: tracing default: None (honour REPRO_TRACE), True, or False
        self.trace = trace

    def anonymize(
        self,
        table: Table,
        k: int,
        *,
        backend=None,
        timeout=None,
        trace: bool | None = None,
    ) -> AnonymizationResult:
        """Return a k-anonymization of *table*.

        The keyword-only arguments override the instance defaults for
        this call only — the anonymizer itself is never mutated, so a
        caller-owned instance can safely be driven with different
        backends, budgets, or tracing per call.

        :param backend: per-call distance-backend selector.
        :param timeout: per-call wall-clock budget (seconds or a
            :class:`repro.instrument.TimeBudget`).
        :param trace: per-call tracing switch.
        :raises InfeasibleAnonymizationError: if ``0 < n < k``.
        :raises repro.instrument.BudgetExceededError: if an exact
            solver's budget expires with no feasible incumbent.
        """
        from repro.instrument import Run

        run = Run.start(
            algorithm=self.name,
            k=k,
            table=table,
            backend=self._backend_for(table, backend),
            budget=timeout if timeout is not None else getattr(self, "budget", None),
            trace=trace if trace is not None else getattr(self, "trace", None),
        )
        return run.finish(self._anonymize(table, k, run))

    @abc.abstractmethod
    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        """Subclass hook: produce the result using ``run.backend`` for
        metric work and polling ``run.budget`` at loop granularity."""

    # ------------------------------------------------------------------
    # Shared plumbing for subclasses
    # ------------------------------------------------------------------

    def _backend_for(self, table: Table, override=None):
        """The resolved :class:`DistanceBackend` for *table*."""
        from repro.core.backend import get_backend

        selector = override if override is not None else getattr(
            self, "backend", None
        )
        return get_backend(table, selector)

    def _check_feasible(self, table: Table, k: int) -> None:
        if k < 1:
            raise ValueError("k must be a positive integer")
        if 0 < table.n_rows < k:
            raise InfeasibleAnonymizationError(
                f"{table.n_rows} rows cannot be {k}-anonymized"
            )

    def _result_from_partition(
        self,
        table: Table,
        k: int,
        partition: Cover,
        extras: dict[str, Any] | None = None,
        run=None,
    ) -> AnonymizationResult:
        """Anonymize along a partition and wrap the result."""
        if not isinstance(partition, Partition):
            partition = Partition(
                partition.groups, partition.n_rows, partition.k,
                k_max=partition.k_max,
            )
        backend = run.backend if run is not None else self._backend_for(table)
        if run is not None:
            with run.phase("suppress"):
                anonymized, suppressor = anonymize_partition(
                    table, partition, backend=backend
                )
        else:
            anonymized, suppressor = anonymize_partition(
                table, partition, backend=backend
            )
        return AnonymizationResult(
            anonymized=anonymized,
            suppressor=suppressor,
            partition=partition,
            algorithm=self.name,
            k=k,
            extras=extras or {},
        )

    def _empty_result(self, table: Table, k: int) -> AnonymizationResult:
        """Result for the zero-row table (vacuously k-anonymous)."""
        suppressor = Suppressor({}, n_rows=0, degree=table.degree)
        return AnonymizationResult(
            anonymized=table,
            suppressor=suppressor,
            partition=None,
            algorithm=self.name,
            k=k,
            extras={},
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
