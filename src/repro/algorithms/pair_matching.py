"""Optimal *pairing* for 2-anonymity via minimum-weight perfect matching.

The paper's hardness proofs need ``k >= 3`` — "it is possible that the
problem is still tractable" below that.  For ``k = 2`` a natural
polynomial-time algorithm exists for the *pairs-only* restriction:
partition the rows into groups of exactly two, minimizing total ANON
cost.  Since ``ANON({u, v}) = 2 d(u, v)``, that is exactly a
minimum-weight perfect matching on the complete graph — solvable in
polynomial time with Edmonds' blossom algorithm (via networkx).

Pairs-only is a genuine restriction: triples can beat pairs (three
mutually-equal rows pair at cost > 0 if the fourth row is far), so this
is an exact solver for a meaningful subproblem and a strong heuristic
for full 2-anonymity.  For odd ``n`` one group of three is forced; we
try every choice of the tripled rows' "extra" member greedily.

Guarantee for the pairs-only objective: exact.  Against unrestricted
OPT: never better (tests assert), usually within a few stars.
"""

from __future__ import annotations

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.backend import get_backend
from repro.core.partition import Partition
from repro.core.table import Table
from repro.registry import register


def minimum_weight_pairing(table: Table, backend=None) -> list[tuple[int, int]]:
    """Min-total-distance perfect pairing of the rows (n must be even).

    Uses Edmonds' blossom algorithm through networkx's
    ``max_weight_matching`` on negated weights with ``maxcardinality``.
    """
    import networkx as nx

    n = table.n_rows
    if n % 2:
        raise ValueError("perfect pairing needs an even number of rows")
    if n == 0:
        return []
    dist = get_backend(table, backend).distance_matrix()
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    # max_weight_matching maximizes; use (max_dist - d) to minimize d
    # while maxcardinality=True forces a perfect matching.
    ceiling = max(max(row) for row in dist) + 1
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(i, j, weight=ceiling - dist[i][j])
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    pairs = sorted(tuple(sorted(edge)) for edge in matching)
    assert len(pairs) == n // 2, "complete graphs always pair perfectly"
    return pairs


@register(
    "pair_matching",
    kind="heuristic",
    summary="Edmonds blossom matching; optimal among pairs-only at k=2",
)
class PairMatchingAnonymizer(Anonymizer):
    """Exact pairs-only 2-anonymity (k = 2 only).

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (0, 1), (5, 5), (5, 6)])
    >>> PairMatchingAnonymizer().anonymize(t, 2).stars
    4
    """

    name = "pair_matching"

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        if k != 2:
            raise ValueError("PairMatchingAnonymizer is specific to k = 2")
        self._check_feasible(table, k)
        n = table.n_rows
        if n == 0:
            return self._empty_result(table, k)
        backend = run.backend

        if n % 2 == 0:
            with run.phase("matching"):
                pairs = minimum_weight_pairing(table, backend=backend)
            groups = [frozenset(pair) for pair in pairs]
            partition = Partition(groups, n, 2)
            return self._result_from_partition(
                table, k, partition, {"pairs": len(pairs), "tripled": None},
                run=run,
            )

        # odd n: one triple is unavoidable; try each row as the "extra"
        # member appended to its best pair after matching the rest.
        best: tuple[int, list[frozenset[int]], int] | None = None
        for extra in range(n):
            remaining = [i for i in range(n) if i != extra]
            sub = table.select_rows(remaining)
            pairs = minimum_weight_pairing(sub, backend=backend)
            groups = [
                frozenset({remaining[a], remaining[b]}) for a, b in pairs
            ]
            # attach `extra` to the group whose cost grows least
            target = min(
                range(len(groups)),
                key=lambda g: (
                    backend.anon_cost(groups[g] | {extra})
                    - backend.anon_cost(groups[g]),
                    g,
                ),
            )
            candidate = [
                (group | {extra}) if g == target else group
                for g, group in enumerate(groups)
            ]
            cost = sum(backend.anon_cost(group) for group in candidate)
            if best is None or cost < best[0]:
                best = (cost, candidate, extra)
        assert best is not None
        partition = Partition(best[1], n, 2)
        return self._result_from_partition(
            table, k, partition,
            {"pairs": len(best[1]) - 1, "tripled": best[2]},
            run=run,
        )
