"""Anonymization algorithms.

The paper's algorithms:

* :class:`GreedyCoverAnonymizer` — Theorem 4.1: greedy set cover over all
  subsets of cardinality in [k, 2k-1], Reduce, suppress.  3k(1+ln 2k)
  approximation, runtime exponential in k.
* :class:`CenterCoverAnonymizer` — Theorem 4.2: greedy set cover over
  center/radius balls, Reduce, suppress.  6k(1+ln m) approximation,
  strongly polynomial.

Exact solvers (for ground truth on small instances):

* :func:`optimal_anonymization` — subset-DP exact optimum.
* :class:`BranchBoundAnonymizer` — exact with Lemma 4.1-style pruning.
* :func:`optimal_attribute_suppression` — exact k-ANONYMITY-ON-ATTRIBUTES.

Baselines from the surrounding literature for the comparison benchmarks:
random chunking, sorted chunking, Mondrian, Datafly, greedy k-member
clustering, and an MST-forest extension heuristic.
"""

from repro.algorithms.base import (
    AnonymizationResult,
    Anonymizer,
    InfeasibleAnonymizationError,
)
from repro.algorithms.baselines import (
    RandomPartitionAnonymizer,
    SortedChunkAnonymizer,
    SuppressEverythingAnonymizer,
)
from repro.algorithms.center_cover import CenterCoverAnonymizer, build_ball_cover
from repro.algorithms.chain import GreedyChainAnonymizer, nearest_neighbour_order
from repro.algorithms.datafly import DataflyAnonymizer, greedy_attribute_suppression
from repro.algorithms.exact import (
    ExactAnonymizer,
    brute_force_optimal,
    optimal_anonymization,
    optimal_attribute_suppression,
)
from repro.algorithms.branch_bound import BranchBoundAnonymizer
from repro.algorithms.forest import MSTForestAnonymizer
from repro.algorithms.fpt_suppression import FPTSuppressionAnonymizer
from repro.algorithms.greedy_cover import GreedyCoverAnonymizer, build_greedy_cover
from repro.algorithms.kmember import KMemberAnonymizer
from repro.algorithms.annealing import SimulatedAnnealingAnonymizer
from repro.algorithms.incremental import (
    IncrementalAnonymizer,
    IncrementalBatchAnonymizer,
)
from repro.algorithms.local_search import LocalSearchAnonymizer, improve_partition
from repro.algorithms.pair_matching import (
    PairMatchingAnonymizer,
    minimum_weight_pairing,
)
from repro.algorithms.mondrian import MondrianAnonymizer
from repro.algorithms.reduce_cover import ReduceCoverAnonymizer, reduce_cover
from repro.algorithms.small_m import SmallMExactAnonymizer
from repro.algorithms.topdown import TopDownGreedyAnonymizer

# The privacy wrappers live in repro.privacy but register themselves in
# the same registry; importing them here keeps `registry._ensure_loaded`
# a single import away from the full catalogue.
from repro.privacy.ldiversity import LDiverseAnonymizer
from repro.privacy.tcloseness import TCloseAnonymizer

__all__ = [
    "AnonymizationResult",
    "Anonymizer",
    "BranchBoundAnonymizer",
    "CenterCoverAnonymizer",
    "DataflyAnonymizer",
    "ExactAnonymizer",
    "FPTSuppressionAnonymizer",
    "GreedyChainAnonymizer",
    "GreedyCoverAnonymizer",
    "IncrementalAnonymizer",
    "IncrementalBatchAnonymizer",
    "InfeasibleAnonymizationError",
    "KMemberAnonymizer",
    "LDiverseAnonymizer",
    "LocalSearchAnonymizer",
    "MSTForestAnonymizer",
    "MondrianAnonymizer",
    "PairMatchingAnonymizer",
    "RandomPartitionAnonymizer",
    "ReduceCoverAnonymizer",
    "SimulatedAnnealingAnonymizer",
    "SmallMExactAnonymizer",
    "SortedChunkAnonymizer",
    "SuppressEverythingAnonymizer",
    "TCloseAnonymizer",
    "TopDownGreedyAnonymizer",
    "brute_force_optimal",
    "build_ball_cover",
    "build_greedy_cover",
    "greedy_attribute_suppression",
    "improve_partition",
    "minimum_weight_pairing",
    "nearest_neighbour_order",
    "optimal_anonymization",
    "optimal_attribute_suppression",
    "reduce_cover",
]
