"""Top-down greedy splitting (in the spirit of Xu et al. 2006's TDS).

Mondrian cuts on attribute medians; top-down greedy cuts on *cost*:
starting from one all-rows group, repeatedly bisect a group by picking
two far-apart seed rows and assigning every other member to the nearer
seed, accepting the split only if it is feasible (both sides >= k) and
strictly reduces the total ANON cost.  Groups that cannot be profitably
split stay whole.

Compared to Mondrian this follows the objective directly (no axis
alignment), and compared to k-member it is top-down, so early decisions
see the whole table.  O(n^2) per level in the worst case.
"""

from __future__ import annotations

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.partition import Partition
from repro.core.table import Table
from repro.registry import register


def _bisect(backend, members: list[int], k: int
            ) -> tuple[list[int], list[int]] | None:
    """Seed-based bisection; None if no feasible improving split exists."""
    if len(members) < 2 * k:
        return None
    distance = backend.distance
    # seeds: the (approximate) diameter pair, found by double sweep
    anchor = members[0]
    seed_a = max(members, key=lambda i: (distance(anchor, i), i))
    seed_b = max(members, key=lambda i: (distance(seed_a, i), i))
    if seed_a == seed_b:
        return None  # all rows identical; splitting gains nothing
    side_a, side_b = [seed_a], [seed_b]
    rest = [i for i in members if i not in (seed_a, seed_b)]
    # decide the most polarized rows first for stability
    rest.sort(
        key=lambda i: (
            -abs(distance(seed_a, i) - distance(seed_b, i)),
            i,
        )
    )
    for i in rest:
        da = distance(seed_a, i)
        db = distance(seed_b, i)
        if da < db or (da == db and len(side_a) <= len(side_b)):
            side_a.append(i)
        else:
            side_b.append(i)
    # rebalance undersized sides by moving the nearest non-seed members
    # from the other side (total >= 2k guarantees this terminates)
    while len(side_a) < k:
        mover = min(
            side_b[1:], key=lambda i: (distance(seed_a, i), i)
        )
        side_b.remove(mover)
        side_a.append(mover)
    while len(side_b) < k:
        mover = min(
            side_a[1:], key=lambda i: (distance(seed_b, i), i)
        )
        side_a.remove(mover)
        side_b.append(mover)
    # Accept any split that does not increase total cost.  Equal-cost
    # splits matter: with several clusters per side the disagreement set
    # stays maximal until clusters are fully separated, so insisting on
    # strict improvement would freeze at the root.  Termination is by
    # size: both sides are strictly smaller.
    if (backend.anon_cost(side_a) + backend.anon_cost(side_b)
            > backend.anon_cost(members)):
        return None
    return side_a, side_b


@register(
    "topdown_greedy",
    kind="heuristic",
    aliases=("topdown",),
    summary="cost-driven top-down bisection (TDS-style)",
)
class TopDownGreedyAnonymizer(Anonymizer):
    """Cost-driven top-down bisection.

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (0, 1), (9, 9), (9, 8)])
    >>> TopDownGreedyAnonymizer().anonymize(t, 2).stars
    4
    """

    name = "topdown_greedy"

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        n = table.n_rows
        if n == 0:
            return self._empty_result(table, k)
        backend = run.backend
        final: list[list[int]] = []
        stack: list[list[int]] = [list(range(n))]
        splits = 0
        with run.phase("split"):
            while stack:
                members = stack.pop()
                division = _bisect(backend, members, k)
                if division is None:
                    final.append(members)
                else:
                    splits += 1
                    stack.extend(division)
        run.count("splits", splits)
        k_max = max([2 * k - 1] + [len(g) for g in final])
        partition = Partition(
            [frozenset(g) for g in final], n, k, k_max=k_max
        )
        return self._result_from_partition(
            table, k, partition, {"splits": splits, "groups": len(final)},
            run=run,
        )
