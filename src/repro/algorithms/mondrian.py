"""Mondrian multidimensional partitioning (LeFevre et al. 2006), adapted
to the paper's suppression model.

Mondrian is the standard practical comparator for k-anonymity: it
recursively bisects the record set on the attribute with the most
distinct values (median cut), stopping when no cut leaves both sides with
at least ``k`` records.  Each leaf becomes a group; within a group we
star the disagreeing coordinates exactly as the paper's Step 3 does.

Strict mode: a cut is allowed only if both halves have >= k rows.
"""

from __future__ import annotations

from collections import Counter

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.partition import Partition
from repro.core.table import Table
from repro.registry import register


def _best_cut(table: Table, members: list[int], k: int
              ) -> tuple[list[int], list[int]] | None:
    """Find a Mondrian cut of *members*, or None if no valid cut exists.

    Attributes are tried in decreasing order of distinct-value count
    within the group; values are ordered by their string form (suitable
    for both categorical codes and stringified numerics).  The cut point
    is the value boundary closest to the median that leaves >= k rows on
    each side.
    """
    rows = table.rows
    distinct_counts = []
    for j in range(table.degree):
        values = {rows[i][j] for i in members}
        distinct_counts.append((len(values), j))
    for count, j in sorted(distinct_counts, reverse=True):
        if count < 2:
            continue
        ordered = sorted(members, key=lambda i: (str(rows[i][j]), i))
        # candidate boundaries: positions where the attribute value changes
        boundaries = [
            p for p in range(1, len(ordered))
            if rows[ordered[p]][j] != rows[ordered[p - 1]][j]
        ]
        valid = [p for p in boundaries if p >= k and len(ordered) - p >= k]
        if not valid:
            continue
        half = len(ordered) / 2
        cut = min(valid, key=lambda p: (abs(p - half), p))
        return ordered[:cut], ordered[cut:]
    return None


@register(
    "mondrian",
    kind="heuristic",
    summary="strict-median recursive cuts (LeFevre et al. style)",
)
class MondrianAnonymizer(Anonymizer):
    """Strict top-down Mondrian, suppression flavour.

    >>> from repro.core.table import Table
    >>> t = Table([(i // 2, i % 5) for i in range(10)])
    >>> MondrianAnonymizer().anonymize(t, 2).is_valid(t)
    True
    """

    name = "mondrian"

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        if table.n_rows == 0:
            return self._empty_result(table, k)
        leaves: list[frozenset[int]] = []
        stack = [list(range(table.n_rows))]
        cuts = 0
        with run.phase("cut"):
            while stack:
                members = stack.pop()
                if len(members) >= 2 * k:
                    cut = _best_cut(table, members, k)
                    if cut is not None:
                        cuts += 1
                        stack.extend(cut)
                        continue
                leaves.append(frozenset(members))
        run.count("cuts", cuts)
        k_max = max([2 * k - 1] + [len(g) for g in leaves])
        partition = Partition(leaves, table.n_rows, k, k_max=k_max)
        return self._result_from_partition(
            table, k, partition, {"cuts": cuts, "leaves": len(leaves)},
            run=run,
        )


def leaf_size_histogram(result: AnonymizationResult) -> dict[int, int]:
    """Distribution of group sizes in a Mondrian result (diagnostics)."""
    if result.partition is None:
        return {}
    return dict(Counter(len(g) for g in result.partition.groups))
