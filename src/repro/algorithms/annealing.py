"""Simulated-annealing anonymizer (metaheuristic extension).

Local search (see :mod:`repro.algorithms.local_search`) stops at the
first local optimum; simulated annealing escapes shallow ones by
accepting uphill moves with probability ``exp(-delta / T)`` under a
geometric cooling schedule.  The neighbourhood is the same
partition-preserving move set (relocate, swap), so **every visited
state is a valid (k, *)-partition** and the final answer is the best
state ever visited — never worse than the starting point.

Fully deterministic given the seed.

Move evaluation uses the backend's incremental
:class:`~repro.core.backend.MutableGroupStats` — a proposed swap or
relocate is scored by O(m) what-if queries, never by recomputing a
whole group (asserted by the operation-count tests).
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.partition import Partition
from repro.core.table import Table
from repro.registry import register


@register(
    "annealing",
    kind="heuristic",
    anytime=True,
    aliases=("anneal",),
    summary="seeded simulated annealing over an inner partition",
)
class SimulatedAnnealingAnonymizer(Anonymizer):
    """Anneal a partition produced by an inner anonymizer.

    :param inner: base algorithm providing the initial partition
        (default: Theorem 4.2's ball algorithm).
    :param steps: number of proposed moves.
    :param start_temperature: initial temperature, in star units.
    :param cooling: geometric factor applied each step.
    :param seed: RNG seed (int or numpy Generator).

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (9, 9), (0, 0), (9, 9)])
    >>> SimulatedAnnealingAnonymizer(steps=200, seed=1).anonymize(t, 2).stars
    0
    """

    def __init__(
        self,
        inner: Anonymizer | None = None,
        steps: int = 2000,
        start_temperature: float = 4.0,
        cooling: float = 0.995,
        seed: int | np.random.Generator = 0,
        backend=None,
        budget=None,
        trace=None,
    ):
        from repro.algorithms.center_cover import CenterCoverAnonymizer

        super().__init__(backend=backend, budget=budget, trace=trace)
        if steps < 0:
            raise ValueError("steps must be non-negative")
        if start_temperature <= 0 or not 0 < cooling < 1:
            raise ValueError("need start_temperature > 0 and 0 < cooling < 1")
        self._inner = inner if inner is not None else CenterCoverAnonymizer()
        self._steps = steps
        self._t0 = start_temperature
        self._cooling = cooling
        self._rng = np.random.default_rng(seed)
        self.name = f"{self._inner.name}+anneal"

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        with run.phase("base"):
            base = self._inner.anonymize(table, k, timeout=run.budget)
        if base.partition is None or table.n_rows == 0 or len(
            base.partition.groups
        ) < 2:
            return base

        rng = self._rng
        backend = run.backend
        budget = run.budget
        groups = [backend.group_stats(g) for g in base.partition.groups]
        current = sum(s.cost for s in groups)
        best_groups = [s.members for s in groups]
        best_cost = current
        k_cap = max(2 * k - 1, max(len(g) for g in groups))

        temperature = self._t0
        accepted = 0
        steps_taken = 0
        with run.phase("anneal"):
            for _ in range(self._steps):
                if budget.expired():
                    # graceful degradation: keep the best state visited,
                    # which is never worse than the inner algorithm's.
                    run.mark_deadline_hit()
                    break
                steps_taken += 1
                a, b = rng.choice(len(groups), size=2, replace=False)
                a, b = int(a), int(b)
                move_swap = bool(rng.integers(0, 2)) or len(groups[a]) <= k
                if move_swap:
                    u = sorted(groups[a].members)[int(rng.integers(0, len(groups[a])))]
                    v = sorted(groups[b].members)[int(rng.integers(0, len(groups[b])))]
                    cost_a = groups[a].cost_if_swap(u, v)
                    cost_b = groups[b].cost_if_swap(v, u)
                else:
                    if len(groups[b]) >= k_cap:
                        continue
                    u = sorted(groups[a].members)[int(rng.integers(0, len(groups[a])))]
                    v = None
                    cost_a = groups[a].cost_if_remove(u)
                    cost_b = groups[b].cost_if_add(u)
                delta = cost_a + cost_b - groups[a].cost - groups[b].cost
                if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                    if move_swap:
                        groups[a].remove(u)
                        groups[a].add(v)
                        groups[b].remove(v)
                        groups[b].add(u)
                    else:
                        groups[a].remove(u)
                        groups[b].add(u)
                    current += delta
                    accepted += 1
                    if current < best_cost:
                        best_cost = current
                        best_groups = [s.members for s in groups]
                temperature = max(temperature * self._cooling, 1e-6)

        run.count("steps_taken", steps_taken)
        run.count("accepted_moves", accepted)
        partition = Partition(
            best_groups, table.n_rows, k,
            k_max=max(2 * k - 1, max(len(g) for g in best_groups)),
        )
        result = self._result_from_partition(
            table, k, partition,
            {"base_stars": base.stars, "accepted_moves": accepted,
             "steps": self._steps, "steps_taken": steps_taken,
             "base_algorithm": self._inner.name},
            run=run,
        )
        assert result.stars <= base.stars
        return result
