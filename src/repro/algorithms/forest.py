"""MST-forest anonymizer — the "ratio independent of the database size,
better dependence on k" direction the paper's conclusion asks about.

The follow-up literature (Aggarwal et al. 2005) achieves an O(k)
approximation by building a spanning forest whose components have at
least ``k`` vertices and decomposing it into small components.  This
module implements that blueprint on the suppression metric:

1. build a minimum spanning tree of the complete distance graph
   (Prim, O(n^2) with the Hamming metric);
2. decompose the tree bottom-up into connected components with between
   ``k`` and ``2k - 1`` vertices (a classic tree-partition argument:
   hang the tree at any root, repeatedly cut off a lowest subtree that
   reaches size >= k; the cut piece has size <= 2k - 1 whenever every
   child subtree was smaller than k);
3. star each component to its common image.

Not part of the paper's claims — shipped as the extension experiment
(E8's ``forest`` row), and a genuinely strong practical heuristic.
"""

from __future__ import annotations

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.partition import Partition, split_into_small_groups
from repro.core.table import Table
from repro.registry import register


def _minimum_spanning_tree(dist: list[list[int]]) -> list[list[int]]:
    """Prim's algorithm; returns an adjacency list of the MST."""
    n = len(dist)
    adjacency: list[list[int]] = [[] for _ in range(n)]
    if n <= 1:
        return adjacency
    in_tree = [False] * n
    best_cost = [float("inf")] * n
    best_edge = [-1] * n
    best_cost[0] = 0
    for _ in range(n):
        u = min(
            (i for i in range(n) if not in_tree[i]),
            key=lambda i: (best_cost[i], i),
        )
        in_tree[u] = True
        if best_edge[u] >= 0:
            adjacency[u].append(best_edge[u])
            adjacency[best_edge[u]].append(u)
        row = dist[u]
        for v in range(n):
            if not in_tree[v] and row[v] < best_cost[v]:
                best_cost[v] = row[v]
                best_edge[v] = u
    return adjacency


def _decompose(adjacency: list[list[int]], k: int) -> list[list[int]]:
    """Cut a tree into connected components of size in [k, 2k-1].

    Iterative post-order: when a subtree (vertex + its still-attached
    children's pieces) reaches size >= k, cut it off as a component.
    Because each child piece had size < k, the cut piece has size at most
    ``1 + (deg)(k-1)`` — we re-split anything exceeding ``2k - 1``
    afterwards via the caller.  The final leftover (< k vertices, at the
    root) is merged into the component containing its tree neighbour.
    """
    n = len(adjacency)
    if n == 0:
        return []
    parent = [-2] * n
    order: list[int] = []
    stack = [0]
    parent[0] = -1
    while stack:
        u = stack.pop()
        order.append(u)
        for v in adjacency[u]:
            if parent[v] == -2:
                parent[v] = u
                stack.append(v)

    component_of = [-1] * n
    components: list[list[int]] = []
    hanging: list[list[int]] = [[u] for u in range(n)]
    for u in reversed(order):
        if len(hanging[u]) >= k:
            for w in hanging[u]:
                component_of[w] = len(components)
            components.append(hanging[u])
            hanging[u] = []
        elif parent[u] >= 0:
            hanging[parent[u]].extend(hanging[u])
            hanging[u] = []
    leftover = hanging[0]
    if leftover:
        if components:
            # Attach the root leftover to the component of the nearest
            # tree neighbour of any leftover vertex.
            target = None
            for u in leftover:
                for v in adjacency[u]:
                    if component_of[v] >= 0:
                        target = component_of[v]
                        break
                if target is not None:
                    break
            assert target is not None, "some neighbour must have been cut"
            components[target].extend(leftover)
        else:
            components.append(leftover)
    return components


@register(
    "mst_forest",
    kind="heuristic",
    aliases=("forest",),
    summary="minimum-spanning-forest decomposition into [k, 2k-1] groups",
)
class MSTForestAnonymizer(Anonymizer):
    """MST decomposition into [k, 2k-1] groups, then suppression.

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (0, 1), (9, 9), (9, 8)])
    >>> MSTForestAnonymizer().anonymize(t, 2).stars
    4
    """

    name = "mst_forest"

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        n = table.n_rows
        if n == 0:
            return self._empty_result(table, k)
        resolved = run.backend
        with run.phase("mst"):
            dist = resolved.distance_matrix()
            adjacency = _minimum_spanning_tree(dist)
        with run.phase("decompose"):
            raw = _decompose(adjacency, k)
            groups = split_into_small_groups(table, raw, k, backend=resolved)
        partition = Partition(groups, n, k)
        return self._result_from_partition(
            table, k, partition, {"tree_components": len(raw)}, run=run
        )
