"""Theorem 4.1: greedy cover over all small subsets.

Phase 1 (Section 4.2.1) runs the classical greedy set-cover algorithm on
the collection ``C`` of *all* subsets of ``V`` with cardinality in
``[k, 2k-1]``, repeatedly choosing the set minimizing the ratio

    r(S) = d(S) / |S \\ D|

(diameter per newly covered vector).  Phase 2 applies Reduce.  Phase 3
suppresses each group to its common image.  The result is a
``3k(1 + ln 2k)``-approximation to optimal k-anonymity; the runtime is
``O(|V|^{2k})`` — exponential in k, so this algorithm is practical only
for small k (the paper notes k of 5 or 6 suffices in practice) and
modest n.
"""

from __future__ import annotations

import math
from fractions import Fraction
from itertools import combinations

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.algorithms.reduce_cover import reduce_and_shrink
from repro.core.backend import get_backend
from repro.core.partition import Cover
from repro.core.table import Table
from repro.registry import register
from repro.theory import theorem_4_1_bound


def build_greedy_cover(
    table: Table, k: int, k_max: int | None = None, backend=None
) -> Cover:
    """Run ``Cover(V, C)`` over the full small-subset collection.

    :param table: the relation to cover.
    :param k: anonymity parameter; sets have cardinality in
        ``[k, k_max]`` with ``k_max`` defaulting to ``2k - 1``.
    :param backend: distance-backend selector (see
        :func:`repro.core.backend.get_backend`).
    :returns: a (k, k_max)-cover chosen greedily by diameter-per-new-vector.
    :raises ValueError: if ``0 < n < k`` (no valid cover exists).

    Deterministic: ties are broken toward smaller diameter, then
    lexicographically smaller member tuples.
    """
    n = table.n_rows
    if k < 1:
        raise ValueError("k must be positive")
    if n == 0:
        return Cover([], 0, k, k_max=k_max)
    if n < k:
        raise ValueError(f"{n} rows cannot be covered by sets of size >= {k}")
    upper = (2 * k - 1) if k_max is None else k_max
    upper = min(upper, n)

    # Lazy per-row distances: subsets only ever index rows of their own
    # members, so the backend fills distance rows on demand instead of
    # materializing the full n x n nested-list matrix up front.
    metric = get_backend(table, backend)
    diameter_cache: dict[tuple[int, ...], int] = {}

    def subset_diameter(members: tuple[int, ...]) -> int:
        cached = diameter_cache.get(members)
        if cached is not None:
            return cached
        best = 0
        for a in range(len(members)):
            row = metric.distance_row(members[a])
            for b in range(a + 1, len(members)):
                d = row[members[b]]
                if d > best:
                    best = d
        diameter_cache[members] = best
        return best

    uncovered = set(range(n))
    chosen: list[frozenset[int]] = []
    iterations = 0
    while uncovered:
        iterations += 1
        best_key: tuple[Fraction, int, tuple[int, ...]] | None = None
        for size in range(k, upper + 1):
            for members in combinations(range(n), size):
                newly = sum(1 for v in members if v in uncovered)
                if newly == 0:
                    continue
                d = subset_diameter(members)
                key = (Fraction(d, newly), d, members)
                if best_key is None or key < best_key:
                    best_key = key
        assert best_key is not None, "uncovered rows imply a candidate exists"
        chosen.append(frozenset(best_key[2]))
        uncovered.difference_update(best_key[2])
    cover = Cover(chosen, n, k, k_max=upper)
    return cover


def _greedy_cover_applicable(n: int, m: int, sigma: int, k: int) -> bool:
    # the candidate collection has ~C(n, 2k-1) subsets; past a couple
    # million even enumerating them once is slower than every other tier
    return n >= k and math.comb(n, min(2 * k - 1, n)) <= 2_000_000


def _greedy_cover_cost(n: int, m: int, sigma: int, k: int) -> float:
    # ~35 ops per candidate subset per the E9 greedy series
    # (test_e9_greedy_scaling_in_n: n=14, k=3 -> C(14,5)=2002 -> 5.6 ms)
    return math.comb(n, min(2 * k - 1, n)) * 35.0 * k


@register(
    "greedy_cover",
    kind="approx",
    bound=theorem_4_1_bound,
    bound_label="3k(1+ln 2k) — Theorem 4.1",
    aliases=("greedy",),
    summary="greedy cover over all [k, 2k-1]-subsets; exponential in k",
    applicable=_greedy_cover_applicable,
    cost_model=_greedy_cover_cost,
)
class GreedyCoverAnonymizer(Anonymizer):
    """The full Theorem 4.1 pipeline: Cover -> Reduce -> suppress.

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (0, 1), (1, 0), (1, 1)])
    >>> result = GreedyCoverAnonymizer().anonymize(t, 2)
    >>> result.is_valid(t)
    True
    """

    name = "greedy_cover"

    def __init__(self, k_max: int | None = None, backend=None,
                 budget=None, trace=None):
        super().__init__(backend=backend, budget=budget, trace=trace)
        self._k_max = k_max

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        if table.n_rows == 0:
            return self._empty_result(table, k)
        resolved = run.backend
        with run.phase("cover"):
            cover = build_greedy_cover(
                table, k, k_max=self._k_max, backend=resolved
            )
        with run.phase("reduce"):
            partition = reduce_and_shrink(table, cover, backend=resolved)
        run.count("cover_sets", len(cover))
        extras = {
            "cover_sets": len(cover),
            "cover_diameter_sum": cover.diameter_sum(table, backend=resolved),
            "partition_diameter_sum": partition.diameter_sum(table, backend=resolved),
        }
        return self._result_from_partition(table, k, partition, extras, run=run)
