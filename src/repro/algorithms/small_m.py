"""Exact optimal suppression exploiting low-degree relations.

The paper remarks that "for the special case m = O(log n) ... a
polynomial time exact algorithm has been recently proposed by Sweeney
[8]" — an unpublished manuscript ("Optimal anonymity using k-similar").
We simulate the role that algorithm plays: an *exact* solver that is
fast precisely when the degree (and hence, for constant alphabets, the
number of **distinct** records) is small, complementing the subset DP
which is exponential in n regardless of m.

Approach: collapse the relation to (distinct record, multiplicity)
pairs.  A group is a take-vector over distinct records; its ANON cost is
(group size) x (disagreeing coordinates among its distinct members).
Dynamic programming over the vector of remaining multiplicities, with
the canonical rule that each group must contain the first distinct
record that still has copies left.

Duplicate records are *not* forced into the same group — doing so is not
optimality-preserving (see ``tests/test_small_m.py`` for the 6-row
counterexample) — but they are interchangeable, which is exactly the
symmetry the multiplicity-vector state collapses.

The state space is bounded by ``prod_i (count_i + 1)`` — polynomial in n
for a *fixed number* D of distinct records, but growing like
``(n/D + 1)^D`` with D.  The solver estimates this bound up front and
refuses instances beyond ``max_states`` rather than silently hanging;
in the feasible regime (D <= ~5, or larger D with lopsided counts) it
reaches n far beyond the subset DP's ~16-row wall.
"""

from __future__ import annotations

from collections import deque

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.backend import get_backend
from repro.core.partition import Partition
from repro.core.table import Table
from repro.registry import register
from repro.theory import exact_bound

_INF = float("inf")


def _take_vectors(counts, first, k, k_max):
    """Yield take-vectors t with t[first] >= 1, t <= counts elementwise,
    and k <= sum(t) <= k_max.  Deterministic order."""
    n_kinds = len(counts)

    def extend(index, taken, total):
        if total > k_max:
            return
        if index == n_kinds:
            if total >= k:
                yield tuple(taken)
            return
        low = 1 if index == first else 0
        for take in range(low, min(counts[index], k_max - total) + 1):
            taken.append(take)
            yield from extend(index + 1, taken, total + take)
            taken.pop()

    yield from extend(first, [0] * first, 0)


def _small_m_applicable(n: int, m: int, sigma: int, k: int) -> bool:
    # the default max_distinct guard refuses > 16 distinct records;
    # sigma^m upper-bounds the distinct count the features can promise
    return n >= k and min(n, sigma ** m) <= 16


def _small_m_cost(n: int, m: int, sigma: int, k: int) -> float:
    # multiset-DP states ~ ((n / distinct) + 1)^distinct; the 600
    # ops/state constant reproduces the E9 baseline series
    # (test_e9_small_m_scaling: n=120, distinct=3 -> 3.4 s at the
    # CALIBRATED_OPS_PER_SECOND scale)
    distinct = max(1, min(n, sigma ** m, 16))
    states = min((n / distinct + 1.0) ** distinct, 1e12)
    return states * 600.0


@register(
    "small_m_exact",
    kind="exact",
    bound=exact_bound,
    bound_label="1 — provably optimal",
    aliases=("small_m",),
    summary="multiplicity-vector exact DP; fast with few distinct rows",
    parameterized=True,
    applicable=_small_m_applicable,
    cost_model=_small_m_cost,
)
class SmallMExactAnonymizer(Anonymizer):
    """Exact optimum via multiplicity-vector DP (the [8] simulation).

    Fast when the table has few *distinct* records (low degree m and a
    small alphabet force this); exponential in the distinct-record count.

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0)] * 3 + [(0, 1)] * 3)
    >>> SmallMExactAnonymizer().anonymize(t, 3).stars
    0
    """

    name = "small_m_exact"

    def __init__(self, max_distinct: int = 16, max_states: int = 2_000_000,
                 backend=None, budget=None, trace=None):
        super().__init__(backend=backend, budget=budget, trace=trace)
        #: guard: refuse instances whose distinct-record count would blow up
        self._max_distinct = max_distinct
        #: guard: refuse instances whose DP state space would blow up
        self._max_states = max_states

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        if table.n_rows == 0:
            return self._empty_result(table, k)
        budget = run.budget
        distinct = table.distinct_rows()
        if len(distinct) > self._max_distinct:
            raise ValueError(
                f"{len(distinct)} distinct records exceed the "
                f"max_distinct={self._max_distinct} guard; "
                "use CenterCoverAnonymizer for wide/diverse tables"
            )
        multiplicity = table.row_multiset()
        counts0 = tuple(multiplicity[row] for row in distinct)
        state_bound = 1
        for count in counts0:
            state_bound *= count + 1
        if state_bound > self._max_states:
            raise ValueError(
                f"multiplicity-DP state bound {state_bound} exceeds "
                f"max_states={self._max_states}; this instance is outside "
                "the small-distinct-record regime"
            )
        k_max = 2 * k - 1

        # Metric queries run against a backend over the distinct-record
        # table: a take-vector's disagreement set depends only on which
        # distinct records participate, not on multiplicities.
        distinct_backend = get_backend(Table(distinct), self.backend)
        group_cost_cache: dict[tuple[int, ...], int] = {}

        def group_cost(take: tuple[int, ...]) -> int:
            cached = group_cost_cache.get(take)
            if cached is None:
                members = [i for i, t in enumerate(take) if t]
                cached = sum(take) * len(
                    distinct_backend.disagreeing_coordinates(members)
                )
                group_cost_cache[take] = cached
            return cached

        memo: dict[tuple[int, ...], float] = {}
        choice: dict[tuple[int, ...], tuple[int, ...]] = {}

        def solve(counts: tuple[int, ...]) -> float:
            total = sum(counts)
            if total == 0:
                return 0
            if total < k:
                return _INF
            cached = memo.get(counts)
            if cached is not None:
                return cached
            # An exact DP has no feasible incumbent mid-flight, so budget
            # expiry must raise rather than degrade.
            budget.check("small_m_exact multiplicity DP")
            first = next(i for i, c in enumerate(counts) if c)
            best = _INF
            best_take: tuple[int, ...] | None = None
            for take in _take_vectors(counts, first, k, k_max):
                remainder = tuple(
                    c - (take[i] if i < len(take) else 0)
                    for i, c in enumerate(counts)
                )
                candidate = group_cost(take) + solve(remainder)
                if candidate < best:
                    best = candidate
                    best_take = take
            memo[counts] = best
            if best_take is not None:
                choice[counts] = best_take
            return best

        with run.phase("dp"):
            opt = solve(counts0)
        assert opt != _INF, "n >= k always admits a grouping"
        run.count("dp_states", len(memo))

        # Rebuild a concrete partition: hand out original row indices of
        # each distinct record in order.
        queues = {row: deque() for row in distinct}
        for i, row in enumerate(table.rows):
            queues[row].append(i)
        groups: list[frozenset[int]] = []
        counts = counts0
        while sum(counts):
            take = choice[counts]
            members: list[int] = []
            for i, t in enumerate(take):
                for _ in range(t):
                    members.append(queues[distinct[i]].popleft())
            groups.append(frozenset(members))
            counts = tuple(
                c - (take[i] if i < len(take) else 0) for i, c in enumerate(counts)
            )
        partition = Partition(groups, table.n_rows, k)
        result = self._result_from_partition(
            table, k, partition,
            {"opt": int(opt), "distinct_records": len(distinct),
             "dp_states": len(memo)},
            run=run,
        )
        assert result.stars == opt
        return result
