"""Incremental k-anonymity: maintain a release as the table grows.

Re-anonymizing from scratch on every insert is wasteful and — worse —
publishing successive independently-anonymized versions of overlapping
data enables intersection attacks.  :class:`IncrementalAnonymizer`
maintains one grouping across inserts:

* new rows accumulate in a *pending* buffer;
* once the buffer holds ``k`` rows, it is flushed: pending rows are
  clustered greedily (nearest-by-ANON-increase) into either brand-new
  groups of at least ``k`` or appended to existing groups, whichever is
  locally cheaper, keeping every group within ``[k, 2k-1]``;
* the released view suppresses pending rows entirely (they have no
  k-sized crowd yet), so **every published snapshot is k-anonymous**
  and existing groups only ever coarsen — a row's released image never
  becomes more specific, which is what blocks intersection attacks
  across snapshots (tested).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.alphabet import STAR
from repro.core.anonymity import is_k_anonymous
from repro.core.distance import disagreeing_coordinates, group_image
from repro.core.partition import Partition
from repro.core.suppressor import Suppressor
from repro.core.table import Table
from repro.registry import register


class IncrementalAnonymizer:
    """Grow a k-anonymous release one batch of rows at a time.

    >>> inc = IncrementalAnonymizer(k=2, degree=2)
    >>> inc.insert([(0, 0), (0, 1)])
    >>> inc.released().rows
    ((0, *), (0, *))
    >>> inc.insert([(5, 5)])          # pending: no crowd yet
    >>> inc.released().rows[2]
    (*, *)
    >>> inc.insert([(5, 5)])          # now it has one
    >>> inc.released().rows[2]
    (5, 5)
    """

    def __init__(self, k: int, degree: int, attributes: Sequence[str] | None = None):
        if k < 1:
            raise ValueError("k must be a positive integer")
        if degree < 0:
            raise ValueError("degree must be non-negative")
        self._k = k
        self._degree = degree
        self._attributes = tuple(attributes) if attributes is not None else None
        self._rows: list[tuple] = []
        #: group id of each settled row (index-aligned with _rows)
        self._group_of: dict[int, int] = {}
        self._groups: list[list[int]] = []
        self._pending: list[int] = []
        #: frozen released image per group (only ever coarsens)
        self._images: dict[int, tuple] = {}

    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        return self._k

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    def insert(self, rows: Iterable[Sequence]) -> None:
        """Add rows; flush the pending buffer whenever it reaches k."""
        for row in rows:
            row = tuple(row)
            if len(row) != self._degree:
                raise ValueError(
                    f"row of degree {len(row)}, expected {self._degree}"
                )
            self._rows.append(row)
            self._pending.append(len(self._rows) - 1)
            if len(self._pending) >= self._k:
                self._flush()

    # ------------------------------------------------------------------

    def _group_cost(self, members: list[int]) -> int:
        vectors = [self._rows[i] for i in members]
        return len(vectors) * len(disagreeing_coordinates(vectors))

    def _image_respecting_cost(self, gid: int, extra: list[int]) -> int:
        """Cost of group *gid* after absorbing *extra*, where the old
        members' released image must not get more specific: cells
        already starred stay starred."""
        members = self._groups[gid] + extra
        vectors = [self._rows[i] for i in members]
        base_image = self._images[gid]
        disagreements = set(disagreeing_coordinates(vectors))
        disagreements |= {
            j for j, value in enumerate(base_image) if value is STAR
        }
        return len(members) * len(disagreements)

    def _refresh_image(self, gid: int) -> None:
        """Recompute a group's image; previously starred cells stay
        starred (the anti-intersection invariant)."""
        vectors = [self._rows[i] for i in self._groups[gid]]
        image = group_image(vectors)
        if gid in self._images:
            old = self._images[gid]
            image = tuple(
                STAR if old_value is STAR else new_value
                for old_value, new_value in zip(old, image)
            )
        self._images[gid] = image

    def _flush(self) -> None:
        pending = self._pending
        assert len(pending) >= self._k
        # Plan A: open a new group with all pending rows.
        plan_a_cost = self._group_cost(pending)
        # Plan B: place each pending row individually into the cheapest
        # existing group with room (simulated greedily, respecting the
        # frozen images and the 2k-1 size cap).
        plan_b: list[tuple[int, int]] | None = []
        plan_b_cost = 0
        # extra rows tentatively added to each group during simulation
        additions: dict[int, list[int]] = {
            gid: [] for gid in range(len(self._groups))
        }
        for i in pending:
            best: tuple[int, int] | None = None
            for gid in additions:
                size = len(self._groups[gid]) + len(additions[gid])
                if size >= 2 * self._k - 1:
                    continue
                grown = self._image_respecting_cost(gid, additions[gid] + [i])
                current = self._image_respecting_cost(gid, additions[gid])
                delta = grown - current
                if best is None or delta < best[0]:
                    best = (delta, gid)
            if best is None:
                plan_b = None
                break
            plan_b_cost += best[0]
            additions[best[1]].append(i)
            plan_b.append((i, best[1]))

        if plan_b is not None and plan_b_cost < plan_a_cost:
            touched = set()
            for i, gid in plan_b:
                self._groups[gid].append(i)
                self._group_of[i] = gid
                touched.add(gid)
            for gid in touched:
                self._refresh_image(gid)
        else:
            gid = len(self._groups)
            self._groups.append(list(pending))
            for i in pending:
                self._group_of[i] = gid
            self._refresh_image(gid)
        self._pending = []

    def finalize(self) -> None:
        """Drain the stream: settle any pending rows into existing
        groups so the snapshot is *strictly* k-anonymous.

        Each leftover row (there are fewer than k, so they cannot form a
        group of their own) joins the settled group whose image-
        respecting cost grows least, preferring groups still under the
        ``2k - 1`` cap.  Frozen images only ever coarsen, so the
        anti-intersection invariant survives finalization.

        :raises ValueError: if no group exists yet (fewer than k rows
            were ever inserted — no k-anonymization exists).

        >>> inc = IncrementalAnonymizer(k=2, degree=2)
        >>> inc.insert([(0, 0), (0, 1), (7, 7)])
        >>> inc.n_pending
        1
        >>> inc.finalize()
        >>> inc.n_pending
        0
        >>> inc.is_publishable()
        True
        """
        if not self._pending:
            return
        if not self._groups:
            raise ValueError(
                f"cannot finalize: fewer than k={self._k} rows inserted"
            )
        cap = 2 * self._k - 1
        for i in self._pending:
            best: tuple[bool, int, int] | None = None
            for gid in range(len(self._groups)):
                delta = (
                    self._image_respecting_cost(gid, [i])
                    - self._image_respecting_cost(gid, [])
                )
                key = (len(self._groups[gid]) >= cap, delta, gid)
                if best is None or key < best:
                    best = key
            gid = best[2]
            self._groups[gid].append(i)
            self._group_of[i] = gid
            self._refresh_image(gid)
        self._pending = []

    def groups(self) -> tuple[frozenset[int], ...]:
        """The settled groups as frozen row-index sets."""
        return tuple(frozenset(g) for g in self._groups)

    # ------------------------------------------------------------------

    def released(self) -> Table:
        """The current k-anonymous snapshot.

        Settled rows show their group's frozen image; pending rows are
        fully suppressed (they join the all-star class, which is fine:
        either it is empty or, together with k-anonymity of the rest,
        the snapshot stays publishable — see :meth:`is_publishable`).
        """
        out = []
        all_star = (STAR,) * self._degree
        for i in range(len(self._rows)):
            if i in self._group_of:
                out.append(self._images[self._group_of[i]])
            else:
                out.append(all_star)
        return Table(out, attributes=self._attributes)

    def is_publishable(self) -> bool:
        """True iff the snapshot is k-anonymous right now.

        With fewer than k pending rows the all-star class may be
        undersized; callers either wait for more inserts or accept the
        all-star rows as withheld records.
        """
        released = self.released()
        if self._pending:
            # exclude the pending all-star rows from the check: they are
            # *withheld*, not published
            settled = [
                i for i in range(len(self._rows)) if i in self._group_of
            ]
            released = released.select_rows(settled)
        return is_k_anonymous(released, self._k) if released.n_rows else True

    def total_stars(self) -> int:
        """Stars in the current snapshot (pending rows included)."""
        from repro.core.anonymity import suppressed_cell_count

        return suppressed_cell_count(self.released())


@register(
    "incremental",
    kind="heuristic",
    summary="streaming engine replayed in batch; intersection-attack safe",
)
class IncrementalBatchAnonymizer(Anonymizer):
    """Batch facade over :class:`IncrementalAnonymizer`.

    Replays the table through the streaming engine in row order, then
    :meth:`~IncrementalAnonymizer.finalize`\\ s the stream so the output
    is strictly k-anonymous.  Useful to (a) drive the streaming path
    from the ``kanon`` CLI and the experiment runners, and (b) measure
    the cost of the monotone-disclosure invariant against the one-shot
    algorithms on identical inputs.

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (0, 1), (5, 5), (5, 5), (5, 6)])
    >>> result = IncrementalBatchAnonymizer().anonymize(t, 2)
    >>> result.is_valid(t)
    True
    """

    name = "incremental"

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        if table.n_rows == 0:
            return self._empty_result(table, k)
        engine = IncrementalAnonymizer(
            k, table.degree, attributes=table.attributes
        )
        with run.phase("stream"):
            engine.insert(table.rows)
        with run.phase("finalize"):
            engine.finalize()
        released = engine.released()
        suppressor = Suppressor.from_tables(table, released)
        groups = engine.groups()
        partition = Partition(
            groups, table.n_rows, k,
            k_max=max([2 * k - 1] + [len(g) for g in groups]),
        )
        run.count("groups", len(groups))
        return AnonymizationResult(
            anonymized=released,
            suppressor=suppressor,
            partition=partition,
            algorithm=self.name,
            k=k,
            extras={"groups": len(groups)},
        )
