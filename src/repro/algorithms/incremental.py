"""Incremental k-anonymity: maintain a release as the table grows.

Re-anonymizing from scratch on every insert is wasteful and — worse —
publishing successive independently-anonymized versions of overlapping
data enables intersection attacks.  :class:`IncrementalAnonymizer`
maintains one grouping across inserts:

* new rows accumulate in a *pending* buffer;
* once the buffer holds ``k`` rows, it is flushed: pending rows are
  clustered greedily (nearest-by-ANON-increase) into either brand-new
  groups of at least ``k`` or appended to existing groups, whichever is
  locally cheaper, keeping every group within ``[k, 2k-1]``;
* the released view suppresses pending rows entirely (they have no
  k-sized crowd yet), so **every published snapshot is k-anonymous**
  and existing groups only ever coarsen — a row's released image never
  becomes more specific, which is what blocks intersection attacks
  across snapshots (tested).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.core.alphabet import STAR
from repro.core.anonymity import is_k_anonymous
from repro.core.distance import disagreeing_coordinates, group_image
from repro.core.partition import Partition
from repro.core.suppressor import Suppressor
from repro.core.table import Table
from repro.registry import register

#: bump when the snapshot layout changes incompatibly
STATE_VERSION = 1

#: wire rendering of the suppression symbol inside a serialized state
#: (the same token CSV tables use, so the two encodings compose)
_STAR_TOKEN = "*"


@dataclass(frozen=True)
class IncrementalState:
    """A serializable snapshot of an :class:`IncrementalAnonymizer`.

    Captures everything the engine needs to continue a stream exactly
    where it left off: the rows seen so far, the settled groups, their
    frozen released images, and the pending buffer.  Restoring a
    snapshot and feeding the remaining rows produces the **same** engine
    state as one uninterrupted run — the engine is deterministic, so
    continuation is replay-equivalent (property-tested).

    Snapshots round-trip through JSON via :meth:`as_dict` /
    :meth:`from_dict`; suppressed cells are rendered with the CSV star
    token, which is lossless for the string-valued tables the service
    deals in (a literal ``"*"`` cell already *means* suppression in
    CSV-land).

    >>> inc = IncrementalAnonymizer(k=2, degree=2)
    >>> inc.insert([(0, 0), (0, 1), (7, 7)])
    >>> state = inc.export_state()
    >>> restored = IncrementalAnonymizer.from_state(state)
    >>> restored.insert([(7, 8)])
    >>> inc.insert([(7, 8)])
    >>> restored.released() == inc.released()
    True
    """

    k: int
    degree: int
    attributes: tuple[str, ...] | None
    rows: tuple[tuple, ...]
    groups: tuple[tuple[int, ...], ...]
    #: frozen released image per group, index-aligned with ``groups``
    images: tuple[tuple, ...]
    pending: tuple[int, ...]
    version: int = STATE_VERSION

    @staticmethod
    def _encode_cell(value: Any) -> Any:
        return _STAR_TOKEN if value is STAR else value

    @staticmethod
    def _decode_cell(value: Any) -> Any:
        return STAR if value == _STAR_TOKEN else value

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready rendering (what the solution cache stores)."""
        return {
            "version": self.version,
            "k": self.k,
            "degree": self.degree,
            "attributes": (
                list(self.attributes) if self.attributes is not None else None
            ),
            "rows": [
                [self._encode_cell(cell) for cell in row] for row in self.rows
            ],
            "groups": [list(group) for group in self.groups],
            "images": [
                [self._encode_cell(cell) for cell in image]
                for image in self.images
            ],
            "pending": list(self.pending),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "IncrementalState":
        """Rebuild a snapshot from :meth:`as_dict` output.

        :raises ValueError: on an unknown snapshot version or a payload
            missing required fields (a truncated or foreign document).
        """
        try:
            version = int(payload["version"])
            if version != STATE_VERSION:
                raise ValueError(
                    f"incremental state version {version} is not "
                    f"supported (expected {STATE_VERSION})"
                )
            attributes = payload["attributes"]
            return cls(
                k=int(payload["k"]),
                degree=int(payload["degree"]),
                attributes=(
                    tuple(attributes) if attributes is not None else None
                ),
                rows=tuple(
                    tuple(cls._decode_cell(cell) for cell in row)
                    for row in payload["rows"]
                ),
                groups=tuple(
                    tuple(int(i) for i in group)
                    for group in payload["groups"]
                ),
                images=tuple(
                    tuple(cls._decode_cell(cell) for cell in image)
                    for image in payload["images"]
                ),
                pending=tuple(int(i) for i in payload["pending"]),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"malformed incremental state payload: {exc}"
            ) from exc


class IncrementalAnonymizer:
    """Grow a k-anonymous release one batch of rows at a time.

    >>> inc = IncrementalAnonymizer(k=2, degree=2)
    >>> inc.insert([(0, 0), (0, 1)])
    >>> inc.released().rows
    ((0, *), (0, *))
    >>> inc.insert([(5, 5)])          # pending: no crowd yet
    >>> inc.released().rows[2]
    (*, *)
    >>> inc.insert([(5, 5)])          # now it has one
    >>> inc.released().rows[2]
    (5, 5)
    """

    def __init__(self, k: int, degree: int, attributes: Sequence[str] | None = None):
        if k < 1:
            raise ValueError("k must be a positive integer")
        if degree < 0:
            raise ValueError("degree must be non-negative")
        self._k = k
        self._degree = degree
        self._attributes = tuple(attributes) if attributes is not None else None
        self._rows: list[tuple] = []
        #: group id of each settled row (index-aligned with _rows)
        self._group_of: dict[int, int] = {}
        self._groups: list[list[int]] = []
        self._pending: list[int] = []
        #: frozen released image per group (only ever coarsens)
        self._images: dict[int, tuple] = {}

    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        return self._k

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    def insert(self, rows: Iterable[Sequence]) -> None:
        """Add rows; flush the pending buffer whenever it reaches k.

        The whole batch is validated **before** any row is appended, so
        a degree mismatch anywhere in *rows* leaves the engine exactly
        as it was — no torn state from a half-consumed iterable whose
        early rows were already settled (and possibly published).
        """
        batch = []
        for position, row in enumerate(rows):
            row = tuple(row)
            if len(row) != self._degree:
                raise ValueError(
                    f"row {position} of degree {len(row)}, "
                    f"expected {self._degree}"
                )
            batch.append(row)
        for row in batch:
            self._rows.append(row)
            self._pending.append(len(self._rows) - 1)
            if len(self._pending) >= self._k:
                self._flush()

    # ------------------------------------------------------------------
    # State snapshots (delta solving)
    # ------------------------------------------------------------------

    def export_state(self) -> IncrementalState:
        """Snapshot the engine for later continuation.

        The snapshot is taken **pre-finalize** by construction: callers
        wanting both a strictly k-anonymous release and a continuation
        point must export first, then :meth:`finalize` — finalization
        settles pending rows in a way a longer stream would not.
        """
        return IncrementalState(
            k=self._k,
            degree=self._degree,
            attributes=self._attributes,
            rows=tuple(self._rows),
            groups=tuple(tuple(group) for group in self._groups),
            images=tuple(
                self._images[gid] for gid in range(len(self._groups))
            ),
            pending=tuple(self._pending),
        )

    @classmethod
    def from_state(cls, state: IncrementalState) -> "IncrementalAnonymizer":
        """Rebuild an engine from a snapshot.

        The restored engine is replay-equivalent: inserting rows into it
        produces the same groups, images, and releases as inserting them
        into the engine the snapshot was taken from (tested as a
        property over random streams).
        """
        engine = cls(state.k, state.degree, attributes=state.attributes)
        engine._rows = [tuple(row) for row in state.rows]
        engine._groups = [list(group) for group in state.groups]
        engine._images = {
            gid: tuple(image) for gid, image in enumerate(state.images)
        }
        engine._group_of = {
            i: gid for gid, group in enumerate(state.groups) for i in group
        }
        engine._pending = list(state.pending)
        return engine

    # ------------------------------------------------------------------

    def _group_cost(self, members: list[int]) -> int:
        vectors = [self._rows[i] for i in members]
        return len(vectors) * len(disagreeing_coordinates(vectors))

    def _image_respecting_cost(self, gid: int, extra: list[int]) -> int:
        """Cost of group *gid* after absorbing *extra*, where the old
        members' released image must not get more specific: cells
        already starred stay starred."""
        members = self._groups[gid] + extra
        vectors = [self._rows[i] for i in members]
        base_image = self._images[gid]
        disagreements = set(disagreeing_coordinates(vectors))
        disagreements |= {
            j for j, value in enumerate(base_image) if value is STAR
        }
        return len(members) * len(disagreements)

    def _refresh_image(self, gid: int) -> None:
        """Recompute a group's image; previously starred cells stay
        starred (the anti-intersection invariant)."""
        vectors = [self._rows[i] for i in self._groups[gid]]
        image = group_image(vectors)
        if gid in self._images:
            old = self._images[gid]
            image = tuple(
                STAR if old_value is STAR else new_value
                for old_value, new_value in zip(old, image)
            )
        self._images[gid] = image

    def _flush(self) -> None:
        pending = self._pending
        assert len(pending) >= self._k
        # Plan A: open a new group with all pending rows.
        plan_a_cost = self._group_cost(pending)
        # Plan B: place each pending row individually into the cheapest
        # existing group with room (simulated greedily, respecting the
        # frozen images and the 2k-1 size cap).
        plan_b: list[tuple[int, int]] | None = []
        plan_b_cost = 0
        # extra rows tentatively added to each group during simulation
        additions: dict[int, list[int]] = {
            gid: [] for gid in range(len(self._groups))
        }
        for i in pending:
            best: tuple[int, int] | None = None
            for gid in additions:
                size = len(self._groups[gid]) + len(additions[gid])
                if size >= 2 * self._k - 1:
                    continue
                grown = self._image_respecting_cost(gid, additions[gid] + [i])
                current = self._image_respecting_cost(gid, additions[gid])
                delta = grown - current
                if best is None or delta < best[0]:
                    best = (delta, gid)
            if best is None:
                plan_b = None
                break
            plan_b_cost += best[0]
            additions[best[1]].append(i)
            plan_b.append((i, best[1]))

        if plan_b is not None and plan_b_cost < plan_a_cost:
            touched = set()
            for i, gid in plan_b:
                self._groups[gid].append(i)
                self._group_of[i] = gid
                touched.add(gid)
            for gid in touched:
                self._refresh_image(gid)
        else:
            gid = len(self._groups)
            self._groups.append(list(pending))
            for i in pending:
                self._group_of[i] = gid
            self._refresh_image(gid)
        self._pending = []

    def finalize(self) -> None:
        """Drain the stream: settle any pending rows into existing
        groups so the snapshot is *strictly* k-anonymous.

        Each leftover row (there are fewer than k, so they cannot form a
        group of their own) joins the settled group whose image-
        respecting cost grows least, **strictly** preferring groups
        still under the ``2k - 1`` cap — an at-cap group only ever
        absorbs a leftover when every group is at cap, and that
        unavoidable overflow is surfaced on :attr:`cap_exceeded` rather
        than papered over.  Frozen images only ever coarsen, so the
        anti-intersection invariant survives finalization.

        :raises ValueError: if no group exists yet (fewer than k rows
            were ever inserted — no k-anonymization exists).

        >>> inc = IncrementalAnonymizer(k=2, degree=2)
        >>> inc.insert([(0, 0), (0, 1), (7, 7)])
        >>> inc.n_pending
        1
        >>> inc.finalize()
        >>> inc.n_pending
        0
        >>> inc.is_publishable()
        True
        """
        if not self._pending:
            return
        if not self._groups:
            raise ValueError(
                f"cannot finalize: fewer than k={self._k} rows inserted"
            )
        cap = 2 * self._k - 1
        for i in self._pending:
            best: tuple[bool, int, int] | None = None
            for gid in range(len(self._groups)):
                delta = (
                    self._image_respecting_cost(gid, [i])
                    - self._image_respecting_cost(gid, [])
                )
                key = (len(self._groups[gid]) >= cap, delta, gid)
                if best is None or key < best:
                    best = key
            gid = best[2]
            self._groups[gid].append(i)
            self._group_of[i] = gid
            self._refresh_image(gid)
        self._pending = []

    def groups(self) -> tuple[frozenset[int], ...]:
        """The settled groups as frozen row-index sets."""
        return tuple(frozenset(g) for g in self._groups)

    @property
    def cap_exceeded(self) -> bool:
        """True iff some settled group grew past the ``2k - 1`` cap.

        Streaming flushes never overflow; only :meth:`finalize` can,
        and only when *every* group is already at cap when a leftover
        row needs a home.  Callers publishing partition metadata should
        consult this instead of silently widening the documented bound.
        """
        cap = 2 * self._k - 1
        return any(len(group) > cap for group in self._groups)

    # ------------------------------------------------------------------

    def released(self) -> Table:
        """The current k-anonymous snapshot.

        Settled rows show their group's frozen image; pending rows are
        fully suppressed (they join the all-star class, which is fine:
        either it is empty or, together with k-anonymity of the rest,
        the snapshot stays publishable — see :meth:`is_publishable`).
        """
        out = []
        all_star = (STAR,) * self._degree
        for i in range(len(self._rows)):
            if i in self._group_of:
                out.append(self._images[self._group_of[i]])
            else:
                out.append(all_star)
        return Table(out, attributes=self._attributes)

    def is_publishable(self) -> bool:
        """True iff the snapshot is k-anonymous right now.

        With fewer than k pending rows the all-star class may be
        undersized; callers either wait for more inserts or accept the
        all-star rows as withheld records.
        """
        released = self.released()
        if self._pending:
            # exclude the pending all-star rows from the check: they are
            # *withheld*, not published
            settled = [
                i for i in range(len(self._rows)) if i in self._group_of
            ]
            released = released.select_rows(settled)
        return is_k_anonymous(released, self._k) if released.n_rows else True

    def total_stars(self) -> int:
        """Stars in the current snapshot (pending rows included)."""
        from repro.core.anonymity import suppressed_cell_count

        return suppressed_cell_count(self.released())


@register(
    "incremental",
    kind="heuristic",
    summary="streaming engine replayed in batch; intersection-attack safe",
)
class IncrementalBatchAnonymizer(Anonymizer):
    """Batch facade over :class:`IncrementalAnonymizer`.

    Replays the table through the streaming engine in row order, then
    :meth:`~IncrementalAnonymizer.finalize`\\ s the stream so the output
    is strictly k-anonymous.  Useful to (a) drive the streaming path
    from the ``kanon`` CLI and the experiment runners, and (b) measure
    the cost of the monotone-disclosure invariant against the one-shot
    algorithms on identical inputs.

    With ``capture_state=True`` the pre-finalize engine snapshot lands
    in ``extras["incremental_state"]`` (as :meth:`IncrementalState.
    as_dict` output) — the hook the anonymization service's ``delta``
    verb uses to continue the stream later without re-solving.

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (0, 1), (5, 5), (5, 5), (5, 6)])
    >>> result = IncrementalBatchAnonymizer().anonymize(t, 2)
    >>> result.is_valid(t)
    True
    """

    name = "incremental"

    def __init__(
        self,
        capture_state: bool = False,
        backend=None,
        budget=None,
        trace=None,
    ):
        super().__init__(backend=backend, budget=budget, trace=trace)
        #: export the pre-finalize engine snapshot into
        #: ``extras["incremental_state"]``
        self.capture_state = capture_state

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        if table.n_rows == 0:
            return self._empty_result(table, k)
        engine = IncrementalAnonymizer(
            k, table.degree, attributes=table.attributes
        )
        with run.phase("stream"):
            engine.insert(table.rows)
        state = engine.export_state() if self.capture_state else None
        with run.phase("finalize"):
            engine.finalize()
        released = engine.released()
        suppressor = Suppressor.from_tables(table, released)
        groups = engine.groups()
        # honest metadata: only widen the documented [k, 2k-1] bound
        # when finalization actually overflowed it, and say so
        cap_exceeded = engine.cap_exceeded
        partition = Partition(
            groups, table.n_rows, k,
            k_max=(
                max(len(g) for g in groups) if cap_exceeded else 2 * k - 1
            ),
        )
        run.count("groups", len(groups))
        extras: dict = {"groups": len(groups), "cap_exceeded": cap_exceeded}
        if state is not None:
            extras["incremental_state"] = state.as_dict()
        return AnonymizationResult(
            anonymized=released,
            suppressor=suppressor,
            partition=partition,
            algorithm=self.name,
            k=k,
            extras=extras,
        )
