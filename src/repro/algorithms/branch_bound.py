"""Exact optimal k-anonymity by branch and bound.

A depth-first search over canonical partitions (the lowest-indexed
ungrouped row always seeds the next group, so each partition is visited
once), pruned with:

* an incumbent from the strongly polynomial Theorem 4.2 algorithm, and
* a Lemma 4.1-flavoured lower bound: a row ``v`` grouped with at least
  ``k - 1`` others pays at least its distance to its ``(k-1)``-th nearest
  neighbour among the still-ungrouped rows (its group is drawn entirely
  from them under canonical seeding).

Slower per node than the subset DP of :mod:`repro.algorithms.exact`, but
the pruning usually reaches somewhat larger ``n``, and it provides an
independent exact implementation for cross-checks.

The search honours a real wall-clock budget (``timeout=`` on
``anonymize`` or ``budget=`` on the constructor): the deadline is
checked at every node and candidate group, and on expiry the best
incumbent found so far — always a valid k-anonymous release, never
worse than the Theorem 4.2 seed — is returned with
``extras["deadline_hit"]`` set and ``extras["proven_optimal"]`` False.
"""

from __future__ import annotations

import heapq
from itertools import combinations

from repro.algorithms.base import AnonymizationResult, Anonymizer
from repro.algorithms.center_cover import CenterCoverAnonymizer
from repro.core.partition import Partition
from repro.core.table import Table
from repro.registry import register
from repro.theory import exact_bound


class _OutOfTime(Exception):
    """Internal unwind signal: the budget expired mid-search."""


@register(
    "branch_bound",
    kind="exact",
    anytime=True,
    bound=exact_bound,
    bound_label="1 — provably optimal (anytime under a budget)",
    summary="Lemma 4.1-pruned exact DFS; returns incumbent on deadline",
    applicable=lambda n, m, sigma, k: k <= n <= 18,
    # Lemma 4.1 pruning buys roughly a constant factor over the raw
    # 2^n * n^2 subset-DP model on random tables
    cost_model=lambda n, m, sigma, k: (2.0 ** n) * n * n / 8.0,
)
class BranchBoundAnonymizer(Anonymizer):
    """Exact solver; practical up to roughly n = 18 with small k.

    With a time budget the solver becomes an anytime algorithm: it
    returns the best incumbent when the clock runs out instead of the
    proven optimum.

    >>> from repro.core.table import Table
    >>> t = Table([(0, 0), (0, 0), (0, 1), (1, 1)])
    >>> BranchBoundAnonymizer().anonymize(t, 2).stars
    2
    """

    name = "branch_bound"

    def _anonymize(self, table: Table, k: int, run) -> AnonymizationResult:
        self._check_feasible(table, k)
        if table.n_rows == 0:
            return self._empty_result(table, k)
        best, partition, nodes, proven = self._search(table, k, run)
        run.count("nodes", nodes)
        if proven:
            extras = {"opt": best, "nodes": nodes, "proven_optimal": True}
        else:
            extras = {
                "incumbent": best, "nodes": nodes, "proven_optimal": False,
            }
        result = self._result_from_partition(table, k, partition, extras,
                                             run=run)
        assert result.stars == best
        return result

    # ------------------------------------------------------------------

    def _search(
        self, table: Table, k: int, run
    ) -> tuple[int, Partition, int, bool]:
        n = table.n_rows
        resolved = run.backend
        budget = run.budget
        with run.phase("bound_setup"):
            dist = resolved.distance_matrix()
        upper_size = min(2 * k - 1, n)

        # Incumbent from the polynomial approximation algorithm.
        with run.phase("incumbent"):
            incumbent = CenterCoverAnonymizer(backend=resolved).anonymize(
                table, k
            )
        best_cost = incumbent.stars
        assert incumbent.partition is not None
        best_groups: list[frozenset[int]] = list(incumbent.partition.groups)

        def group_cost(members: tuple[int, ...]) -> int:
            return resolved.anon_cost(members)

        def lower_bound(unassigned: list[int]) -> int:
            if not unassigned:
                return 0
            bound = 0
            for v in unassigned:
                others = [dist[v][u] for u in unassigned if u != v]
                if len(others) >= k - 1 and k > 1:
                    bound += heapq.nsmallest(k - 1, others)[-1]
            return bound

        nodes = 0
        current: list[tuple[int, ...]] = []

        def dfs(unassigned: list[int], cost: int) -> None:
            nonlocal best_cost, best_groups, nodes
            if budget.expired():
                raise _OutOfTime
            nodes += 1
            if not unassigned:
                if cost < best_cost:
                    best_cost = cost
                    best_groups = [frozenset(g) for g in current]
                return
            if cost + lower_bound(unassigned) >= best_cost:
                return
            seed, rest = unassigned[0], unassigned[1:]
            remaining = len(unassigned)
            for size in range(k, min(upper_size, remaining) + 1):
                if 0 < remaining - size < k:
                    continue
                for mates in combinations(rest, size - 1):
                    if budget.expired():
                        raise _OutOfTime
                    members = (seed, *mates)
                    added = group_cost(members)
                    if cost + added >= best_cost:
                        continue
                    mate_set = set(mates)
                    current.append(members)
                    dfs([u for u in rest if u not in mate_set], cost + added)
                    current.pop()

        proven = True
        with run.phase("search"):
            try:
                dfs(list(range(n)), 0)
            except _OutOfTime:
                proven = False
                run.mark_deadline_hit()
        partition = Partition(best_groups, n, k,
                              k_max=max([2 * k - 1] + [len(g) for g in best_groups]))
        return best_cost, partition, nodes, proven
